"""Stream-wired scenario variants: online detection during the run.

The batch case studies detect *after* the simulation: they sessionize
the finished log and judge it.  The variants here attach a
:class:`~repro.stream.pipeline.StreamPipeline` to the world's live log
(via the ``on_world`` hook every ``run_case_*`` exposes), so detection
— and, for Case A, mitigation through
:class:`~repro.core.mitigation.online.OnlineVerdictSink` — happens
while the attack is still in progress.  The headline metrics are the
two the periodic controller cannot improve past its polling interval:

* **time to first block** — seconds from attack start to the first
  streaming-deployed edge rule;
* **inventory saved** — legitimate confirmed seats on the target
  flight, streaming on vs off.

Any scenario can also be captured to a :mod:`repro.trace` file for
offline replay (``capture_case_a`` / ``_b`` / ``_c``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.detection.fusion import DEFAULT_WEIGHTS, FusionDetector
from ..core.detection.volume import VolumeDetector
from ..core.mitigation.online import OnlineVerdictSink
from ..sim.clock import DAY, HOUR
from ..stream import (
    HoldVelocityAdapter,
    SessionDetectorAdapter,
    SmsVelocityAdapter,
    StreamAdapter,
    StreamPipeline,
    StreamReport,
)
from ..trace.capture import TraceCapture
from ..web.logs import DEFAULT_IDLE_GAP
from .case_a import CaseAConfig, CaseAResult, run_case_a
from .world import World

#: Fusion trust weights for the streaming fast paths: a sliding-window
#: velocity conviction is as precise as the controller's frequency rule
#: it mirrors, so it gets the volume-threshold trust level.
STREAM_WEIGHTS: Dict[str, float] = dict(
    DEFAULT_WEIGHTS, **{"hold-velocity": 0.9, "sms-velocity": 0.9}
)


def default_stream_adapters(
    hold_velocity_threshold: int = 5,
    hold_velocity_window: float = 6 * HOUR,
    sms_velocity_threshold: int = 20,
    sms_velocity_window: float = 1 * HOUR,
    learned_model_path: Optional[str] = None,
) -> List[StreamAdapter]:
    """The standard adapter set: batch volume detection on closed
    sessions plus both per-fingerprint velocity fast paths.

    ``learned_model_path`` (an RPML file from ``repro train``) adds the
    trained session-sequence arm as a fourth adapter; its verdicts are
    batch-equivalent because the model's standardiser and weights are
    frozen at train time, so judging sessions one at a time matches
    judging them all at once.
    """
    adapters: List[StreamAdapter] = [
        SessionDetectorAdapter(VolumeDetector()),
        HoldVelocityAdapter(
            threshold=hold_velocity_threshold,
            window=hold_velocity_window,
        ),
        SmsVelocityAdapter(
            threshold=sms_velocity_threshold,
            window=sms_velocity_window,
        ),
    ]
    if learned_model_path is not None:
        from ..ml.detector import LearnedSessionDetector

        detector, _ = LearnedSessionDetector.from_file(
            learned_model_path
        )
        adapters.append(SessionDetectorAdapter(detector))
    return adapters


def build_stream_pipeline(
    adapters: Optional[Sequence[StreamAdapter]] = None,
    sink=None,
    idle_gap: float = DEFAULT_IDLE_GAP,
    evict_every: int = 256,
) -> StreamPipeline:
    """A pipeline with the standard adapters and streaming weights."""
    return StreamPipeline(
        adapters=(
            list(adapters)
            if adapters is not None
            else default_stream_adapters()
        ),
        fusion=FusionDetector(weights=dict(STREAM_WEIGHTS)),
        sink=sink,
        idle_gap=idle_gap,
        evict_every=evict_every,
    )


@dataclass
class StreamCaseAConfig:
    """Case A with the online pipeline in place of the periodic
    controller.

    The timeline is compressed relative to the three-week Fig. 1
    ceremony — one quiet day, then the attack until two days before an
    early departure — because time-to-first-block is measured in
    minutes and does not need week-long context.  Both arms of the
    on/off comparison run with the scripted NiP cap and the periodic
    controller disabled, so the delta is attributable to streaming
    alone.
    """

    seed: int = 7
    #: Online pipeline + sink on/off (the ablation axis).
    streaming: bool = True
    honeypot_mode: bool = False
    #: Sliding-window frequency rule, mirroring the controller's
    #: ``holds_per_fingerprint_threshold`` over its evaluation window.
    hold_velocity_threshold: int = 5
    hold_velocity_window: float = 6 * HOUR
    idle_gap: float = DEFAULT_IDLE_GAP
    evict_every: int = 256
    #: Optional trace capture of the full run (``repro.trace`` file).
    trace_path: Optional[str] = None
    # -- compressed Case A timeline -----------------------------------
    visitor_rate_per_hour: float = 12.0
    hold_ttl: float = 5 * HOUR
    #: Higher than batch Case A's 120 so the denial-of-inventory
    #: constraint binds inside the one-week window: with 180 of 200
    #: seats held, legitimate demand outstrips what the attacker leaves
    #: free and "inventory saved" becomes measurable.
    attacker_target_seats: int = 180
    preferred_nip: int = 6
    attack_start: float = 1 * DAY
    departure_time: float = 7 * DAY
    stop_before_departure: float = 2 * DAY


@dataclass
class StreamCaseAResult:
    """Outcome of one streaming (or ablated) Case A run."""

    config: StreamCaseAConfig
    base: CaseAResult
    #: ``None`` when ``config.streaming`` is off.
    report: Optional[StreamReport]
    sink: Optional[OnlineVerdictSink]
    #: Seconds from attack start to the first online block (or
    #: honeypot routing); ``None`` if streaming never convicted.
    time_to_first_block: Optional[float]
    online_actions: int
    peak_open_sessions: int
    peak_tracked_clients: int
    events_processed: int
    trace_entries: int
    entity_convictions: List[str] = field(default_factory=list)

    @property
    def attacker_holds_created(self) -> int:
        return self.base.attacker_holds_created

    @property
    def target_legit_confirmed_seats(self) -> int:
        return self.base.target_legit_confirmed_seats


def _base_config(config: StreamCaseAConfig) -> CaseAConfig:
    return CaseAConfig(
        seed=config.seed,
        visitor_rate_per_hour=config.visitor_rate_per_hour,
        hold_ttl=config.hold_ttl,
        attacker_target_seats=config.attacker_target_seats,
        preferred_nip=config.preferred_nip,
        attack_start=config.attack_start,
        cap_at=None,
        controller_enabled=False,
        departure_time=config.departure_time,
        stop_before_departure=config.stop_before_departure,
        honeypot_mode=config.honeypot_mode,
    )


def run_stream_case_a(
    config: Optional[StreamCaseAConfig] = None,
) -> StreamCaseAResult:
    """Run Case A with (or, for the ablation, without) the online
    detection/mitigation pipeline attached to the live log."""
    config = config or StreamCaseAConfig()

    pipeline: Optional[StreamPipeline] = None
    sink: Optional[OnlineVerdictSink] = None
    capture: Optional[TraceCapture] = None
    hold_velocity = HoldVelocityAdapter(
        threshold=config.hold_velocity_threshold,
        window=config.hold_velocity_window,
    )

    def wire(world: World) -> None:
        nonlocal pipeline, sink, capture
        if config.trace_path is not None:
            capture = TraceCapture(
                config.trace_path,
                meta={
                    "scenario": "stream-case-a",
                    "seed": config.seed,
                    "streaming": config.streaming,
                },
            )
            capture.attach(world.app.log)
        if not config.streaming:
            return
        sink = OnlineVerdictSink(
            world.app, honeypot_mode=config.honeypot_mode
        )
        pipeline = build_stream_pipeline(
            adapters=[
                SessionDetectorAdapter(VolumeDetector()),
                hold_velocity,
            ],
            sink=sink,
            idle_gap=config.idle_gap,
            evict_every=config.evict_every,
        )
        pipeline.attach(world.app.log)

    try:
        base = run_case_a(_base_config(config), on_world=wire)
    finally:
        if capture is not None:
            capture.close()

    report = pipeline.finish() if pipeline is not None else None
    time_to_first_block: Optional[float] = None
    if sink is not None and sink.first_block_time is not None:
        time_to_first_block = (
            sink.first_block_time - config.attack_start
        )

    return StreamCaseAResult(
        config=config,
        base=base,
        report=report,
        sink=sink,
        time_to_first_block=time_to_first_block,
        online_actions=sink.actions_taken if sink is not None else 0,
        peak_open_sessions=(
            report.peak_open_sessions if report is not None else 0
        ),
        peak_tracked_clients=hold_velocity.peak_tracked_clients,
        events_processed=(
            report.events_processed if report is not None else 0
        ),
        trace_entries=(
            capture.entries_written if capture is not None else 0
        ),
        entity_convictions=(
            [v.subject_id for v in report.entity_verdicts]
            if report is not None
            else []
        ),
    )


def stream_case_a_cell(config: StreamCaseAConfig) -> Dict[str, object]:
    """Picklable sweep-cell entry point for the streaming Case A
    variant (plain data only, like :func:`case_a_cell`)."""
    result = run_stream_case_a(config)
    ttfb = result.time_to_first_block
    return {
        "metrics": {
            "time_to_first_block": ttfb if ttfb is not None else -1.0,
            "online_actions": float(result.online_actions),
            "attacker_holds_created": float(
                result.attacker_holds_created
            ),
            "attacker_rotations": float(result.base.attacker_rotations),
            "attacker_blocks_encountered": float(
                result.base.attacker_blocks_encountered
            ),
            "target_legit_confirmed_seats": float(
                result.target_legit_confirmed_seats
            ),
            "legit_holds_total": float(result.base.legit_holds_total),
            "events_processed": float(result.events_processed),
            "peak_open_sessions": float(result.peak_open_sessions),
            "peak_tracked_clients": float(result.peak_tracked_clients),
            "sink_notifications": float(
                result.report.sink_notifications
                if result.report is not None
                else 0
            ),
        },
        "info": {
            "streaming": result.config.streaming,
            "entity_convictions": result.entity_convictions,
        },
        "recorder": result.base.world.metrics.snapshot(),
    }


# -- trace capture helpers ---------------------------------------------------


def capture_case_a(
    path: str, config: Optional[CaseAConfig] = None
) -> Tuple[CaseAResult, int]:
    """Run batch Case A while recording its log to ``path``."""
    config = config or CaseAConfig()
    with TraceCapture(
        path, meta={"scenario": "case-a", "seed": config.seed}
    ) as capture:
        result = run_case_a(
            config, on_world=lambda world: capture.attach(world.app.log)
        )
    return result, capture.entries_written


def capture_case_b(path: str, config=None):
    """Run Case B while recording its log to ``path``."""
    from .case_b import CaseBConfig, run_case_b

    config = config or CaseBConfig()
    with TraceCapture(
        path, meta={"scenario": "case-b", "seed": config.seed}
    ) as capture:
        result = run_case_b(
            config, on_world=lambda world: capture.attach(world.app.log)
        )
    return result, capture.entries_written


def capture_case_c(path: str, config=None):
    """Run Case C while recording its log to ``path``."""
    from .case_c import CaseCConfig, run_case_c

    config = config or CaseCConfig()
    with TraceCapture(
        path, meta={"scenario": "case-c", "seed": config.seed}
    ) as capture:
        result = run_case_c(
            config, on_world=lambda world: capture.attach(world.app.log)
        )
    return result, capture.entries_written
