"""repro — functional-abuse fraud simulation and detection library.

A from-scratch reproduction of *"When Features Gets Exploited:
Functional Abuse and the Future of Industrial Fraud Prevention"*
(Chiapponi et al., DSN 2025): an airline web platform substrate, the
SMS-Pumping and Denial-of-Inventory attacks the paper documents, and
the full detection/mitigation stack it evaluates.

Quick start::

    from repro.scenarios import build_world, WorldConfig
    world = build_world(WorldConfig(seed=7))

Subpackages
-----------
``repro.sim``        discrete-event kernel (clock, loop, RNG streams)
``repro.booking``    flights, seat holds, passengers, pricing
``repro.sms``        SMS gateway, countries, telco revenue share
``repro.web``        requests, web logs, sessions, rate limits, edge
``repro.identity``   fingerprints, rotation, IP pools, CAPTCHA
``repro.traffic``    legitimate population and attacker automata
``repro.core``       detection and mitigation (the paper's core)
``repro.economics``  attacker/defender ledgers and deterrence analysis
``repro.analysis``   distributions, evaluation, report rendering
``repro.scenarios``  pre-wired Case A/B/C and benchmark scenarios
``repro.runner``     parallel sweep/replication orchestrator
"""

from . import (
    analysis,
    booking,
    common,
    core,
    economics,
    identity,
    sim,
    sms,
    traffic,
    web,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "booking",
    "common",
    "core",
    "economics",
    "identity",
    "sim",
    "sms",
    "traffic",
    "web",
    "__version__",
]
