"""Datasets for the learned detection arm.

The payoff of owning the traffic generator is labeled data: every
simulated session carries ground truth, so the learned arm can train on
synthetic traces instead of hand-labelled production samples.  This
module turns reconstructed sessions into the two model inputs:

* the :data:`~repro.core.detection.features.FEATURE_NAMES` vector the
  whole behaviour-detection stack already shares, and
* a **per-event token sequence** — one discrete token per log entry
  (endpoint × outcome) plus the log-scaled inter-event gap — which is
  what the attention encoder reads.  Sequences keep the *order* and
  *cadence* information the aggregate vector throws away: a seat
  spinner's search→details→hold loop on a timer is invisible in
  endpoint counts but obvious as a sequence.

Token ids, paddings and sequence length are frozen constants so a
model trained today can score sequences encoded tomorrow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.detection.features import (
    FEATURE_NAMES,
    extract_features,
)
from ..web.logs import Session
from ..web.request import (
    BOARDING_PASS_SMS,
    FLIGHT_DETAILS,
    HOLD,
    OTP_LOGIN,
    PAY,
    SEARCH,
    TRAP,
)

#: Endpoint bucket per known path; anything else maps to OTHER_PATH.
PATH_BUCKETS: Dict[str, int] = {
    SEARCH: 0,
    FLIGHT_DETAILS: 1,
    HOLD: 2,
    PAY: 3,
    OTP_LOGIN: 4,
    BOARDING_PASS_SMS: 5,
    TRAP: 6,
}
OTHER_PATH = 7
_PATH_COUNT = 8

#: Outcome buckets: success vs anything else (errors, blocks).
OK_STATUS = 0
ERROR_STATUS = 1
_STATUS_COUNT = 2

#: Token = path bucket × outcome bucket; id 0..VOCAB_SIZE-1 are real
#: events, PAD_TOKEN marks positions past the session's end.
VOCAB_SIZE = _PATH_COUNT * _STATUS_COUNT
PAD_TOKEN = VOCAB_SIZE

#: Fixed sequence length: long enough for the behavioural loop to show
#: several iterations, short enough that the tiny encoder stays tiny.
#: Longer sessions keep their *first* MAX_SEQUENCE_LENGTH events — the
#: funnel entry is where automation cadence is most regular.
MAX_SEQUENCE_LENGTH = 48


def entry_token(path: str, status: int) -> int:
    """Token id for one log entry."""
    bucket = PATH_BUCKETS.get(path, OTHER_PATH)
    outcome = OK_STATUS if status == 200 else ERROR_STATUS
    return bucket * _STATUS_COUNT + outcome


def encode_sequence(session: Session) -> Tuple[np.ndarray, np.ndarray]:
    """``(tokens, gaps)`` arrays of length :data:`MAX_SEQUENCE_LENGTH`.

    ``tokens`` is int16 with :data:`PAD_TOKEN` padding; ``gaps`` holds
    ``log1p(seconds since previous event)`` (0.0 for the first event
    and at padded positions) — log-scaled so second-cadence bots and
    minute-cadence humans land on comparable magnitudes.
    """
    tokens = np.full(MAX_SEQUENCE_LENGTH, PAD_TOKEN, dtype=np.int16)
    gaps = np.zeros(MAX_SEQUENCE_LENGTH, dtype=np.float64)
    previous: Optional[float] = None
    for position, entry in enumerate(
        session.entries[:MAX_SEQUENCE_LENGTH]
    ):
        tokens[position] = entry_token(entry.path, entry.status)
        if previous is not None:
            gaps[position] = np.log1p(max(entry.time - previous, 0.0))
        previous = entry.time
    return tokens, gaps


@dataclass
class Dataset:
    """Aligned model inputs for one batch of sessions.

    ``labels`` is float (1.0 = bot) and may be all-NaN for inference
    batches built without ground truth.
    """

    session_ids: List[str]
    features: np.ndarray        # (n, len(FEATURE_NAMES)) float64
    tokens: np.ndarray          # (n, MAX_SEQUENCE_LENGTH) int16
    gaps: np.ndarray            # (n, MAX_SEQUENCE_LENGTH) float64
    labels: np.ndarray          # (n,) float64, NaN when unknown
    #: Ground-truth actor class per session ("" when unknown) — kept
    #: for per-class recall reporting, never fed to a model.
    actor_classes: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        n = len(self.session_ids)
        for name, rows in (
            ("features", self.features.shape[0]),
            ("tokens", self.tokens.shape[0]),
            ("gaps", self.gaps.shape[0]),
            ("labels", self.labels.shape[0]),
        ):
            if rows != n:
                raise ValueError(
                    f"{name} has {rows} rows for {n} sessions"
                )

    def __len__(self) -> int:
        return len(self.session_ids)

    @property
    def labelled(self) -> bool:
        return len(self) > 0 and not np.isnan(self.labels).any()

    def subset(self, indices: Sequence[int]) -> "Dataset":
        index = np.asarray(list(indices), dtype=int)
        return Dataset(
            session_ids=[self.session_ids[i] for i in index],
            features=self.features[index],
            tokens=self.tokens[index],
            gaps=self.gaps[index],
            labels=self.labels[index],
            actor_classes=(
                [self.actor_classes[i] for i in index]
                if self.actor_classes
                else []
            ),
        )


def build_dataset(
    sessions: Sequence[Session],
    labels: Optional[Sequence[bool]] = None,
    with_truth: bool = False,
) -> Dataset:
    """Encode sessions into a :class:`Dataset`.

    ``labels`` supplies explicit ground truth; ``with_truth=True``
    reads it from the simulation labels instead (training on our own
    generator).  With neither, the dataset is unlabelled.
    """
    sessions = list(sessions)
    if labels is not None and len(labels) != len(sessions):
        raise ValueError(
            f"{len(sessions)} sessions but {len(labels)} labels"
        )
    n = len(sessions)
    features = np.zeros((n, len(FEATURE_NAMES)))
    tokens = np.full(
        (n, MAX_SEQUENCE_LENGTH), PAD_TOKEN, dtype=np.int16
    )
    gaps = np.zeros((n, MAX_SEQUENCE_LENGTH))
    target = np.full(n, np.nan)
    actor_classes: List[str] = []
    for row, session in enumerate(sessions):
        features[row] = extract_features(session).vector()
        tokens[row], gaps[row] = encode_sequence(session)
        if labels is not None:
            target[row] = float(labels[row])
        elif with_truth:
            target[row] = float(session.is_attacker)
        actor_classes.append(
            session.actor_class if (with_truth or labels is None) else ""
        )
    return Dataset(
        session_ids=[s.session_id for s in sessions],
        features=features,
        tokens=tokens,
        gaps=gaps,
        labels=target,
        actor_classes=actor_classes,
    )


def build_dataset_columnar(
    index,
    labels: Optional[Sequence[bool]] = None,
    with_truth: bool = False,
) -> Dataset:
    """:func:`build_dataset` from a :class:`~repro.core.detection.
    session_index.SessionIndex` — bit-identical features, tokens, gaps
    and labels, with no per-session encoding loop.

    Arrays are copied out of the index so a caller mutating the
    dataset cannot corrupt the index's caches.
    """
    n = len(index)
    if labels is not None and len(labels) != n:
        raise ValueError(f"{n} sessions but {len(labels)} labels")
    tokens, gaps = index.sequences()
    if labels is not None:
        target = np.asarray(labels, dtype=float).copy()
    elif with_truth:
        target = index.is_attacker.astype(float)
    else:
        target = np.full(n, np.nan)
    return Dataset(
        session_ids=list(index.session_ids),
        features=index.matrix.copy(),
        tokens=tokens.copy(),
        gaps=gaps.copy(),
        labels=target,
        actor_classes=(
            list(index.actor_classes)
            if (with_truth or labels is None)
            else [""] * n
        ),
    )
