"""Deterministic training harness behind ``repro train``.

One entry point, :func:`train_model`, owns everything that has to be
reproducible about a training run:

* **seeding** — the model's init generator is derived from the master
  seed and the rung name via :func:`~repro.sim.rng.derive_seed`, the
  same scheme every simulation stream uses, so ``(master_seed,
  config)`` fully determines the weights, bit for bit;
* **threshold calibration** — instead of a hard-coded 0.5, the decision
  threshold is set on the *training* split's legitimate sessions to a
  target false-positive rate.  That is what makes "beats the hand-tuned
  stack at equal-or-lower FPR" a property of the model rather than of a
  lucky operating point;
* **provenance** — the returned meta block (config hash, dataset
  digest, weights digest) is stamped into the RPML file so a model can
  always be traced to the exact run that produced it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, Optional

import numpy as np

from ..sim.rng import derive_seed
from .data import Dataset
from .encoder import SequenceEncoder
from .io import ModelType
from .models import LogisticHead, MLPHead, TrainReport

#: Ladder rung names accepted by TrainConfig.model.
MODEL_CHOICES = ("logistic", "mlp", "encoder")


@dataclass(frozen=True)
class TrainConfig:
    """Everything that determines a training run (hashable provenance)."""

    model: str = "encoder"
    master_seed: int = 7
    #: Per-rung architecture knobs (ignored by rungs without them).
    hidden: int = 32
    d_model: int = 16
    #: ``None`` = the rung's default.
    epochs: Optional[int] = None
    learning_rate: Optional[float] = None
    l2: Optional[float] = None
    #: Calibrate the decision threshold to this false-positive rate on
    #: the training split's legitimate sessions.
    target_fpr: float = 0.01

    def __post_init__(self) -> None:
        if self.model not in MODEL_CHOICES:
            raise ValueError(
                f"unknown model {self.model!r}; expected {MODEL_CHOICES}"
            )
        if not 0.0 < self.target_fpr < 1.0:
            raise ValueError(
                f"target_fpr must be in (0, 1): {self.target_fpr}"
            )


def config_hash(config: TrainConfig) -> str:
    """Stable digest of the full training configuration."""
    payload = json.dumps(asdict(config), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def dataset_digest(dataset: Dataset) -> str:
    """Content digest of the training inputs (order-sensitive)."""
    digest = hashlib.sha256()
    digest.update("\x00".join(dataset.session_ids).encode("utf-8"))
    for array in (
        dataset.features,
        dataset.tokens,
        dataset.gaps,
        dataset.labels,
    ):
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()[:16]


def weights_digest(model: ModelType) -> str:
    """Bit-exact digest of a fitted model's parameters + threshold."""
    _, arrays = model.get_state()
    digest = hashlib.sha256()
    digest.update(repr(model.threshold).encode("utf-8"))
    for name in sorted(arrays):
        digest.update(name.encode("utf-8"))
        digest.update(np.ascontiguousarray(arrays[name]).tobytes())
    return digest.hexdigest()[:16]


def build_model(config: TrainConfig) -> ModelType:
    """Instantiate the configured (unfitted) ladder rung."""
    overrides: Dict[str, object] = {}
    if config.epochs is not None:
        overrides["epochs"] = config.epochs
    if config.learning_rate is not None:
        overrides["learning_rate"] = config.learning_rate
    if config.l2 is not None:
        overrides["l2"] = config.l2
    if config.model == "logistic":
        return LogisticHead(**overrides)
    if config.model == "mlp":
        return MLPHead(hidden=config.hidden, **overrides)
    return SequenceEncoder(d_model=config.d_model, **overrides)


def calibrate_threshold(
    probabilities: np.ndarray,
    labels: np.ndarray,
    target_fpr: float,
) -> float:
    """Smallest threshold whose FPR on ``labels==0`` rows is within
    ``target_fpr`` (clamped inside (0, 1))."""
    legit = np.sort(probabilities[labels < 0.5])[::-1]
    if len(legit) == 0:
        return 0.5
    allowed = int(np.floor(target_fpr * len(legit)))
    if allowed >= len(legit):
        threshold = float(legit[-1])
    elif allowed == 0:
        threshold = float(np.nextafter(legit[0], 1.0))
    else:
        # Just above the (allowed)-th largest legit score: exactly
        # `allowed` legitimate sessions stay flagged.
        threshold = float(np.nextafter(legit[allowed - 1], 1.0))
    return min(max(threshold, 1e-6), 1.0 - 1e-6)


@dataclass
class TrainResult:
    """A fitted rung plus its convergence report and provenance."""

    model: ModelType
    report: TrainReport
    #: FPR-calibrated decision threshold (also set on the model).
    threshold: float
    #: Provenance block stamped into the RPML file by ``repro train``.
    meta: Dict[str, object]


def train_model(dataset: Dataset, config: TrainConfig) -> TrainResult:
    """Train one ladder rung, bit-reproducibly.

    All randomness flows through one generator derived from
    ``(master_seed, "ml.train.<rung>")``; identical ``(dataset,
    config)`` pairs produce identical weights, thresholds and digests
    on every run, serial or inside a worker process.
    """
    model = build_model(config)
    rng = np.random.default_rng(
        derive_seed(config.master_seed, f"ml.train.{config.model}")
    )
    report = model.fit(dataset, rng)
    threshold = calibrate_threshold(
        model.predict_proba(dataset), dataset.labels, config.target_fpr
    )
    model.threshold = threshold
    meta: Dict[str, object] = {
        "config": asdict(config),
        "config_hash": config_hash(config),
        "dataset_digest": dataset_digest(dataset),
        "weights_digest": weights_digest(model),
        "training_sessions": len(dataset),
        "training_bots": int(dataset.labels.sum()),
        "threshold": threshold,
        "final_loss": report.final_loss,
        "training_accuracy": report.training_accuracy,
    }
    return TrainResult(
        model=model, report=report, threshold=threshold, meta=meta
    )
