"""Feature-vector rungs of the trainable model ladder.

Both models here read the standardised 16-feature session vector (see
:mod:`repro.core.detection.features`) and share one interface with the
sequence encoder in :mod:`repro.ml.encoder`:

``fit(dataset, rng)``
    deterministic full-batch gradient descent; all randomness comes
    from the caller's seeded generator, so the same ``(dataset, seed)``
    yields bit-identical weights;
``predict_proba(dataset)``
    bot probability per row;
``get_state()`` / ``from_state()``
    plain ``(header, arrays)`` pairs for the RPML on-disk format.

Training is class-weighted cross-entropy with L2: the worlds these
models train on are overwhelmingly legitimate, and unweighted CE lets
a model buy low loss by never convicting anyone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .data import Dataset
from .standardize import Standardiser


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Clipped logistic for numerical stability at extreme logits."""
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


def class_weights(labels: np.ndarray) -> np.ndarray:
    """Per-row weights balancing bot/legit mass (mean weight 1.0)."""
    n = len(labels)
    positives = float(labels.sum())
    negatives = n - positives
    if positives == 0.0 or negatives == 0.0:
        return np.ones(n)
    return np.where(
        labels >= 0.5, n / (2.0 * positives), n / (2.0 * negatives)
    )


def weighted_cross_entropy(
    probabilities: np.ndarray, labels: np.ndarray, weights: np.ndarray
) -> float:
    eps = 1e-12
    return float(
        -np.mean(
            weights
            * (
                labels * np.log(probabilities + eps)
                + (1 - labels) * np.log(1 - probabilities + eps)
            )
        )
    )


@dataclass
class TrainReport:
    """Convergence summary shared by every ladder rung."""

    epochs: int
    final_loss: float
    training_accuracy: float


def _check_trainable(dataset: Dataset) -> np.ndarray:
    if not dataset.labelled:
        raise ValueError("training dataset must be fully labelled")
    labels = dataset.labels
    if len(set(labels.tolist())) < 2:
        raise ValueError("training labels must contain both classes")
    return labels


class LogisticHead:
    """The ladder's baseline: logistic regression over the feature
    vector — the same math as the batch ``logistic-behaviour`` family,
    re-homed on :class:`~repro.ml.data.Dataset` so it trains, saves and
    scores through the identical harness as the bigger rungs."""

    kind = "logistic"

    def __init__(
        self,
        learning_rate: float = 0.1,
        l2: float = 1e-3,
        epochs: int = 800,
        threshold: float = 0.5,
    ) -> None:
        self.learning_rate = learning_rate
        self.l2 = l2
        self.epochs = epochs
        self.threshold = threshold
        self.weights: Optional[np.ndarray] = None
        self.bias = 0.0
        self.standardiser: Optional[Standardiser] = None

    @property
    def fitted(self) -> bool:
        return self.weights is not None

    def fit(
        self, dataset: Dataset, rng: np.random.Generator
    ) -> TrainReport:
        labels = _check_trainable(dataset)
        self.standardiser = Standardiser.fit(dataset.features)
        x = self.standardiser.transform(dataset.features)
        row_weights = class_weights(labels)
        n, d = x.shape
        # Symmetry is fine for a linear model; the rng argument keeps
        # the ladder interface uniform.
        del rng
        weights = np.zeros(d)
        bias = 0.0
        loss = float("inf")
        for _ in range(self.epochs):
            probabilities = sigmoid(x @ weights + bias)
            residual = row_weights * (probabilities - labels)
            weights -= self.learning_rate * (
                x.T @ residual / n + self.l2 * weights
            )
            bias -= self.learning_rate * float(residual.mean())
            loss = weighted_cross_entropy(
                probabilities, labels, row_weights
            ) + 0.5 * self.l2 * float(weights @ weights)
        self.weights = weights
        self.bias = bias
        accuracy = float(
            np.mean(
                (self.predict_proba(dataset) >= self.threshold)
                == (labels >= 0.5)
            )
        )
        return TrainReport(
            epochs=self.epochs,
            final_loss=loss,
            training_accuracy=accuracy,
        )

    def predict_proba(self, dataset: Dataset) -> np.ndarray:
        if not self.fitted:
            raise RuntimeError("model is not fitted")
        assert self.standardiser is not None and self.weights is not None
        x = self.standardiser.transform(dataset.features)
        return sigmoid(x @ self.weights + self.bias)

    def get_state(self) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
        if not self.fitted:
            raise RuntimeError("model is not fitted")
        assert self.standardiser is not None and self.weights is not None
        header = {
            "learning_rate": self.learning_rate,
            "l2": self.l2,
            "epochs": self.epochs,
            "threshold": self.threshold,
        }
        arrays = {
            "weights": self.weights,
            "bias": np.array([self.bias]),
            "mean": self.standardiser.mean,
            "std": self.standardiser.std,
        }
        return header, arrays

    @classmethod
    def from_state(
        cls,
        header: Dict[str, object],
        arrays: Dict[str, np.ndarray],
    ) -> "LogisticHead":
        model = cls(
            learning_rate=float(header["learning_rate"]),
            l2=float(header["l2"]),
            epochs=int(header["epochs"]),
            threshold=float(header["threshold"]),
        )
        model.weights = arrays["weights"]
        model.bias = float(arrays["bias"][0])
        model.standardiser = Standardiser(
            mean=arrays["mean"], std=arrays["std"]
        )
        return model


class MLPHead:
    """One-hidden-layer tanh MLP over the standardised feature vector.

    Big enough to learn the feature interactions the linear baseline
    cannot (e.g. *low* volume combined with a zero hold-to-pay ratio),
    small enough that full-batch NumPy training takes well under a
    second on the case-study worlds.
    """

    kind = "mlp"

    def __init__(
        self,
        hidden: int = 32,
        learning_rate: float = 0.05,
        l2: float = 1e-4,
        epochs: int = 400,
        threshold: float = 0.5,
    ) -> None:
        self.hidden = hidden
        self.learning_rate = learning_rate
        self.l2 = l2
        self.epochs = epochs
        self.threshold = threshold
        self.params: Dict[str, np.ndarray] = {}
        self.standardiser: Optional[Standardiser] = None

    @property
    def fitted(self) -> bool:
        return bool(self.params)

    def _init_params(
        self, d: int, rng: np.random.Generator
    ) -> Dict[str, np.ndarray]:
        scale1 = 1.0 / np.sqrt(d)
        scale2 = 1.0 / np.sqrt(self.hidden)
        return {
            "w1": rng.normal(0.0, scale1, size=(d, self.hidden)),
            "b1": np.zeros(self.hidden),
            "w2": rng.normal(0.0, scale2, size=self.hidden),
            "b2": np.zeros(1),
        }

    def _forward(
        self, x: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        hidden = np.tanh(x @ self.params["w1"] + self.params["b1"])
        logits = hidden @ self.params["w2"] + self.params["b2"][0]
        return sigmoid(logits), hidden

    def fit(
        self, dataset: Dataset, rng: np.random.Generator
    ) -> TrainReport:
        labels = _check_trainable(dataset)
        self.standardiser = Standardiser.fit(dataset.features)
        x = self.standardiser.transform(dataset.features)
        row_weights = class_weights(labels)
        n, d = x.shape
        self.params = self._init_params(d, rng)
        loss = float("inf")
        for _ in range(self.epochs):
            probabilities, hidden = self._forward(x)
            # dL/dlogit for weighted mean CE.
            dlogits = row_weights * (probabilities - labels) / n
            dw2 = hidden.T @ dlogits + self.l2 * self.params["w2"]
            db2 = float(dlogits.sum())
            dhidden = np.outer(dlogits, self.params["w2"]) * (
                1.0 - hidden**2
            )
            dw1 = x.T @ dhidden + self.l2 * self.params["w1"]
            db1 = dhidden.sum(axis=0)
            self.params["w1"] -= self.learning_rate * dw1
            self.params["b1"] -= self.learning_rate * db1
            self.params["w2"] -= self.learning_rate * dw2
            self.params["b2"][0] -= self.learning_rate * db2
            loss = weighted_cross_entropy(
                probabilities, labels, row_weights
            ) + 0.5 * self.l2 * (
                float((self.params["w1"] ** 2).sum())
                + float(self.params["w2"] @ self.params["w2"])
            )
        accuracy = float(
            np.mean(
                (self.predict_proba(dataset) >= self.threshold)
                == (labels >= 0.5)
            )
        )
        return TrainReport(
            epochs=self.epochs,
            final_loss=loss,
            training_accuracy=accuracy,
        )

    def predict_proba(self, dataset: Dataset) -> np.ndarray:
        if not self.fitted:
            raise RuntimeError("model is not fitted")
        assert self.standardiser is not None
        x = self.standardiser.transform(dataset.features)
        probabilities, _ = self._forward(x)
        return probabilities

    def get_state(self) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
        if not self.fitted:
            raise RuntimeError("model is not fitted")
        assert self.standardiser is not None
        header = {
            "hidden": self.hidden,
            "learning_rate": self.learning_rate,
            "l2": self.l2,
            "epochs": self.epochs,
            "threshold": self.threshold,
        }
        arrays = dict(self.params)
        arrays["mean"] = self.standardiser.mean
        arrays["std"] = self.standardiser.std
        return header, arrays

    @classmethod
    def from_state(
        cls,
        header: Dict[str, object],
        arrays: Dict[str, np.ndarray],
    ) -> "MLPHead":
        model = cls(
            hidden=int(header["hidden"]),
            learning_rate=float(header["learning_rate"]),
            l2=float(header["l2"]),
            epochs=int(header["epochs"]),
            threshold=float(header["threshold"]),
        )
        model.params = {
            name: arrays[name] for name in ("w1", "b1", "w2", "b2")
        }
        model.standardiser = Standardiser(
            mean=arrays["mean"], std=arrays["std"]
        )
        return model
