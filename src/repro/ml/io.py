"""RPML: the versioned on-disk model format.

Layout (all integers little-endian)::

    bytes 0-3   magic b"RPML"
    bytes 4-5   format version (uint16)
    bytes 6-9   header length in bytes (uint32)
    header      UTF-8 JSON: {"kind", "model", "arrays", "meta"}
    payload     each array's raw C-order bytes, in header order

``model`` holds the rung's hyperparameter header, ``arrays`` the
name/shape/dtype manifest for the payload, ``meta`` free-form training
provenance (master seed, config hash, dataset digest).  Arrays round
trip bit-for-bit — the payload is ``ndarray.tobytes()``, not a decimal
rendering — which is what makes "train once, score anywhere, get the
same verdicts" a testable property instead of a hope.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from .encoder import SequenceEncoder
from .models import LogisticHead, MLPHead

MAGIC = b"RPML"
FORMAT_VERSION = 1

#: Ladder rungs by their ``kind`` tag (the format's dispatch key).
MODEL_KINDS = {
    LogisticHead.kind: LogisticHead,
    MLPHead.kind: MLPHead,
    SequenceEncoder.kind: SequenceEncoder,
}

ModelType = Union[LogisticHead, MLPHead, SequenceEncoder]


class ModelFormatError(ValueError):
    """Raised for files that are not valid RPML, or wrong version."""


def save_model(
    path: Union[str, Path],
    model: ModelType,
    meta: Optional[Dict[str, object]] = None,
) -> None:
    """Write a fitted model to ``path`` in RPML format."""
    kind = getattr(model, "kind", None)
    if kind not in MODEL_KINDS:
        raise ModelFormatError(f"unknown model kind: {kind!r}")
    model_header, arrays = model.get_state()
    manifest = []
    payload = bytearray()
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        manifest.append(
            {
                "name": name,
                "shape": list(array.shape),
                "dtype": array.dtype.str,
            }
        )
        payload.extend(array.tobytes())
    header = json.dumps(
        {
            "kind": kind,
            "model": model_header,
            "arrays": manifest,
            "meta": meta or {},
        },
        sort_keys=True,
    ).encode("utf-8")
    with open(path, "wb") as handle:
        handle.write(MAGIC)
        handle.write(struct.pack("<HI", FORMAT_VERSION, len(header)))
        handle.write(header)
        handle.write(payload)


def load_model(
    path: Union[str, Path]
) -> Tuple[ModelType, Dict[str, object]]:
    """Read ``(model, meta)`` back from an RPML file."""
    with open(path, "rb") as handle:
        blob = handle.read()
    if len(blob) < 10 or blob[:4] != MAGIC:
        raise ModelFormatError(f"not an RPML model file: {path}")
    version, header_length = struct.unpack("<HI", blob[4:10])
    if version != FORMAT_VERSION:
        raise ModelFormatError(
            f"unsupported RPML version {version} "
            f"(this build reads {FORMAT_VERSION})"
        )
    try:
        header = json.loads(blob[10 : 10 + header_length].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ModelFormatError(f"corrupt RPML header: {error}")
    kind = header.get("kind")
    if kind not in MODEL_KINDS:
        raise ModelFormatError(f"unknown model kind in header: {kind!r}")
    arrays: Dict[str, np.ndarray] = {}
    offset = 10 + header_length
    for entry in header["arrays"]:
        shape = tuple(entry["shape"])
        dtype = np.dtype(entry["dtype"])
        size = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        chunk = blob[offset : offset + size]
        if len(chunk) != size:
            raise ModelFormatError(
                f"truncated payload for array {entry['name']!r}"
            )
        arrays[entry["name"]] = np.frombuffer(
            chunk, dtype=dtype
        ).reshape(shape).copy()
        offset += size
    model = MODEL_KINDS[kind].from_state(header["model"], arrays)
    return model, header.get("meta", {})
