"""Tiny from-scratch attention encoder over per-session event sequences.

The sequence rung of the model ladder: reads the token/gap encoding
from :mod:`repro.ml.data` (endpoint×outcome tokens plus log inter-event
gaps), runs one masked single-head self-attention block with a residual
connection, pools with a learned attention query, and scores with a
logistic head.  Everything — forward, backward, Adam — is hand-written
NumPy: no autograd, no framework, and the analytic gradients are
finite-difference-checked in the test suite.

Why attention at all: rotated low-and-slow abuse is engineered to keep
every *aggregate* feature inside legitimate ranges, but the per-event
structure (the same search→details→hold loop on a near-constant timer,
session after session) survives rotation because the attacker's script
doesn't change when their fingerprint does.  A sequence model reads
that structure directly.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .data import Dataset, MAX_SEQUENCE_LENGTH, PAD_TOKEN, VOCAB_SIZE
from .models import (
    TrainReport,
    _check_trainable,
    class_weights,
    sigmoid,
    weighted_cross_entropy,
)

#: Batch rows processed per forward/backward chunk.  The attention
#: matrix is (rows, L, L); chunking caps peak memory without changing
#: results (gradients are exact sums over rows).
CHUNK_ROWS = 512

#: Parameter order is part of the on-disk contract (see repro.ml.io).
PARAM_NAMES: Tuple[str, ...] = (
    "embed",    # (VOCAB_SIZE + 1, d) token embeddings incl. PAD row
    "w_gap",    # (d,) projection of the log-gap channel
    "pos",      # (L, d) learned positional embeddings
    "wq",       # (d, d) attention query projection
    "wk",       # (d, d) attention key projection
    "wv",       # (d, d) attention value projection
    "q_pool",   # (d,) learned pooling query
    "w_out",    # (d,) logistic head weights
    "b_out",    # (1,) logistic head bias
)

#: Matrices under L2 (embeddings and biases stay unregularised).
_L2_PARAMS = ("wq", "wk", "wv", "w_out")


def _masked_softmax(scores: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Row softmax with masked entries forced to exactly 0.0.

    ``mask`` broadcasts over ``scores``; masked logits are shifted to
    -1e9 so after max-subtraction their ``exp`` underflows to zero and
    no gradient leaks through padding.
    """
    shifted = np.where(mask, scores, -1e9)
    shifted = shifted - shifted.max(axis=-1, keepdims=True)
    weights = np.exp(shifted)
    return weights / weights.sum(axis=-1, keepdims=True)


class SequenceEncoder:
    """Single-block attention encoder with a logistic head."""

    kind = "encoder"

    def __init__(
        self,
        d_model: int = 16,
        learning_rate: float = 0.01,
        l2: float = 1e-4,
        epochs: int = 150,
        threshold: float = 0.5,
    ) -> None:
        self.d_model = d_model
        self.learning_rate = learning_rate
        self.l2 = l2
        self.epochs = epochs
        self.threshold = threshold
        self.params: Dict[str, np.ndarray] = {}

    @property
    def fitted(self) -> bool:
        return bool(self.params)

    def init_params(self, rng: np.random.Generator) -> None:
        """Seeded parameter init (exposed for the gradient-check test)."""
        d = self.d_model
        scale = 1.0 / np.sqrt(d)
        self.params = {
            "embed": rng.normal(0.0, scale, size=(VOCAB_SIZE + 1, d)),
            "w_gap": rng.normal(0.0, scale, size=d),
            "pos": rng.normal(0.0, scale, size=(MAX_SEQUENCE_LENGTH, d)),
            "wq": rng.normal(0.0, scale, size=(d, d)),
            "wk": rng.normal(0.0, scale, size=(d, d)),
            "wv": rng.normal(0.0, scale, size=(d, d)),
            "q_pool": rng.normal(0.0, scale, size=d),
            "w_out": rng.normal(0.0, scale, size=d),
            "b_out": np.zeros(1),
        }

    # -- forward -------------------------------------------------------

    def _forward(
        self, tokens: np.ndarray, gaps: np.ndarray
    ) -> Dict[str, np.ndarray]:
        """Forward pass over one chunk; returns every cached tensor the
        backward pass needs, keyed by name."""
        p = self.params
        d = self.d_model
        mask = tokens != PAD_TOKEN                        # (n, L)
        x = (
            p["embed"][tokens]
            + gaps[:, :, None] * p["w_gap"][None, None, :]
            + p["pos"][None, :, :]
        )                                                  # (n, L, d)
        q = x @ p["wq"]
        k = x @ p["wk"]
        v = x @ p["wv"]
        scores = q @ k.transpose(0, 2, 1) / np.sqrt(d)     # (n, L, L)
        attn = _masked_softmax(scores, mask[:, None, :])
        h = x + attn @ v                                   # residual
        pool_scores = h @ p["q_pool"] / np.sqrt(d)         # (n, L)
        alpha = _masked_softmax(pool_scores, mask)
        pooled = (alpha[:, :, None] * h).sum(axis=1)       # (n, d)
        logits = pooled @ p["w_out"] + p["b_out"][0]
        return {
            "mask": mask, "x": x, "q": q, "k": k, "v": v,
            "attn": attn, "h": h, "alpha": alpha, "pooled": pooled,
            "probabilities": sigmoid(logits),
        }

    # -- backward ------------------------------------------------------

    def _chunk_grads(
        self,
        tokens: np.ndarray,
        gaps: np.ndarray,
        dlogits: np.ndarray,
        cache: Dict[str, np.ndarray],
        grads: Dict[str, np.ndarray],
    ) -> None:
        """Accumulate exact analytic gradients for one chunk into
        ``grads`` (data term only; L2 is added once by the caller)."""
        p = self.params
        d = self.d_model
        x, h, alpha = cache["x"], cache["h"], cache["alpha"]

        # Head.
        grads["w_out"] += cache["pooled"].T @ dlogits
        grads["b_out"][0] += float(dlogits.sum())
        dpooled = dlogits[:, None] * p["w_out"][None, :]   # (n, d)

        # Attention pooling: pooled = sum_l alpha_l * h_l.
        dalpha = (dpooled[:, None, :] * h).sum(axis=2)     # (n, L)
        dh = alpha[:, :, None] * dpooled[:, None, :]       # (n, L, d)
        dscores_pool = alpha * (
            dalpha - (alpha * dalpha).sum(axis=1, keepdims=True)
        )
        dh += dscores_pool[:, :, None] * p["q_pool"][None, None, :] / np.sqrt(d)
        grads["q_pool"] += np.einsum("nl,nld->d", dscores_pool, h) / np.sqrt(d)

        # Residual block: h = x + attn @ v.
        attn, v, q, k = cache["attn"], cache["v"], cache["q"], cache["k"]
        dx = dh.copy()
        dv = attn.transpose(0, 2, 1) @ dh
        dattn = dh @ v.transpose(0, 2, 1)
        dscores = attn * (
            dattn - (attn * dattn).sum(axis=2, keepdims=True)
        )
        dq = dscores @ k / np.sqrt(d)
        dk = dscores.transpose(0, 2, 1) @ q / np.sqrt(d)
        dx += dq @ p["wq"].T + dk @ p["wk"].T + dv @ p["wv"].T
        grads["wq"] += np.einsum("nld,nle->de", x, dq)
        grads["wk"] += np.einsum("nld,nle->de", x, dk)
        grads["wv"] += np.einsum("nld,nle->de", x, dv)

        # Input channels.
        np.add.at(
            grads["embed"],
            tokens.reshape(-1),
            dx.reshape(-1, d),
        )
        grads["w_gap"] += np.einsum("nl,nld->d", gaps, dx)
        grads["pos"] += dx.sum(axis=0)

    def loss_and_grads(
        self,
        tokens: np.ndarray,
        gaps: np.ndarray,
        labels: np.ndarray,
        row_weights: np.ndarray,
    ) -> Tuple[float, Dict[str, np.ndarray]]:
        """Weighted-CE loss plus exact gradients for the full batch."""
        n = len(labels)
        grads = {
            name: np.zeros_like(array)
            for name, array in self.params.items()
        }
        loss = 0.0
        for start in range(0, n, CHUNK_ROWS):
            stop = min(start + CHUNK_ROWS, n)
            chunk_tokens = tokens[start:stop]
            chunk_gaps = gaps[start:stop]
            cache = self._forward(chunk_tokens, chunk_gaps)
            probabilities = cache["probabilities"]
            chunk_labels = labels[start:stop]
            chunk_weights = row_weights[start:stop]
            eps = 1e-12
            loss += float(
                -np.sum(
                    chunk_weights
                    * (
                        chunk_labels * np.log(probabilities + eps)
                        + (1 - chunk_labels)
                        * np.log(1 - probabilities + eps)
                    )
                )
            ) / n
            dlogits = chunk_weights * (probabilities - chunk_labels) / n
            self._chunk_grads(
                chunk_tokens, chunk_gaps, dlogits, cache, grads
            )
        for name in _L2_PARAMS:
            loss += 0.5 * self.l2 * float((self.params[name] ** 2).sum())
            grads[name] += self.l2 * self.params[name]
        return loss, grads

    # -- training ------------------------------------------------------

    def fit(
        self, dataset: Dataset, rng: np.random.Generator
    ) -> TrainReport:
        labels = _check_trainable(dataset)
        row_weights = class_weights(labels)
        self.init_params(rng)
        # Full-batch Adam: deterministic (no sampling) and far fewer
        # epochs than plain GD on the attention block's loss surface.
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        m = {k: np.zeros_like(a) for k, a in self.params.items()}
        s = {k: np.zeros_like(a) for k, a in self.params.items()}
        loss = float("inf")
        for step in range(1, self.epochs + 1):
            loss, grads = self.loss_and_grads(
                dataset.tokens, dataset.gaps, labels, row_weights
            )
            for name, grad in grads.items():
                m[name] = beta1 * m[name] + (1 - beta1) * grad
                s[name] = beta2 * s[name] + (1 - beta2) * grad**2
                m_hat = m[name] / (1 - beta1**step)
                s_hat = s[name] / (1 - beta2**step)
                self.params[name] -= (
                    self.learning_rate * m_hat / (np.sqrt(s_hat) + eps)
                )
        accuracy = float(
            np.mean(
                (self.predict_proba(dataset) >= self.threshold)
                == (labels >= 0.5)
            )
        )
        return TrainReport(
            epochs=self.epochs,
            final_loss=loss,
            training_accuracy=accuracy,
        )

    def predict_proba(self, dataset: Dataset) -> np.ndarray:
        if not self.fitted:
            raise RuntimeError("model is not fitted")
        n = len(dataset)
        probabilities = np.zeros(n)
        for start in range(0, n, CHUNK_ROWS):
            stop = min(start + CHUNK_ROWS, n)
            cache = self._forward(
                dataset.tokens[start:stop], dataset.gaps[start:stop]
            )
            probabilities[start:stop] = cache["probabilities"]
        return probabilities

    # -- persistence ---------------------------------------------------

    def get_state(self) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
        if not self.fitted:
            raise RuntimeError("model is not fitted")
        header = {
            "d_model": self.d_model,
            "learning_rate": self.learning_rate,
            "l2": self.l2,
            "epochs": self.epochs,
            "threshold": self.threshold,
        }
        return header, {name: self.params[name] for name in PARAM_NAMES}

    @classmethod
    def from_state(
        cls,
        header: Dict[str, object],
        arrays: Dict[str, np.ndarray],
    ) -> "SequenceEncoder":
        model = cls(
            d_model=int(header["d_model"]),
            learning_rate=float(header["learning_rate"]),
            l2=float(header["l2"]),
            epochs=int(header["epochs"]),
            threshold=float(header["threshold"]),
        )
        model.params = {name: arrays[name] for name in PARAM_NAMES}
        return model
