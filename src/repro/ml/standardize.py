"""Shared feature standardisation for every trainable model.

All classifiers in the ladder (logistic, MLP head, attention encoder)
standardise the session feature matrix before training.  Centralising
the fit/transform pair here fixes a real correctness bug the per-model
copies shared: clamping zero-variance columns with an exact
``std == 0.0`` comparison.

A column that is *constant at a non-zero value* (e.g. every session in
a trap-free world has ``trap_hits == 0`` — that one is exact — but
``duration_minutes`` constant at ``0.1`` is not) computes a floating
point std of ~1e-17, not 0.0: the mean of n identical doubles is not
always that double, so the deviations are rounding residue.  Dividing
by that residue turns an information-free column into amplified noise
— O(1) garbage values in training, and arbitrarily huge activations at
predict time for inputs one ulp away from the training constant, which
is how NaN/inf reaches the weights.  The fix detects constant columns
structurally (``max == min``), anchors their mean at the constant
itself, and clamps their std to 1.0, so a constant column transforms
to *exactly* zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Standardiser:
    """Per-column ``(x - mean) / std`` with degenerate-column safety.

    Fit once on the training matrix; transform train and inference
    matrices with the frozen statistics.  Columns with zero variance
    (including float-rounding-residue variance on constant non-zero
    columns) transform to exactly 0.0 and therefore carry no gradient.
    """

    mean: np.ndarray
    std: np.ndarray

    @classmethod
    def fit(cls, matrix: np.ndarray) -> "Standardiser":
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError(
                f"expected a 2-D feature matrix, got shape {matrix.shape}"
            )
        if matrix.shape[0] == 0:
            return cls(
                mean=np.zeros(matrix.shape[1]),
                std=np.ones(matrix.shape[1]),
            )
        mean = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        constant = matrix.max(axis=0) == matrix.min(axis=0)
        # Anchor a constant column's mean at the constant itself (the
        # computed mean can differ in the last ulp) and never divide by
        # its rounding-residue std.
        mean = np.where(constant, matrix[0], mean)
        std = np.where(constant | (std == 0.0), 1.0, std)
        return cls(mean=mean, std=std)

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        matrix = np.asarray(matrix, dtype=float)
        return (matrix - self.mean) / self.std
