"""Learned detection arm: feature store, model ladder, training.

``repro.ml`` holds everything trainable: the shared constant-column-safe
:class:`~repro.ml.standardize.Standardiser`, sequence/feature dataset
encoding, the model ladder (logistic baseline, MLP head, attention
encoder over per-session event sequences), the versioned on-disk model
format, and the deterministic training loop behind ``repro train`` /
``repro predict``.
"""

from .data import Dataset, build_dataset, encode_sequence
from .detector import LEARNED_DETECTOR, LearnedSessionDetector
from .encoder import SequenceEncoder
from .io import load_model, save_model
from .models import LogisticHead, MLPHead, TrainReport
from .standardize import Standardiser
from .store import FeatureStore, FeatureStoreAdapter
from .train import (
    TrainConfig,
    TrainResult,
    config_hash,
    dataset_digest,
    train_model,
    weights_digest,
)

__all__ = [
    "Dataset",
    "FeatureStore",
    "FeatureStoreAdapter",
    "LEARNED_DETECTOR",
    "LearnedSessionDetector",
    "LogisticHead",
    "MLPHead",
    "SequenceEncoder",
    "Standardiser",
    "TrainConfig",
    "TrainReport",
    "TrainResult",
    "build_dataset",
    "config_hash",
    "dataset_digest",
    "encode_sequence",
    "load_model",
    "save_model",
    "train_model",
    "weights_digest",
]
