"""Feature store: the persistence layer between pipeline and trainer.

The stream pipeline sees every session exactly once, at close; the
trainer wants to iterate over all of them, repeatedly, later.  The
:class:`FeatureStore` bridges the two: sessions are encoded the moment
they close (aggregate :mod:`~repro.core.detection.features` vector plus
the raw per-event token/gap sequence from :mod:`repro.ml.data`) and
appended to columnar arrays that round trip through a single ``.npz``
file.  :class:`FeatureStoreAdapter` is the pipeline hook — a silent
adapter that captures training data while the detection adapters judge.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Union

import numpy as np

from ..core.detection.features import FEATURE_NAMES, extract_features
from ..core.detection.verdict import Verdict
from ..stream.adapters import StreamAdapter
from ..web.logs import Session
from .data import Dataset, MAX_SEQUENCE_LENGTH, encode_sequence


class FeatureStore:
    """Append-only columnar store of encoded sessions."""

    def __init__(self) -> None:
        self.session_ids: List[str] = []
        self.actor_classes: List[str] = []
        self._features: List[np.ndarray] = []
        self._tokens: List[np.ndarray] = []
        self._gaps: List[np.ndarray] = []
        self._labels: List[float] = []

    def __len__(self) -> int:
        return len(self.session_ids)

    def add_session(
        self, session: Session, with_truth: bool = True
    ) -> None:
        """Encode and append one closed session.

        ``with_truth`` keeps the simulation's ground-truth label (the
        point of training on our own generator); pass ``False`` when
        capturing unlabelled traffic for scoring.
        """
        self.session_ids.append(session.session_id)
        self._features.append(extract_features(session).vector())
        tokens, gaps = encode_sequence(session)
        self._tokens.append(tokens)
        self._gaps.append(gaps)
        if with_truth:
            self._labels.append(float(session.is_attacker))
            self.actor_classes.append(session.actor_class)
        else:
            self._labels.append(float("nan"))
            self.actor_classes.append("")

    def extend(
        self, sessions: Iterable[Session], with_truth: bool = True
    ) -> None:
        for session in sessions:
            self.add_session(session, with_truth=with_truth)

    def to_dataset(self) -> Dataset:
        """Materialise the store as a training/scoring dataset."""
        n = len(self)
        return Dataset(
            session_ids=list(self.session_ids),
            features=(
                np.vstack(self._features)
                if n
                else np.zeros((0, len(FEATURE_NAMES)))
            ),
            tokens=(
                np.vstack(self._tokens)
                if n
                else np.zeros((0, MAX_SEQUENCE_LENGTH), dtype=np.int16)
            ),
            gaps=(
                np.vstack(self._gaps)
                if n
                else np.zeros((0, MAX_SEQUENCE_LENGTH))
            ),
            labels=np.asarray(self._labels, dtype=float),
            actor_classes=list(self.actor_classes),
        )

    def save(self, path: Union[str, Path]) -> None:
        """Persist the store as one compressed ``.npz``."""
        dataset = self.to_dataset()
        np.savez_compressed(
            path,
            session_ids=np.array(dataset.session_ids, dtype=np.str_),
            actor_classes=np.array(
                dataset.actor_classes, dtype=np.str_
            ),
            features=dataset.features,
            tokens=dataset.tokens,
            gaps=dataset.gaps,
            labels=dataset.labels,
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FeatureStore":
        with np.load(path, allow_pickle=False) as archive:
            store = cls()
            store.session_ids = [str(s) for s in archive["session_ids"]]
            store.actor_classes = [
                str(s) for s in archive["actor_classes"]
            ]
            store._features = list(archive["features"])
            store._tokens = list(archive["tokens"])
            store._gaps = list(archive["gaps"])
            store._labels = [float(v) for v in archive["labels"]]
        return store


class FeatureStoreAdapter(StreamAdapter):
    """Stream adapter that captures every closed session into a store.

    Emits no verdicts — it rides the same pipeline as the detection
    adapters, so training data comes from the exact sessionizer the
    learned detector will later be judged behind (no train/serve skew).
    """

    name = "feature-store"

    def __init__(
        self,
        store: Optional[FeatureStore] = None,
        with_truth: bool = True,
    ) -> None:
        self.store = store if store is not None else FeatureStore()
        self.with_truth = with_truth

    def on_session_closed(self, session: Session) -> Iterable[Verdict]:
        self.store.add_session(session, with_truth=self.with_truth)
        return ()
