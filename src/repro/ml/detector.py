"""The learned arm as a detector family.

Wraps any fitted ladder rung behind the same surface every other family
exposes — ``judge(session)`` / ``judge_all(sessions)`` returning
:class:`~repro.core.detection.verdict.Verdict` — so the fusion layer,
the streaming :class:`~repro.stream.adapters.SessionDetectorAdapter`
and the benchmark harnesses treat a trained model exactly like the
hand-tuned detectors.  The family name ``learned-sequence`` is the
seventh entry in the fusion weight table.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Tuple, Union

from ..core.detection.verdict import Verdict
from ..web.logs import Session
from .data import build_dataset
from .io import ModelType, load_model

#: Fusion-family name for learned-model verdicts.
LEARNED_DETECTOR = "learned-sequence"


class LearnedSessionDetector:
    """Scores sessions with a trained model from the ladder.

    ``threshold`` defaults to the model's own (usually FPR-calibrated
    at train time, see :mod:`repro.ml.train`); subjects are session
    ids, like every other session-level family.
    """

    name = LEARNED_DETECTOR

    def __init__(self, model: ModelType) -> None:
        if not model.fitted:
            raise ValueError("learned detector needs a fitted model")
        self.model = model

    @classmethod
    def from_file(
        cls, path: Union[str, Path]
    ) -> Tuple["LearnedSessionDetector", dict]:
        """Load a trained model and return ``(detector, meta)``."""
        model, meta = load_model(path)
        return cls(model), meta

    def _verdict(self, session_id: str, probability: float) -> Verdict:
        flagged = probability >= self.model.threshold
        return Verdict(
            subject_id=session_id,
            detector=self.name,
            score=float(probability),
            is_bot=bool(flagged),
            reasons=(f"{self.model.kind}-probability",) if flagged else (),
        )

    def judge(self, session: Session) -> Verdict:
        dataset = build_dataset([session])
        probability = float(self.model.predict_proba(dataset)[0])
        return self._verdict(session.session_id, probability)

    def judge_all(self, sessions: Sequence[Session]) -> List[Verdict]:
        sessions = list(sessions)
        if not sessions:
            return []
        dataset = build_dataset(sessions)
        probabilities = self.model.predict_proba(dataset)
        return [
            self._verdict(session.session_id, float(probability))
            for session, probability in zip(sessions, probabilities)
        ]

    def judge_index(self, index) -> List[Verdict]:
        """Judge a :class:`~repro.core.detection.session_index.
        SessionIndex` — verdict-identical to :meth:`judge_all` on the
        corresponding sessions, via the columnar dataset builder."""
        from .data import build_dataset_columnar

        if not len(index):
            return []
        dataset = build_dataset_columnar(index)
        probabilities = self.model.predict_proba(dataset)
        return [
            self._verdict(session_id, float(probability))
            for session_id, probability in zip(
                index.session_ids, probabilities
            )
        ]
