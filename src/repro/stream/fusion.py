"""Incremental noisy-OR verdict fusion.

:class:`~repro.core.detection.fusion.FusionDetector` combines verdict
*sets* after the fact; the stream needs the same combination updated
one verdict at a time.  Because the noisy-OR survival product is
commutative and associative, folding verdicts in arrival order yields
exactly the verdicts :meth:`FusionDetector.fuse` computes over the
accumulated set — the property the equivalence tests pin.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.detection.fusion import FusionDetector
from ..core.detection.verdict import Verdict


class IncrementalFusion:
    """Per-subject noisy-OR state updated one verdict at a time."""

    def __init__(self, fusion: Optional[FusionDetector] = None) -> None:
        self.fusion = fusion if fusion is not None else FusionDetector()
        self._survival: Dict[str, float] = {}
        self._reasons: Dict[str, List[str]] = {}
        self.updates = 0

    def update(self, verdict: Verdict) -> Verdict:
        """Fold one verdict in; returns the subject's current fused
        verdict (same thresholding as the batch fusion)."""
        self.updates += 1
        subject = verdict.subject_id
        weight = self.fusion.weight_for(verdict.detector)
        survival = self._survival.get(subject, 1.0)
        survival *= 1.0 - weight * verdict.score
        self._survival[subject] = survival
        if verdict.is_bot:
            reasons = self._reasons.setdefault(subject, [])
            if verdict.detector not in reasons:
                reasons.append(verdict.detector)
        return self._fused_for(subject)

    def current(self, subject_id: str) -> Optional[Verdict]:
        """The subject's fused verdict so far (None if never seen)."""
        if subject_id not in self._survival:
            return None
        return self._fused_for(subject_id)

    def fused(self) -> List[Verdict]:
        """All fused verdicts, sorted by subject id — identical to
        ``FusionDetector.fuse`` over every update so far."""
        return [
            self._fused_for(subject) for subject in sorted(self._survival)
        ]

    def _fused_for(self, subject_id: str) -> Verdict:
        score = 1.0 - self._survival[subject_id]
        return Verdict(
            subject_id=subject_id,
            detector=self.fusion.name,
            score=min(max(score, 0.0), 1.0),
            is_bot=score >= self.fusion.threshold,
            reasons=tuple(self._reasons.get(subject_id, ())),
        )

    @property
    def subjects_tracked(self) -> int:
        return len(self._survival)
