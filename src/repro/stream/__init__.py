"""repro.stream — online streaming detection over live request logs.

The batch pipeline (``sessionize`` + detector families) only runs once
a scenario has finished writing its :class:`~repro.web.logs.WebLog`.
This package processes :class:`~repro.web.logs.LogEntry` events *as
they are emitted*, in bounded memory:

* :class:`~repro.stream.store.KeyedStore` — per-client keyed state
  with idle eviction and peak-size accounting;
* :class:`~repro.stream.sessionizer.StreamSessionizer` — incremental
  session reconstruction, exactly equivalent to the batch
  ``sessionize`` on the same entry stream;
* :mod:`~repro.stream.adapters` — incremental adapters feeding the
  existing detector families, plus fast-path entity detectors that can
  fire while the offending session is still open;
* :class:`~repro.stream.fusion.IncrementalFusion` — per-subject
  noisy-OR fusion updated one verdict at a time;
* :class:`~repro.stream.pipeline.StreamPipeline` — ties it together
  and pushes convictions into the online mitigation sink mid-run.
"""

from .adapters import (
    HoldVelocityAdapter,
    SessionDetectorAdapter,
    SmsVelocityAdapter,
    StreamAdapter,
    entity_subject,
)
from .feed import RecordFeed
from .fusion import IncrementalFusion
from .pipeline import StreamPipeline, StreamReport, batch_session_verdicts
from .sessionizer import StreamSessionizer
from .sms_records import (
    DestinationSurgeAdapter,
    NumberReputationAdapter,
    SmsRecordAdapter,
)
from .store import KeyedStore

__all__ = [
    "DestinationSurgeAdapter",
    "HoldVelocityAdapter",
    "IncrementalFusion",
    "KeyedStore",
    "NumberReputationAdapter",
    "RecordFeed",
    "SessionDetectorAdapter",
    "SmsRecordAdapter",
    "SmsVelocityAdapter",
    "StreamAdapter",
    "StreamPipeline",
    "StreamReport",
    "StreamSessionizer",
    "batch_session_verdicts",
    "entity_subject",
]
