"""Streaming adapters for the SMS-record detector families.

Phone numbers never appear in the web log — a :class:`~repro.web.logs.
LogEntry` records path and client, not request parameters — so the
Case D/E families (number reputation, destination surge) cannot ride
the entry stream directly.  Instead each adapter holds a
:class:`~repro.stream.feed.RecordFeed` cursor over the live
:class:`~repro.sms.gateway.SmsGateway` record list and drains the new
tail on every log entry: the gateway appends the SMS record *before*
the application logs the request, so a conviction triggered by request
N is already fused (and actioned by the online sink) before request
N+1 arrives.

Because the underlying scorers are pure functions of the record
sequence, draining per entry versus feeding the finished log in one go
(:func:`~repro.core.detection.numbers.score_sms_records`) produces
identical verdict sets — the stream-equivalence property the test
suite pins for both families.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.detection.numbers import NumberReputationScorer
from ..core.detection.surge import DestinationSurgeScorer
from ..core.detection.verdict import Verdict
from ..web.logs import LogEntry
from .adapters import StreamAdapter
from .feed import RecordFeed


class SmsRecordAdapter(StreamAdapter):
    """Base adapter: drains an SMS record feed through a scorer."""

    def __init__(self, scorer, feed: Optional[RecordFeed] = None) -> None:
        self.scorer = scorer
        self.name = scorer.name
        self.feed = feed

    def attach(self, feed: RecordFeed) -> None:
        """Late-bind the record feed (worlds are built after adapters
        in some wiring orders)."""
        self.feed = feed

    def on_entry(self, entry: LogEntry, now: float) -> Iterable[Verdict]:
        if self.feed is None:
            return ()
        verdicts = []
        for record in self.feed.drain():
            verdicts.extend(self.scorer.observe(record))
        return verdicts

    def end_of_stream(self) -> Iterable[Verdict]:
        verdicts = []
        if self.feed is not None:
            for record in self.feed.drain():
                verdicts.extend(self.scorer.observe(record))
        verdicts.extend(self.scorer.finish())
        return verdicts

    @property
    def convicted_fingerprints(self):
        return self.scorer.convicted_fingerprints


class NumberReputationAdapter(SmsRecordAdapter):
    """Case D fast path: OTP reuse-window + burned-number reputation."""

    def __init__(
        self,
        feed: Optional[RecordFeed] = None,
        reuse_threshold: int = 5,
        reuse_window: float = 3600.0,
    ) -> None:
        super().__init__(
            NumberReputationScorer(
                reuse_threshold=reuse_threshold,
                reuse_window=reuse_window,
            ),
            feed,
        )


class DestinationSurgeAdapter(SmsRecordAdapter):
    """Case E fast path: per-destination notification flood/EWMA surge."""

    def __init__(
        self,
        feed: Optional[RecordFeed] = None,
        window: float = 600.0,
        flood_threshold: int = 30,
    ) -> None:
        super().__init__(
            DestinationSurgeScorer(
                window=window,
                flood_threshold=flood_threshold,
            ),
            feed,
        )
