"""Incremental session reconstruction.

:class:`StreamSessionizer` is the online mirror of
:func:`repro.web.logs.sessionize`: feed it the same time-ordered entry
stream and the set of sessions it emits (closed incrementally plus the
final :meth:`flush`) is *identical* — same grouping, same idle-gap
splits, same session ids — while holding only the currently-open
sessions in memory.

The equivalence argument: both run the same single pass.  The batch
version closes a session lazily, when the next same-key entry arrives
past the idle gap; :meth:`close_idle` merely closes such sessions
early, which is safe because event time is monotone — any future entry
from that key must arrive at or after the current stream time, hence
also past the gap.  Proactive closure is what turns the open-session
table into a *bounded* working set instead of one entry list per
client ever seen.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..web.logs import DEFAULT_IDLE_GAP, LogEntry, Session
from .store import KeyedStore

#: (ip_address, fingerprint_id) — the batch sessionizer's client key.
ClientKey = Tuple[str, str]


class StreamSessionizer:
    """Groups a live entry stream into sessions, one pass, bounded state.

    ``max_open_sessions`` optionally caps the open-session table; when
    the cap forces a session closed early the stream diverges from the
    batch reconstruction (counted in ``forced_closes``), so leave it
    ``None`` when exact equivalence matters.
    """

    def __init__(
        self,
        idle_gap: float = DEFAULT_IDLE_GAP,
        max_open_sessions: Optional[int] = None,
    ) -> None:
        if idle_gap <= 0:
            raise ValueError(f"idle_gap must be positive: {idle_gap}")
        self.idle_gap = idle_gap
        self._open: KeyedStore[ClientKey, Session] = KeyedStore(
            max_keys=max_open_sessions
        )
        self._counter = 0
        self._last_time: Optional[float] = None
        self.sessions_closed = 0
        self.entries_observed = 0
        self.forced_closes = 0

    # -- stream interface ---------------------------------------------------------

    def observe(self, entry: LogEntry) -> List[Session]:
        """Ingest one entry; returns any sessions this entry closed."""
        if self._last_time is not None and entry.time < self._last_time:
            raise ValueError(
                f"log entries must be time-ordered: {entry.time} < "
                f"{self._last_time}"
            )
        self._last_time = entry.time
        self.entries_observed += 1

        key = (entry.client.ip_address, entry.client.fingerprint_id)
        closed: List[Session] = []
        # A touching read: observing an entry is activity, so the key's
        # idle clock advances with event time even on this read path —
        # a continuously-hot session can never be evicted as idle.
        session = self._open.get(key, now=entry.time)
        if session is not None and entry.time - session.end > self.idle_gap:
            self._open.pop(key)
            closed.append(session)
            session = None
        if session is None:
            session, overflow = self._open.get_or_create(
                key, entry.time, lambda: self._new_session(entry)
            )
            for _, victim in overflow:
                self.forced_closes += 1
                closed.append(victim)
        session.entries.append(entry)
        self.sessions_closed += len(closed)
        return closed

    def close_idle(self, now: Optional[float] = None) -> List[Session]:
        """Close (and return) every session idle past the gap at ``now``
        (default: the latest observed entry time)."""
        if now is None:
            now = self._last_time
        if now is None:
            return []
        closed = [
            session for _, session in self._open.evict_idle(now, self.idle_gap)
        ]
        self.sessions_closed += len(closed)
        return closed

    def flush(self) -> List[Session]:
        """End of stream: close every remaining open session."""
        closed = [session for _, session in self._open.items()]
        for session in closed:
            self._open.pop(
                (session.ip_address, session.fingerprint_id)
            )
        self.sessions_closed += len(closed)
        return closed

    def open_session_for(self, key: ClientKey) -> Optional[Session]:
        """The currently-open session for a client key, if any.

        Deliberately a *non-touching* read: introspection (dashboards,
        tests, mitigation peeking at open state) must not keep a
        session alive past its idle gap — only observed entries count
        as activity.
        """
        return self._open.get(key)

    # -- accounting ------------------------------------------------------------

    @property
    def open_sessions(self) -> int:
        return len(self._open)

    @property
    def peak_open_sessions(self) -> int:
        """High-water mark of the open-session table — the number the
        bounded-memory acceptance test pins."""
        return self._open.peak_size

    def _new_session(self, entry: LogEntry) -> Session:
        self._counter += 1
        return Session(
            session_id=f"S{self._counter:07d}",
            ip_address=entry.client.ip_address,
            fingerprint_id=entry.client.fingerprint_id,
        )
