"""Incremental adapters feeding the detector families.

Two kinds of adapter ride the stream:

* **session adapters** (:class:`SessionDetectorAdapter`) judge each
  session *the moment it closes*, with the unmodified batch detector —
  so end-of-stream verdicts are identical to running the detector over
  the batch ``sessionize`` output, which is the equivalence the replay
  harness asserts;
* **entity fast paths** (:class:`HoldVelocityAdapter`,
  :class:`SmsVelocityAdapter`) keep sliding per-client tallies and can
  convict *while the session is still open* — the only verdicts that
  arrive early enough for mid-attack mitigation, since a session only
  closes after its client has already gone idle (or rotated away).

Entity subjects are namespaced (``fp:<fingerprint_id>``) so they never
collide with session ids inside the fusion layer.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Protocol

from ..core.detection.subjects import FP_SUBJECT_PREFIX, entity_subject
from ..core.detection.verdict import Verdict
from ..web.logs import LogEntry, Session
from ..web.request import BOARDING_PASS_SMS, HOLD
from .store import KeyedStore


class SessionJudge(Protocol):
    """The slice of a batch detector the session adapter needs."""

    name: str

    def judge(self, session: Session) -> Verdict: ...


class StreamAdapter:
    """Base adapter: override any subset of the three hooks."""

    name = "stream-adapter"

    def on_entry(self, entry: LogEntry, now: float) -> Iterable[Verdict]:
        """Called for every log entry, in stream order."""
        return ()

    def on_session_closed(self, session: Session) -> Iterable[Verdict]:
        """Called when the sessionizer closes a session."""
        return ()

    def end_of_stream(self) -> Iterable[Verdict]:
        """Called once after the final flush."""
        return ()

    def evict_idle(self, now: float, idle_gap: float) -> None:
        """Drop per-client state idle past ``idle_gap`` (no-op default)."""


class SessionDetectorAdapter(StreamAdapter):
    """Judges closed sessions with an unmodified batch detector.

    Stateless between sessions, so its memory footprint is zero — all
    windowing lives in the sessionizer.
    """

    def __init__(self, detector: SessionJudge) -> None:
        self.detector = detector
        self.name = detector.name
        self.sessions_judged = 0

    def on_session_closed(self, session: Session) -> Iterable[Verdict]:
        self.sessions_judged += 1
        return (self.detector.judge(session),)


class _SlidingCounterAdapter(StreamAdapter):
    """Shared machinery: per-fingerprint sliding-window event counter
    that convicts (once) when the window count reaches a threshold."""

    #: Request path this adapter counts (subclasses set it).
    path = ""
    #: Reason string attached to convictions.
    reason = "velocity"

    def __init__(
        self,
        threshold: int,
        window: float,
        max_clients: int = 100_000,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1: {threshold}")
        if window <= 0:
            raise ValueError(f"window must be positive: {window}")
        self.threshold = threshold
        self.window = window
        self._tallies: KeyedStore[str, Deque[float]] = KeyedStore(
            max_keys=max_clients
        )
        self._convicted: set = set()
        self.convictions = 0

    def on_entry(self, entry: LogEntry, now: float) -> Iterable[Verdict]:
        if entry.path != self.path:
            return ()
        fingerprint_id = entry.client.fingerprint_id
        if fingerprint_id in self._convicted:
            return ()
        # get_or_create is a touching access, so a fingerprint that
        # keeps sending events is never evicted as idle mid-window;
        # evict_idle below only reaps tallies with no recent events.
        tally, _ = self._tallies.get_or_create(
            fingerprint_id, now, deque
        )
        tally.append(entry.time)
        while tally and entry.time - tally[0] > self.window:
            tally.popleft()
        if len(tally) < self.threshold:
            return ()
        self._convicted.add(fingerprint_id)
        self._tallies.pop(fingerprint_id)
        self.convictions += 1
        return (
            Verdict(
                subject_id=entity_subject(fingerprint_id),
                detector=self.name,
                score=1.0,
                is_bot=True,
                reasons=(
                    f"{self.reason}:{len(tally)}-in-{self.window:.0f}s",
                ),
            ),
        )

    def evict_idle(self, now: float, idle_gap: float) -> None:
        # A tally idle past the detection window can never refill fast
        # enough to convict from its stale prefix; drop it.
        self._tallies.evict_idle(now, max(self.window, idle_gap))

    @property
    def tracked_clients(self) -> int:
        return len(self._tallies)

    @property
    def peak_tracked_clients(self) -> int:
        return self._tallies.peak_size


class HoldVelocityAdapter(_SlidingCounterAdapter):
    """Convicts a fingerprint making too many ``/hold`` requests in a
    sliding window — the online version of the mitigation controller's
    holds-per-fingerprint frequency rule, firing per-event instead of
    on the next periodic evaluation."""

    name = "hold-velocity"
    path = HOLD
    reason = "hold-velocity"


class SmsVelocityAdapter(_SlidingCounterAdapter):
    """Convicts a fingerprint pumping boarding-pass SMS requests — the
    streaming fast path for the Case C abuse."""

    name = "sms-velocity"
    path = BOARDING_PASS_SMS
    reason = "sms-velocity"
