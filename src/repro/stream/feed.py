"""Cursors over growing substrate record lists.

The simulation substrates (booking holds, SMS gateway) append records
to plain Python lists as the world runs.  Detectors that consume those
records incrementally — the campaign graph, the SMS-record detector
families — poll through a :class:`RecordFeed`: a cursor that remembers
how far it has read and returns only the new tail, O(new) per call, so
polling from the stream entry hot path stays cheap.

Historically this lived in :mod:`repro.graph.stream`; it moved here so
:mod:`repro.stream` adapters can use it without a stream→graph import
cycle (the graph package re-exports it for compatibility).
"""

from __future__ import annotations

from typing import Sequence


class RecordFeed:
    """Cursor over a growing record list (booking or SMS logs)."""

    def __init__(self, source: Sequence) -> None:
        self._source = source
        self._cursor = 0

    def drain(self) -> Sequence:
        tail = self._source[self._cursor:]
        self._cursor += len(tail)
        return tail

    @property
    def consumed(self) -> int:
        return self._cursor
