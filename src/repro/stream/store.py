"""Bounded-memory keyed state for streaming consumers.

A production stream processor cannot keep one state blob per client
forever — "heavy traffic from millions of users" means the keyed state
must be evicted once a client goes idle.  :class:`KeyedStore` is the
small primitive every streaming component here builds on: a dict of
per-key state with last-touched timestamps, idle eviction, an optional
hard key cap (oldest-idle-first overflow eviction), and peak-size
accounting so tests can assert the memory bound actually holds.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class KeyedStore(Generic[K, V]):
    """Per-key state with idle eviction and peak-size accounting.

    All time values are *event time* (the simulation clock), never wall
    clock — eviction decisions must be deterministic and replayable.
    """

    def __init__(self, max_keys: Optional[int] = None) -> None:
        if max_keys is not None and max_keys < 1:
            raise ValueError(f"max_keys must be >= 1: {max_keys}")
        self.max_keys = max_keys
        self._values: Dict[K, V] = {}
        self._last_touched: Dict[K, float] = {}
        self.peak_size = 0
        self.evictions = 0

    # -- access ----------------------------------------------------------------

    def get(self, key: K, now: Optional[float] = None) -> Optional[V]:
        """Read the state for ``key`` (``None`` when absent).

        Pass ``now`` to make the read count as activity: a key that is
        only ever *read* on the hot path would otherwise be evicted as
        idle while hot, because only writes refreshed its clock.
        Omitting ``now`` keeps the read introspective — monitoring and
        test probes must not extend a key's lifetime.
        """
        if now is not None and key in self._values:
            self._last_touched[key] = now
        return self._values.get(key)

    def get_or_create(
        self, key: K, now: float, factory: Callable[[], V]
    ) -> Tuple[V, List[Tuple[K, V]]]:
        """Fetch (touching) or create the state for ``key``.

        Returns ``(value, overflow)`` where ``overflow`` lists entries
        evicted to respect ``max_keys`` — the caller decides what a
        forced eviction means (e.g. force-closing a session).
        """
        overflow: List[Tuple[K, V]] = []
        if key not in self._values:
            if (
                self.max_keys is not None
                and len(self._values) >= self.max_keys
            ):
                overflow = self._evict_oldest(
                    len(self._values) - self.max_keys + 1
                )
            self._values[key] = factory()
            self.peak_size = max(self.peak_size, len(self._values))
        self._last_touched[key] = now
        return self._values[key], overflow

    def touch(self, key: K, now: float) -> None:
        if key in self._values:
            self._last_touched[key] = now

    def pop(self, key: K) -> Optional[V]:
        self._last_touched.pop(key, None)
        return self._values.pop(key, None)

    # -- eviction -------------------------------------------------------------

    def evict_idle(self, now: float, idle_gap: float) -> List[Tuple[K, V]]:
        """Remove every key untouched for more than ``idle_gap``."""
        stale = [
            key
            for key, touched in self._last_touched.items()
            if now - touched > idle_gap
        ]
        evicted = []
        for key in stale:
            evicted.append((key, self._values.pop(key)))
            del self._last_touched[key]
        self.evictions += len(evicted)
        return evicted

    def _evict_oldest(self, count: int) -> List[Tuple[K, V]]:
        oldest = sorted(
            self._last_touched.items(), key=lambda item: item[1]
        )[:count]
        evicted = []
        for key, _ in oldest:
            evicted.append((key, self._values.pop(key)))
            del self._last_touched[key]
        self.evictions += len(evicted)
        return evicted

    # -- introspection ------------------------------------------------------------

    def items(self) -> Iterator[Tuple[K, V]]:
        return iter(list(self._values.items()))

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: K) -> bool:
        return key in self._values
