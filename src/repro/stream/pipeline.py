"""The online detection pipeline.

:class:`StreamPipeline` consumes one :class:`~repro.web.logs.LogEntry`
at a time — either live, subscribed to a :class:`~repro.web.logs.WebLog`
while the simulation is still running, or offline from a captured trace
(:mod:`repro.trace`).  Each entry flows through

1. the incremental sessionizer (closing idle sessions as event time
   advances),
2. every adapter's fast path (``on_entry``) and session hook
   (``on_session_closed``),
3. incremental noisy-OR fusion,

and any subject whose *fused* verdict crosses the bot threshold is
pushed to the verdict sink exactly once — while the run is still in
progress, which is what lets mitigation act mid-attack.

End-of-stream, :meth:`finish` flushes the sessionizer and returns a
:class:`StreamReport` whose session verdicts are identical to the batch
pipeline's on the same log (see :func:`batch_session_verdicts`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, List, Optional, Protocol, Sequence

from ..core.detection.fusion import FusionDetector
from ..core.detection.verdict import Verdict
from ..web.logs import DEFAULT_IDLE_GAP, LogEntry, Session, WebLog
from .adapters import SessionJudge, StreamAdapter
from .fusion import IncrementalFusion
from .sessionizer import StreamSessionizer


class VerdictSink(Protocol):
    """Receives each subject's first bot-positive fused verdict."""

    def handle(self, verdict: Verdict, now: float) -> None: ...


@dataclass
class StreamReport:
    """Everything one streaming run produced."""

    events_processed: int
    sessions_closed: int
    #: Per-session detector verdicts, in judge order (session close
    #: order, then adapter order) — batch-equivalent as a set.
    session_verdicts: List[Verdict] = field(default_factory=list)
    #: Fast-path entity verdicts (``fp:`` subjects), in emission order.
    entity_verdicts: List[Verdict] = field(default_factory=list)
    #: Final fused verdict per subject, sorted by subject id.
    fused: List[Verdict] = field(default_factory=list)
    #: Closed sessions, sorted by start time (batch-equivalent).
    sessions: List[Session] = field(default_factory=list)
    peak_open_sessions: int = 0
    sink_notifications: int = 0

    def bot_subjects(self) -> List[str]:
        return [v.subject_id for v in self.fused if v.is_bot]


class StreamPipeline:
    """Online sessionization → incremental detection → fusion → sink."""

    def __init__(
        self,
        adapters: Sequence[StreamAdapter],
        fusion: Optional[FusionDetector] = None,
        sink: Optional[VerdictSink] = None,
        idle_gap: float = DEFAULT_IDLE_GAP,
        evict_every: int = 256,
        max_open_sessions: Optional[int] = None,
        obs: Optional[object] = None,
    ) -> None:
        if evict_every < 1:
            raise ValueError(f"evict_every must be >= 1: {evict_every}")
        self.adapters = list(adapters)
        self.sink = sink
        self.evict_every = evict_every
        #: Optional wall-clock instrumentation (duck-typed
        #: :class:`repro.obs.ObsRegistry`): per-stage latency timers
        #: (``stream.stage.sessionize`` / ``.adapters`` / ``.fusion``
        #: / ``.evict``) and entry/verdict counters.  ``None`` keeps
        #: ingestion on the zero-overhead path.  Note the fusion stage
        #: runs nested inside the adapter/session stages, so stage
        #: totals overlap rather than summing to the pipeline total.
        self.obs = obs
        self.sessionizer = StreamSessionizer(
            idle_gap=idle_gap, max_open_sessions=max_open_sessions
        )
        self.fusion = IncrementalFusion(fusion)
        self._session_verdicts: List[Verdict] = []
        self._entity_verdicts: List[Verdict] = []
        self._sessions: List[Session] = []
        self._notified: set = set()
        self._finished = False
        self.events_processed = 0
        self.sink_notifications = 0

    # -- ingestion -----------------------------------------------------------

    def attach(self, log: WebLog) -> Callable[[], None]:
        """Subscribe to a live log; returns the unsubscribe callable."""
        return log.subscribe(self.process)

    def process(self, entry: LogEntry) -> None:
        """Ingest one entry (live observer or replay feed)."""
        if self._finished:
            raise RuntimeError("pipeline already finished")
        self.events_processed += 1
        now = entry.time
        obs = self.obs
        if obs is None:
            for session in self.sessionizer.observe(entry):
                self._on_session_closed(session)
            for adapter in self.adapters:
                for verdict in adapter.on_entry(entry, now):
                    self._entity_verdicts.append(verdict)
                    self._fuse(verdict, now)
            if self.events_processed % self.evict_every == 0:
                for session in self.sessionizer.close_idle(now):
                    self._on_session_closed(session)
                for adapter in self.adapters:
                    adapter.evict_idle(now, self.sessionizer.idle_gap)
            return

        obs.increment("stream.entries")
        started = perf_counter()
        closed = self.sessionizer.observe(entry)
        obs.timer("stream.stage.sessionize").observe(
            perf_counter() - started
        )
        for session in closed:
            self._on_session_closed(session)
        started = perf_counter()
        for adapter in self.adapters:
            for verdict in adapter.on_entry(entry, now):
                self._entity_verdicts.append(verdict)
                obs.increment("stream.verdicts.entity")
                self._fuse(verdict, now)
        obs.timer("stream.stage.adapters").observe(
            perf_counter() - started
        )
        if self.events_processed % self.evict_every == 0:
            started = perf_counter()
            for session in self.sessionizer.close_idle(now):
                self._on_session_closed(session)
            for adapter in self.adapters:
                adapter.evict_idle(now, self.sessionizer.idle_gap)
            obs.timer("stream.stage.evict").observe(
                perf_counter() - started
            )

    def finish(self) -> StreamReport:
        """Flush open state and assemble the final report."""
        if self._finished:
            raise RuntimeError("pipeline already finished")
        self._finished = True
        now = self._last_time()
        for session in self.sessionizer.flush():
            self._on_session_closed(session, now=now)
        for adapter in self.adapters:
            for verdict in adapter.end_of_stream():
                self._entity_verdicts.append(verdict)
                self._fuse(verdict, now)
        self._sessions.sort(key=lambda s: s.start)
        obs = self.obs
        if obs is not None:
            obs.set_gauge(
                "stream.events_processed", float(self.events_processed)
            )
            obs.set_gauge(
                "stream.sessions_closed", float(len(self._sessions))
            )
            # Per-stage throughput: entries per second of ingest-path
            # busy time (sessionize + adapters + evict; fusion nests
            # inside and is excluded to avoid double counting).
            busy = sum(
                obs.timer(f"stream.stage.{stage}").total
                for stage in ("sessionize", "adapters", "evict")
            )
            if busy > 0:
                obs.set_gauge(
                    "stream.events_per_second",
                    self.events_processed / busy,
                )
        return StreamReport(
            events_processed=self.events_processed,
            sessions_closed=len(self._sessions),
            session_verdicts=list(self._session_verdicts),
            entity_verdicts=list(self._entity_verdicts),
            fused=self.fusion.fused(),
            sessions=list(self._sessions),
            peak_open_sessions=self.sessionizer.peak_open_sessions,
            sink_notifications=self.sink_notifications,
        )

    # -- internals ------------------------------------------------------------

    def _on_session_closed(
        self, session: Session, now: Optional[float] = None
    ) -> None:
        self._sessions.append(session)
        when = now if now is not None else session.end
        obs = self.obs
        started = perf_counter() if obs is not None else 0.0
        for adapter in self.adapters:
            for verdict in adapter.on_session_closed(session):
                self._session_verdicts.append(verdict)
                self._fuse(verdict, when)
        if obs is not None:
            obs.increment("stream.sessions_closed")
            obs.timer("stream.stage.session_judges").observe(
                perf_counter() - started
            )

    def _fuse(self, verdict: Verdict, now: float) -> None:
        obs = self.obs
        if obs is not None:
            started = perf_counter()
            fused = self.fusion.update(verdict)
            obs.timer("stream.stage.fusion").observe(
                perf_counter() - started
            )
        else:
            fused = self.fusion.update(verdict)
        if (
            fused.is_bot
            and self.sink is not None
            and fused.subject_id not in self._notified
        ):
            self._notified.add(fused.subject_id)
            self.sink_notifications += 1
            self.sink.handle(fused, now)

    def _last_time(self) -> float:
        last = self.sessionizer._last_time
        return last if last is not None else 0.0


def batch_session_verdicts(
    log: WebLog,
    detectors: Sequence[SessionJudge],
    idle_gap: float = DEFAULT_IDLE_GAP,
) -> List[Verdict]:
    """The batch pipeline the stream is measured against: sessionize
    the finished log, judge every session with every detector."""
    from ..web.logs import sessionize

    sessions = sessionize(log, idle_gap=idle_gap)
    verdicts: List[Verdict] = []
    for detector in detectors:
        for session in sessions:
            verdicts.append(detector.judge(session))
    return verdicts
