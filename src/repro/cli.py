"""Command-line interface: run any paper scenario from the shell.

Usage::

    python -m repro fig1                # Fig. 1 (Case A, 3 weeks)
    python -m repro table1              # Table I (Case C, 2 weeks)
    python -m repro case-a              # Case A arms-race metrics
    python -m repro case-b              # Case B passenger heuristics
    python -m repro case-c --variant per-ref
    python -m repro case-d --variant number-reputation
    python -m repro case-e --variant destination-surge
    python -m repro portfolio --defense all
    python -m repro scenarios           # list sweepable scenarios
    python -m repro detectors           # Section III detector matrix
    python -m repro graph case-a        # campaign graph vs session fusion
    python -m repro behavioural         # Section V behavioural stack
    python -m repro stream --honeypot --capture run.trace
    python -m repro replay run.trace --compare-batch
    python -m repro profile case-a --ticks-short --out report.json
    python -m repro sweep --scenario case-a \
        --param hold_ttl=1800,7200 --reps 8 --workers 4

Every command accepts ``--seed`` for a different (still deterministic)
run.  Scaled-down variants are available where full-size runs take more
than a few seconds (``table1 --scale``).  The case-study commands also
accept ``--reps N --workers W`` to run N independent replications
through :mod:`repro.runner` (in W worker processes) and report each
metric as mean +/- 95% CI instead of a single draw.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from .analysis.reports import (
    format_percent,
    render_table,
    render_weekly_nip,
)
from .sim.clock import format_duration


def _parse_param_value(text: str) -> object:
    """One sweep value from the command line: int/float/None/bool/str."""
    lowered = text.strip()
    if lowered == "None":
        return None
    if lowered in ("True", "False"):
        return lowered == "True"
    for cast in (int, float):
        try:
            return cast(lowered)
        except ValueError:
            continue
    return lowered


def _parse_param(text: str) -> Tuple[str, List[object]]:
    """``name=v1,v2,...`` -> (name, values)."""
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"expected name=value[,value...]: {text!r}"
        )
    name, _, values = text.partition("=")
    parsed = [_parse_param_value(value) for value in values.split(",")]
    return name.strip(), parsed


def _print_aggregate_table(
    result, metrics: Optional[Sequence[str]], title: str
) -> None:
    """One row per grid point: swept axes + mean +/- CI per metric."""
    axes = sorted(result.spec.grid)
    rows = []
    chosen: Optional[Sequence[str]] = metrics
    for params, stats in result.aggregate_all():
        if chosen is None:
            chosen = sorted(stats)
        rows.append(
            [params[axis] for axis in axes]
            + [str(stats[name]) for name in chosen if name in stats]
        )
    headers = list(axes) + list(chosen or [])
    print(render_table(headers, rows, title=title))
    print(
        f"\n{len(result.cells)} cells "
        f"({result.spec.replications} replications/point), "
        f"backend={result.backend}, workers={result.workers}, "
        f"shards={result.shards}, "
        f"cache hits={result.cache_hits}, "
        f"elapsed={result.elapsed:.2f}s"
    )


def _run_replicated(
    scenario: str, base: Dict[str, object], args: argparse.Namespace
) -> int:
    """Shared --reps/--workers path for the case-study commands."""
    from .runner import SweepSpec, run_sweep

    try:
        result = run_sweep(
            SweepSpec(
                scenario=scenario,
                base=base,
                replications=args.reps,
                master_seed=args.seed,
            ),
            workers=args.workers,
            cache_dir=args.cache_dir,
            shards=getattr(args, "shards", 1),
        )
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    except (TypeError, ValueError) as error:
        raise SystemExit(f"error: {error}")
    _print_aggregate_table(
        result,
        None,
        title=(
            f"{scenario}: {args.reps} replications "
            f"(master seed {args.seed}, mean +/- 95% CI)"
        ),
    )
    return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    from .scenarios.case_a import CaseAConfig, run_case_a

    result = run_case_a(CaseAConfig(seed=args.seed))
    print(render_weekly_nip(
        [
            {n: week.get(n, 0.0) for n in range(1, 10)}
            for week in result.week_shares
        ],
        ["average week", "attack week", "after NiP<=4 cap"],
    ))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from .scenarios.case_c import CaseCConfig, TABLE1_SURGES, run_case_c

    result = run_case_c(
        CaseCConfig(
            seed=args.seed,
            baseline_weekly_total=int(48_000 / args.scale),
        )
    )
    print(render_table(
        ["Country", "Baseline/wk", "Attack wk", "Increase", "Paper"],
        [
            [
                surge.country_code,
                surge.baseline_count,
                surge.window_count,
                format_percent(surge.surge_percent),
                format_percent(TABLE1_SURGES.get(surge.country_code, 0.0)),
            ]
            for surge in result.table1_rows()
        ],
        title=(
            "Table I "
            f"(global +{result.global_increase_percent:.1f}%, "
            f"{result.countries_targeted} countries targeted)"
        ),
    ))
    if args.scale > 1.0:
        print(
            f"\nnote: --scale {args.scale:g} shrinks the legitimate "
            "baseline but keeps the Table I country pins, so per-country "
            "surges stay faithful while the global increase is inflated; "
            "run at --scale 1 for the paper's ~25% figure."
        )
    return 0


def _cmd_case_a(args: argparse.Namespace) -> int:
    from .scenarios.case_a import CaseAConfig, run_case_a

    if args.reps > 1 or args.workers > 1:
        return _run_replicated("case-a", {}, args)
    result = run_case_a(CaseAConfig(seed=args.seed))
    interval = result.measured_rotation_interval
    print(render_table(
        ["Metric", "Value"],
        [
            ["attacker holds created", result.attacker_holds_created],
            ["fingerprint rotations", result.attacker_rotations],
            ["mean rotation interval",
             format_duration(interval) if interval else "-"],
            ["block rules deployed", len(result.rule_effectiveness)],
            ["mean rule effective window",
             format_duration(result.mean_rule_window or 0.0)],
            ["final attacker NiP", result.attacker_final_nip],
            ["attack quiet before departure",
             format_duration(
                 result.departure_time
                 - (result.last_attack_hold_time or 0.0)
             )],
        ],
        title="Case A: Seat Spinning arms race",
    ))
    return 0


def _cmd_case_b(args: argparse.Namespace) -> int:
    from .scenarios.case_b import CaseBConfig, run_case_b

    if args.reps > 1 or args.workers > 1:
        return _run_replicated("case-b", {}, args)
    result = run_case_b(CaseBConfig(seed=args.seed))
    print(render_table(
        ["Metric", "Value"],
        [
            ["automated coverage",
             f"{result.automated_coverage * 100:.1f}%"],
            ["manual coverage", f"{result.manual_coverage * 100:.1f}%"],
            ["legit false positives",
             f"{result.legit_false_positive_rate * 100:.2f}%"],
            ["finding kinds", ", ".join(sorted(result.finding_kinds))],
            ["volume recall (automated)",
             f"{result.volume_recall.get('seat-spinner', 0.0):.2f}"],
            ["volume recall (manual)",
             f"{result.volume_recall.get('manual-spinner', 0.0):.2f}"],
        ],
        title="Case B: automated vs manual seat spinning",
    ))
    return 0


def _cmd_case_c(args: argparse.Namespace) -> int:
    from .scenarios.case_c import CaseCConfig, run_case_c

    if args.reps > 1 or args.workers > 1:
        return _run_replicated(
            "case-c",
            {
                "variant": args.variant,
                "baseline_weekly_total": int(48_000 / args.scale),
            },
            args,
        )
    result = run_case_c(
        CaseCConfig(
            seed=args.seed,
            variant=args.variant,
            baseline_weekly_total=int(48_000 / args.scale),
        )
    )
    latency = result.detection_latency
    print(render_table(
        ["Metric", "Value"],
        [
            ["variant", result.config.variant],
            ["attacker SMS delivered", result.attacker_sms_delivered],
            ["attacker attempts rate-limited",
             result.attacker_sms_attempts_blocked],
            ["detection latency",
             format_duration(latency) if latency is not None else "-"],
            ["SMS feature removed",
             "yes" if result.feature_disabled_at is not None else "no"],
            ["global SMS increase",
             f"{result.global_increase_percent:.1f}%"],
            ["attacker net", f"${result.attacker_ledger.net:+.2f}"],
            ["defender SMS spend", f"${result.defender_sms_cost:.2f}"],
        ],
        title="Case C: SMS pumping",
    ))
    return 0


def _cmd_case_d(args: argparse.Namespace) -> int:
    from .scenarios.case_d import CaseDConfig, run_case_d

    if args.reps > 1 or args.workers > 1:
        return _run_replicated("case-d", {"variant": args.variant}, args)
    result = run_case_d(CaseDConfig(seed=args.seed, variant=args.variant))
    ttfb = result.time_to_first_block
    print(render_table(
        ["Metric", "Value"],
        [
            ["variant", result.config.variant],
            ["attacker OTPs delivered", result.attacker_otps_delivered],
            ["numbers rented", result.numbers_rented],
            ["OTPs per rented number",
             f"{result.mean_otps_per_number:.2f}"],
            ["numbers burned by defense", result.burned_numbers],
            ["time to first block",
             format_duration(ttfb) if ttfb is not None else "-"],
            ["rental spend", f"${result.rental_cost_total:.2f}"],
            ["attacker net", f"${result.attacker_ledger.net:+.2f}"],
            ["attacker ROI", f"{result.attacker_roi:+.2f}"],
            ["legit OTPs delivered", result.legit_otps_delivered],
            ["legit fp conviction rate",
             f"{result.legit_fp_conviction_rate * 100:.2f}%"],
        ],
        title="Case D: OTP abuse via disposable-number cycling",
    ))
    return 0


def _cmd_case_e(args: argparse.Namespace) -> int:
    from .scenarios.case_e import CaseEConfig, run_case_e

    if args.reps > 1 or args.workers > 1:
        return _run_replicated("case-e", {"variant": args.variant}, args)
    result = run_case_e(CaseEConfig(seed=args.seed, variant=args.variant))
    ttfb = result.time_to_first_block
    cap_at = result.cap_installed_at
    print(render_table(
        ["Metric", "Value"],
        [
            ["variant", result.config.variant],
            ["victim", result.victim_number.e164],
            ["flood messages delivered",
             result.victim_messages_delivered],
            ["amplifier attempts", result.amplifier_attempts],
            ["amplifier blocked", result.amplifier_blocked],
            ["amplifier rate-limited", result.amplifier_rate_limited],
            ["surge events", result.surge_events],
            ["time to first block",
             format_duration(ttfb) if ttfb is not None else "-"],
            ["destination cap installed",
             format_duration(cap_at) if cap_at is not None else "no"],
            ["attacker net", f"${result.attacker_ledger.net:+.2f}"],
            ["attacker ROI", f"{result.attacker_roi:+.2f}"],
            ["legit notifications delivered",
             result.legit_notifications_delivered],
            ["legit fp conviction rate",
             f"{result.legit_fp_conviction_rate * 100:.2f}%"],
        ],
        title="Case E: agent-based notification amplification",
    ))
    return 0


def _cmd_portfolio(args: argparse.Namespace) -> int:
    from .scenarios.portfolio import PortfolioConfig, run_portfolio

    if args.reps > 1 or args.workers > 1:
        return _run_replicated(
            "portfolio-adaptive", {"defense": args.defense}, args
        )
    result = run_portfolio(
        PortfolioConfig(seed=args.seed, defense=args.defense)
    )
    print(render_table(
        ["Channel", "activations", "spent", "earned", "net"],
        [
            [
                outcome.name,
                outcome.activations,
                f"${outcome.spent:.2f}",
                f"${outcome.earned:.2f}",
                f"${outcome.net:+.2f}",
            ]
            for outcome in result.channels
        ],
        title=(
            f"portfolio vs defense={result.config.defense!r}: "
            f"attacker net ${result.attacker_net:+.2f} "
            f"(ROI {result.attacker_roi:+.2f}, "
            f"infrastructure ${result.infrastructure_cost:.2f}, "
            + ("retired" if result.retired else "still operating")
            + ")"
        ),
    ))
    print()
    print(render_table(
        ["t", "action", "channel", "window ROI"],
        [
            [
                format_duration(d["time"]),
                d["action"],
                d["channel"] or "-",
                (
                    f"{d['window_roi']:+.2f}"
                    if d["window_roi"] is not None
                    else "-"
                ),
            ]
            for d in result.decisions
        ],
        title="attacker decision journal",
    ))
    if result.legit_requests_blocked or result.legit_fp_conviction_rate:
        print(
            f"\ncollateral: {result.legit_requests_blocked} legit "
            "requests blocked, "
            f"{result.legit_fp_conviction_rate * 100:.3f}% legit "
            "fingerprints convicted"
        )
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from .runner import get_scenario, scenario_names

    print(render_table(
        ["Scenario", "Config class"],
        [
            [name, get_scenario(name).config_cls.__name__]
            for name in scenario_names()
        ],
        title="registered sweepable scenarios (repro sweep --scenario ...)",
    ))
    return 0


def _cmd_detectors(args: argparse.Namespace) -> int:
    from .scenarios.detectors import (
        DetectorComparisonConfig,
        run_detector_comparison,
    )

    result = run_detector_comparison(
        DetectorComparisonConfig(seed=args.seed)
    )
    classes = ("scraper", "seat-spinner", "manual-spinner", "sms-pumper")
    print(render_table(
        ["Detector"] + [f"recall:{c}" for c in classes] + ["FPR"],
        [
            [name]
            + [
                f"{result.run_for(name).recall_by_class.get(c, 0.0):.2f}"
                for c in classes
            ]
            + [
                f"{result.run_for(name).evaluation.false_positive_rate * 100:.2f}%"
            ]
            for name in (
                "volume", "logistic", "kmeans", "fingerprint",
                "abuse-pipeline", "campaign-graph", "learned",
            )
        ],
        title="Detector families vs attack classes",
    ))
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    from .scenarios.graph_case import (
        GRAPH_CASES,
        GraphCaseConfig,
        run_graph_case,
    )

    if args.case not in GRAPH_CASES:
        raise SystemExit(
            f"unknown case {args.case!r}; "
            f"choose from {', '.join(GRAPH_CASES)}"
        )
    if args.reps > 1 or args.workers > 1:
        return _run_replicated(
            f"graph-{args.case}",
            {"ticks_short": args.ticks_short},
            args,
        )
    result = run_graph_case(
        GraphCaseConfig(
            seed=args.seed, case=args.case, ticks_short=args.ticks_short
        )
    )
    print(render_table(
        ["Arm", "campaign recall", "session recall", "FPR"],
        [
            [
                arm.arm,
                f"{arm.campaign_recall:.2f}",
                f"{arm.evaluation.recall:.2f}",
                f"{arm.evaluation.false_positive_rate * 100:.2f}%",
            ]
            for arm in (result.session_arm, result.graph_arm)
        ],
        title=f"{args.case}: session-only vs graph-augmented fusion",
    ))
    print()
    evaluation = result.campaign_evaluation
    detection_times = list(evaluation.time_to_detection.values())
    print(render_table(
        ["Campaign", "risk", "sessions", "fingerprints", "rotation"],
        [
            [
                campaign.campaign_id,
                f"{campaign.risk:.3f}",
                campaign.session_count,
                campaign.distinct_fingerprints,
                (
                    format_duration(campaign.mean_rotation_interval)
                    if campaign.rotates_identity
                    else "-"
                ),
            ]
            for campaign in result.campaigns
        ],
        title=(
            "recovered campaigns "
            f"(precision {evaluation.campaign_precision:.2f}, "
            f"recall {evaluation.campaign_recall:.2f}, "
            "mean time-to-detection "
            + (
                format_duration(
                    sum(detection_times) / len(detection_times)
                )
                if detection_times
                else "-"
            )
            + ")"
        ),
    ))
    return 0


def _cmd_behavioural(args: argparse.Namespace) -> int:
    from .scenarios.behavioural import (
        BehaviouralConfig,
        run_behavioural_stack,
    )

    result = run_behavioural_stack(BehaviouralConfig(seed=args.seed))
    classes = ("scraper", "seat-spinner", "manual-spinner")
    print(render_table(
        ["Detector"] + [f"recall:{c}" for c in classes] + ["FPR"],
        [
            [name]
            + [
                f"{result.run_for(name).recall_by_class.get(c, 0.0):.2f}"
                for c in classes
            ]
            + [
                f"{result.run_for(name).evaluation.false_positive_rate * 100:.2f}%"
            ]
            for name in ("volume", "navigation", "biometrics", "fusion")
        ],
        title="Advanced behavioural stack (Section V)",
    ))
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from .scenarios.streaming import StreamCaseAConfig, run_stream_case_a

    if args.reps > 1 or args.workers > 1:
        return _run_replicated(
            "stream-case-a",
            {
                "streaming": not args.no_streaming,
                "honeypot_mode": args.honeypot,
            },
            args,
        )
    result = run_stream_case_a(
        StreamCaseAConfig(
            seed=args.seed,
            streaming=not args.no_streaming,
            honeypot_mode=args.honeypot,
            trace_path=args.capture,
        )
    )
    ttfb = result.time_to_first_block
    print(render_table(
        ["Metric", "Value"],
        [
            ["streaming", "on" if result.config.streaming else "off"],
            ["mitigation mode",
             "honeypot" if result.config.honeypot_mode else "blocking"],
            ["time to first block",
             format_duration(ttfb) if ttfb is not None else "-"],
            ["online mitigation actions", result.online_actions],
            ["attacker holds created", result.attacker_holds_created],
            ["attacker rotations", result.base.attacker_rotations],
            ["legit seats sold (target flight)",
             result.target_legit_confirmed_seats],
            ["events processed", result.events_processed],
            ["peak open sessions", result.peak_open_sessions],
            ["peak tracked clients", result.peak_tracked_clients],
        ],
        title="Case A (streaming variant): online detection + mitigation",
    ))
    if args.capture:
        print(f"\ntrace captured: {args.capture} "
              f"({result.trace_entries} entries)")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .scenarios.streaming import build_stream_pipeline
    from .trace import TraceReader, replay_trace

    with TraceReader(args.trace) as reader:
        meta = dict(reader.meta)
    pipeline = build_stream_pipeline()
    report, stats = replay_trace(args.trace, pipeline)
    bots = report.bot_subjects()
    print(render_table(
        ["Metric", "Value"],
        [
            ["trace", args.trace],
            ["captured from", str(meta.get("scenario", "?"))],
            ["entries replayed", stats.entries],
            ["replay throughput",
             f"{stats.events_per_second:,.0f} events/sec"],
            ["sessions closed", report.sessions_closed],
            ["peak open sessions", report.peak_open_sessions],
            ["fused subjects", len(report.fused)],
            ["bot subjects", len(bots)],
        ],
        title="Trace replay through the streaming pipeline",
    ))
    if args.compare_batch:
        from .scenarios.streaming import default_stream_adapters
        from .stream import batch_session_verdicts
        from .trace import rebuild_log

        detectors = [
            adapter.detector
            for adapter in default_stream_adapters()
            if hasattr(adapter, "detector")
        ]
        batch = set(batch_session_verdicts(rebuild_log(args.trace), detectors))
        stream = set(report.session_verdicts)
        if batch == stream:
            print(f"\nbatch equivalence: OK "
                  f"({len(stream)} session verdicts identical)")
            return 0
        print(f"\nbatch equivalence: MISMATCH "
              f"(stream-only: {len(stream - batch)}, "
              f"batch-only: {len(batch - stream)})")
        return 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .obs.profile import PROFILED_CASES, profile_case, short_overrides
    from .obs.report import write_report

    if args.case not in PROFILED_CASES:
        raise SystemExit(
            f"unknown case {args.case!r}; "
            f"choose from {', '.join(PROFILED_CASES)}"
        )
    if args.reps > 1 or args.workers > 1:
        from .runner import SweepSpec, run_sweep

        base = short_overrides(args.case) if args.ticks_short else {}
        result = run_sweep(
            SweepSpec(
                scenario=f"profile-{args.case}",
                base=base,
                replications=args.reps,
                master_seed=args.seed,
            ),
            workers=args.workers,
            cache_dir=args.cache_dir,
        )
        registry = result.merged_obs()
        run_meta = {
            "run_id": f"profile-{args.case}-s{args.seed}x{args.reps}",
            "scenario": args.case,
            "seed": args.seed,
            "meta": {
                "ticks_short": args.ticks_short,
                "replications": args.reps,
                "workers": result.workers,
            },
        }
    else:
        prof = profile_case(
            args.case, seed=args.seed, ticks_short=args.ticks_short
        )
        registry = prof.registry
        run_meta = None

    top_events = sorted(
        registry.timers("sim.event.").items(),
        key=lambda item: item[1].total,
        reverse=True,
    )[:10]
    print(render_table(
        ["Sim-kernel phase", "calls", "total s", "mean us"],
        [
            [
                name[len("sim.event."):],
                timer.count,
                f"{timer.total:.3f}",
                f"{timer.mean * 1e6:.1f}",
            ]
            for name, timer in top_events
        ],
        title=f"profile {args.case}: event-loop dispatch by label",
    ))
    endpoints = sorted(registry.timers("web.request.").items())
    if endpoints:
        print()
        print(render_table(
            ["Endpoint", "requests", "mean us", "p95 us"],
            [
                [
                    name[len("web.request."):],
                    timer.count,
                    f"{timer.mean * 1e6:.1f}",
                    f"{timer.histogram.quantile(0.95) * 1e6:.1f}",
                ]
                for name, timer in endpoints
            ],
            title="web edge: per-endpoint request latency",
        ))
    stages = sorted(registry.timers("stream.stage.").items())
    if stages:
        print()
        print(render_table(
            ["Stream stage", "calls", "total s", "mean us"],
            [
                [
                    name[len("stream.stage."):],
                    timer.count,
                    f"{timer.total:.3f}",
                    f"{timer.mean * 1e6:.1f}",
                ]
                for name, timer in stages
            ],
            title=(
                "stream pipeline: per-stage latency "
                f"({registry.gauge('stream.events_per_second'):,.0f} "
                "events/sec busy throughput)"
            ),
        ))
    analysis = sorted(registry.timers("detect.").items()) + sorted(
        registry.timers("graph.").items()
    )
    if analysis:
        print()
        print(render_table(
            ["Analysis stage", "calls", "total s", "mean us"],
            [
                [
                    name,
                    timer.count,
                    f"{timer.total:.3f}",
                    f"{timer.mean * 1e6:.1f}",
                ]
                for name, timer in analysis
            ],
            title=(
                "batch analysis: columnar fast path "
                f"({registry.counter('detect.sessions'):,.0f} sessions / "
                f"{registry.counter('detect.entries'):,.0f} entries)"
            ),
        ))
    wall = registry.gauge("run.wall_seconds")
    if wall:
        print(f"\ntotal wall time: {wall:.2f}s "
              f"(sim dispatch: {registry.total_time('sim.event.'):.2f}s)")
    if args.out:
        if run_meta:
            write_report(args.out, registry, form=args.format, run=run_meta)
        else:
            write_report(args.out, prof.context, form=args.format)
        print(f"report written: {args.out} ({args.format})")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from .ml.io import save_model
    from .ml.train import TrainConfig, train_model
    from .scenarios.learned import (
        LearnedCaseConfig,
        build_training_store,
    )

    try:
        case_config = LearnedCaseConfig(
            seed=args.seed,
            variant=args.variant,
            model=args.model,
            training_worlds=args.worlds,
            target_fpr=args.target_fpr,
            epochs=args.epochs,
            ticks_short=args.ticks_short,
        )
        train_config = TrainConfig(
            model=args.model,
            master_seed=args.seed,
            target_fpr=args.target_fpr,
            epochs=args.epochs,
        )
    except ValueError as error:
        raise SystemExit(f"error: {error}")
    store = build_training_store(case_config)
    if args.store:
        store.save(args.store)
    dataset = store.to_dataset()
    result = train_model(dataset, train_config)
    save_model(args.out, result.model, meta=result.meta)
    print(render_table(
        ["Metric", "Value"],
        [
            ["model", args.model],
            ["variant", args.variant],
            ["training sessions", len(dataset)],
            ["training bots", int(dataset.labels.sum())],
            ["epochs", result.report.epochs],
            ["final loss", f"{result.report.final_loss:.6f}"],
            ["training accuracy",
             f"{result.report.training_accuracy:.4f}"],
            ["calibrated threshold", f"{result.threshold:.6f}"],
            ["config hash", result.meta["config_hash"]],
            ["dataset digest", result.meta["dataset_digest"]],
            ["weights digest", result.meta["weights_digest"]],
        ],
        title=f"repro train (master seed {args.seed})",
    ))
    print(f"\nmodel written: {args.out}")
    if args.store:
        print(f"feature store written: {args.store}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    import hashlib

    import numpy as np

    from .analysis.evaluation import evaluate_verdicts
    from .ml.detector import LearnedSessionDetector
    from .ml.io import ModelFormatError, load_model
    from .ml.store import FeatureStore

    try:
        model, meta = load_model(args.model_file)
    except (OSError, ModelFormatError) as error:
        raise SystemExit(f"error: {error}")
    detector = LearnedSessionDetector(model)

    if args.store:
        dataset = FeatureStore.load(args.store).to_dataset()
        probabilities = model.predict_proba(dataset)
        flagged = probabilities >= model.threshold
        rows = [
            ["model kind", model.kind],
            ["sessions scored", len(dataset)],
            ["flagged as bot", int(flagged.sum())],
            ["threshold", f"{model.threshold:.6f}"],
        ]
        if dataset.labelled:
            labels = dataset.labels >= 0.5
            bots = int(labels.sum())
            legit = len(dataset) - bots
            recall = (
                float((flagged & labels).sum()) / bots if bots else 0.0
            )
            fpr = (
                float((flagged & ~labels).sum()) / legit
                if legit
                else 0.0
            )
            rows += [
                ["recall", f"{recall:.4f}"],
                ["FPR", f"{fpr * 100:.2f}%"],
            ]
        digest = hashlib.sha256(
            np.ascontiguousarray(probabilities).tobytes()
        ).hexdigest()[:16]
        rows.append(["predictions digest", digest])
        print(render_table(
            ["Metric", "Value"],
            rows,
            title=f"repro predict ({args.store})",
        ))
        return 0

    from .scenarios.learned import variant_case_config
    from .scenarios.case_a import run_case_a
    from .web.logs import sessionize

    world = run_case_a(
        variant_case_config(args.variant, args.seed, args.ticks_short)
    ).world
    sessions = sessionize(world.app.log)
    verdicts = detector.judge_all(sessions)
    evaluation = evaluate_verdicts(sessions, verdicts)
    digest = hashlib.sha256(
        np.array([v.score for v in verdicts]).tobytes()
    ).hexdigest()[:16]
    print(render_table(
        ["Metric", "Value"],
        [
            ["model kind", model.kind],
            ["trained from", str(meta.get("config_hash", "?"))],
            ["eval variant", args.variant],
            ["sessions scored", len(sessions)],
            ["flagged as bot", sum(1 for v in verdicts if v.is_bot)],
            ["recall", f"{evaluation.recall:.4f}"],
            ["FPR", f"{evaluation.false_positive_rate * 100:.2f}%"],
            ["predictions digest", digest],
        ],
        title=f"repro predict (eval seed {args.seed})",
    ))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve.server import run_server

    return run_server(
        args.db,
        host=args.host,
        port=args.port,
        checkpoint_interval=args.checkpoint_interval,
        refresh_every=(
            args.refresh_every if args.refresh_every > 0 else None
        ),
        replay=args.replay,
        quiet=args.quiet,
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .runner import SweepSpec, get_scenario, run_sweep

    try:
        get_scenario(args.scenario)
    except KeyError as error:
        # Exit 2 (usage error), with the registry's own message — the
        # one place the list of valid names is maintained.
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    grid: Dict[str, List[object]] = {}
    base: Dict[str, object] = {}
    for name, values in args.param or []:
        if len(values) == 1:
            base[name] = values[0]
        else:
            grid[name] = values
    try:
        result = run_sweep(
            SweepSpec(
                scenario=args.scenario,
                base=base,
                grid=grid,
                replications=args.reps,
                master_seed=args.seed,
            ),
            workers=args.workers,
            cache_dir=args.cache_dir,
            shards=getattr(args, "shards", 1),
        )
    except (TypeError, ValueError) as error:
        raise SystemExit(f"error: {error}")
    _print_aggregate_table(
        result,
        args.metric or None,
        title=(
            f"sweep {args.scenario}: "
            f"{len(result.points())} points x {args.reps} replications "
            f"(master seed {args.seed}, mean +/- 95% CI)"
        ),
    )
    return 0


def _package_version() -> str:
    """Installed distribution version, falling back to the source tree's
    ``repro.__version__`` when running uninstalled from a checkout."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        from . import __version__

        return __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the DSN 2025 functional-abuse paper's scenarios. "
            "Every subcommand below carries a one-line summary; "
            "run `repro <command> --help` for its options."
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_package_version()}",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add(name: str, handler, help_text: str):
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("--seed", type=int, default=None,
                         help="override the scenario's default seed")
        sub.set_defaults(handler=handler)
        return sub

    def add_runner_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--reps", type=int, default=1,
            help="independent replications to run through repro.runner",
        )
        sub.add_argument(
            "--workers", type=int, default=1,
            help="worker processes (1 = serial in-process)",
        )
        sub.add_argument(
            "--shards", type=int, default=1,
            help="partition each cell's population into this many "
            "independently simulated shards and merge the results "
            "(1 = unsharded; see repro.shard)",
        )
        sub.add_argument(
            "--cache-dir", default=None,
            help="directory for the on-disk result cache (off by default)",
        )

    add("fig1", _cmd_fig1, "Fig. 1: weekly NiP distributions (Case A)")
    table1 = add("table1", _cmd_table1, "Table I: SMS country surges")
    table1.add_argument(
        "--scale", type=float, default=1.0,
        help="downscale traffic volume by this factor (default 1 = full)",
    )
    case_a = add("case-a", _cmd_case_a, "Case A arms-race metrics")
    add_runner_args(case_a)
    case_b = add("case-b", _cmd_case_b, "Case B passenger-detail heuristics")
    add_runner_args(case_b)
    case_c = add("case-c", _cmd_case_c, "Case C SMS pumping")
    case_c.add_argument(
        "--variant",
        choices=("unprotected", "path-limit", "per-ref"),
        default="unprotected",
    )
    case_c.add_argument("--scale", type=float, default=1.0)
    add_runner_args(case_c)
    case_d = add(
        "case-d", _cmd_case_d, "Case D OTP abuse (number cycling)"
    )
    case_d.add_argument(
        "--variant",
        choices=("unprotected", "number-reputation"),
        default="unprotected",
    )
    add_runner_args(case_d)
    case_e = add(
        "case-e", _cmd_case_e, "Case E notification amplification"
    )
    case_e.add_argument(
        "--variant",
        choices=("unprotected", "destination-surge"),
        default="unprotected",
    )
    add_runner_args(case_e)
    portfolio = add(
        "portfolio", _cmd_portfolio,
        "adaptive attacker moving budget across all abuse channels "
        "vs the chosen defense posture",
    )
    portfolio.add_argument(
        "--defense",
        choices=("none", "case-a", "case-c", "case-d", "case-e", "all"),
        default="none",
        help="platform defense posture (default: none)",
    )
    add_runner_args(portfolio)
    add("scenarios", _cmd_scenarios,
        "list the scenarios registered with the sweep runner")
    add("detectors", _cmd_detectors, "Section III detector matrix")
    graph = add(
        "graph", _cmd_graph,
        "campaign graph vs session-only fusion on a rotated case study",
    )
    graph.add_argument(
        "case", choices=["case-a", "case-c"],
        help="case to run",
    )
    graph.add_argument(
        "--ticks-short", action="store_true",
        help="compressed timeline (seconds, not minutes) for smoke runs",
    )
    add_runner_args(graph)
    add("behavioural", _cmd_behavioural,
        "Section V behavioural stack (extension)")
    stream = add(
        "stream", _cmd_stream,
        "Case A with the online streaming detection/mitigation pipeline",
    )
    stream.add_argument(
        "--no-streaming", action="store_true",
        help="ablation: run the same world without the online pipeline",
    )
    stream.add_argument(
        "--honeypot", action="store_true",
        help="route convicted fingerprints to decoy inventory "
        "instead of blocking",
    )
    stream.add_argument(
        "--capture", metavar="TRACE", default=None,
        help="also record the run's web log to this trace file",
    )
    add_runner_args(stream)
    replay = add(
        "replay", _cmd_replay,
        "replay a captured trace through the streaming pipeline",
    )
    replay.add_argument("trace", help="trace file written by --capture")
    replay.add_argument(
        "--compare-batch", action="store_true",
        help="also run the batch pipeline on the rebuilt log and "
        "verify verdict equivalence",
    )
    profile = add(
        "profile", _cmd_profile,
        "profile a case run: per-phase sim/web/stream wall-clock report",
    )
    profile.add_argument(
        "case", help="case to profile (case-a, case-b, case-c)",
    )
    profile.add_argument(
        "--ticks-short", action="store_true",
        help="scaled-down run (seconds, not minutes) for smoke profiling",
    )
    profile.add_argument(
        "--out", metavar="FILE", default=None,
        help="also write the full report to this file",
    )
    profile.add_argument(
        "--format", choices=("json", "prom"), default="json",
        help="report file format (default: json)",
    )
    add_runner_args(profile)
    train = add(
        "train", _cmd_train,
        "train a model-ladder rung on streamed sessions from "
        "disjoint-seed worlds (bit-reproducible for a fixed seed)",
    )
    train.add_argument(
        "--model", choices=("logistic", "mlp", "encoder"),
        default="encoder",
        help="ladder rung to train (default: encoder)",
    )
    train.add_argument(
        "--variant", choices=("rotated", "stealth"), default="rotated",
        help="evasive Case A variant to train against",
    )
    train.add_argument(
        "--out", required=True, metavar="FILE",
        help="output RPML model file",
    )
    train.add_argument(
        "--worlds", type=int, default=2,
        help="disjoint-seed training worlds to pool (default: 2)",
    )
    train.add_argument(
        "--epochs", type=int, default=None,
        help="override the rung's default epoch count",
    )
    train.add_argument(
        "--target-fpr", type=float, default=0.01,
        help="calibrate the decision threshold to this FPR on the "
        "training worlds' legitimate sessions (default: 0.01)",
    )
    train.add_argument(
        "--ticks-short", action="store_true",
        help="compressed timeline for smoke runs",
    )
    train.add_argument(
        "--store", metavar="FILE", default=None,
        help="also persist the training feature store (.npz)",
    )
    predict = add(
        "predict", _cmd_predict,
        "score sessions with a trained RPML model "
        "(a fresh eval world, or a saved feature store)",
    )
    predict.add_argument(
        "model_file", help="RPML model written by `repro train`",
    )
    predict.add_argument(
        "--variant", choices=("rotated", "stealth"), default="rotated",
        help="eval-world variant when simulating (default: rotated)",
    )
    predict.add_argument(
        "--ticks-short", action="store_true",
        help="compressed eval world for smoke runs",
    )
    predict.add_argument(
        "--store", metavar="FILE", default=None,
        help="score a saved feature store instead of simulating",
    )
    serve = add(
        "serve", _cmd_serve,
        "long-running detection service: HTTP ingest/replay + queries, "
        "SQLite snapshot/journal persistence, /metrics",
    )
    serve.add_argument(
        "--db", required=True, metavar="FILE",
        help="SQLite state database (created if missing; an existing "
        "database restores the server to its last acknowledged event)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8940,
        help="listen port (0 = pick a free port; the real port is "
        "printed on startup)",
    )
    serve.add_argument(
        "--checkpoint-interval", type=int, default=2000, metavar="N",
        help="snapshot the pipeline core every N ingested events "
        "(default: 2000)",
    )
    serve.add_argument(
        "--refresh-every", type=int, default=64, metavar="SESSIONS",
        help="re-run campaign analysis every N closed sessions "
        "(0 = only at finish; default: 64)",
    )
    serve.add_argument(
        "--replay", metavar="TRACE", default=None,
        help="bootstrap: replay this RPTR trace through the service "
        "before accepting queries (resumes past already-ingested "
        "events after a restart)",
    )
    serve.add_argument(
        "--quiet", action="store_true",
        help="suppress startup/shutdown log lines",
    )
    sweep = add(
        "sweep", _cmd_sweep,
        "parameter sweep x replications via the parallel runner",
    )
    sweep.add_argument(
        "--scenario", required=True,
        help="registered scenario name (case-a, case-b, case-c)",
    )
    sweep.add_argument(
        "--param", action="append", type=_parse_param, metavar="NAME=V1[,V2...]",
        help="config field to fix (one value) or sweep (several values); "
        "repeatable",
    )
    sweep.add_argument(
        "--metric", action="append",
        help="metric column(s) to report (default: all)",
    )
    add_runner_args(sweep)
    return parser


#: Default seed per command (matches each scenario's own default).
_DEFAULT_SEEDS = {
    "fig1": 7,
    "table1": 1,
    "case-a": 7,
    "case-b": 11,
    "case-c": 1,
    "case-d": 11,
    "case-e": 13,
    "portfolio": 17,
    "scenarios": 0,
    "detectors": 31,
    "graph": 7,
    "behavioural": 41,
    "stream": 7,
    "train": 7,
    "predict": 7,
    "replay": 0,
    "profile": 7,
    "serve": 0,
    "sweep": 0,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.seed is None:
        args.seed = _DEFAULT_SEEDS[args.command]
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
