"""Streaming graph detection: the incremental builder on the pipeline.

:class:`GraphStreamAdapter` rides
:class:`~repro.stream.pipeline.StreamPipeline` like any other adapter:
closed sessions grow the graph, booking/SMS records arrive through
:class:`RecordFeed` cursors over the live substrate logs, and every
``refresh_every`` closed sessions the adapter re-runs propagation +
campaign extraction on the graph built *so far*.

When a campaign clears the risk threshold the adapter emits one
``fp:<fingerprint_id>`` entity verdict per not-yet-convicted member
fingerprint — the cluster-level conviction.  Those flow through the
pipeline's fusion into :class:`~repro.core.mitigation.online.
OnlineVerdictSink` exactly like velocity convictions, so the sink
blocks the *whole cluster* while the campaign is still running; a
``campaign_sink`` callback additionally receives each newly convicted
:class:`~repro.graph.campaigns.Campaign` for campaign-scale actions
(:meth:`OnlineVerdictSink.handle_campaign`).

End-of-stream, the adapter runs one final analysis over the complete
graph.  With periodic refresh disabled (``refresh_every=None``) the
final analysis is *exactly* the batch :class:`~repro.graph.detector.
GraphDetector` result on the same records — the equivalence the test
suite pins — because builder, seeding, propagation and extraction are
the same code on the same order-independent graph.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core.detection.verdict import Verdict
from ..stream.adapters import StreamAdapter, entity_subject
from ..stream.feed import RecordFeed
from ..web.logs import LogEntry, Session
from .builder import GraphBuilder
from .campaigns import CAMPAIGN_DETECTOR, Campaign
from .detector import (
    GraphAnalysis,
    GraphDetectorConfig,
    accumulate_seed,
    analyze,
    merged_seeds,
    seed_from_verdicts,
    session_prior,
)
from .entities import EntityId, session_node
from .propagation import CompiledGraph, compile_graph


class GraphStreamAdapter(StreamAdapter):
    """Incremental campaign detection as a stream adapter."""

    name = CAMPAIGN_DETECTOR

    def __init__(
        self,
        config: Optional[GraphDetectorConfig] = None,
        booking_feed: Optional[RecordFeed] = None,
        sms_feed: Optional[RecordFeed] = None,
        refresh_every: Optional[int] = None,
        campaign_sink: Optional[Callable[[Campaign, float], None]] = None,
        seed_feeds: Optional[Sequence["RecordFeed"]] = None,
        obs: Optional[object] = None,
    ) -> None:
        if refresh_every is not None and refresh_every < 1:
            raise ValueError(
                f"refresh_every must be >= 1: {refresh_every}"
            )
        self.config = config or GraphDetectorConfig()
        self.booking_feed = booking_feed
        self.sms_feed = sms_feed
        self.refresh_every = refresh_every
        self.campaign_sink = campaign_sink
        #: Cursors over growing :class:`~repro.core.detection.verdict.
        #: Verdict` lists (e.g. the pipeline's session/entity verdict
        #: accumulators).  Each new verdict is folded into the seeds
        #: exactly once, right before the next analysis — how a pure
        #: web-log deployment (no booking/SMS records) hands the other
        #: families' convictions to the graph.  Campaign-graph verdicts
        #: are skipped by ``seed_from_verdicts``, so the adapter's own
        #: output can never self-amplify through a feed.
        self.seed_feeds = list(seed_feeds or [])
        self.obs = obs
        self.builder = GraphBuilder(self.config.builder, obs=obs)
        self._seeds: Dict[EntityId, float] = {}
        self._convicted_fingerprints: set = set()
        self._sessions_since_refresh = 0
        #: Cached CSR compile of the builder's graph, keyed on the
        #: graph's structural version: refreshes that land between
        #: structural changes (or the final analysis right after a
        #: periodic one) reuse the arrays instead of recompiling.
        self._compiled: Optional[CompiledGraph] = None
        self.refreshes = 0
        self.final_analysis: Optional[GraphAnalysis] = None

    # -- stream hooks --------------------------------------------------------

    def on_entry(self, entry: LogEntry, now: float) -> Iterable[Verdict]:
        self.builder.observe_entry(entry, now)
        self._drain_feeds()
        return ()

    def on_session_closed(self, session: Session) -> Iterable[Verdict]:
        self.builder.observe_session(session)
        accumulate_seed(
            self._seeds,
            session_node(session.session_id),
            session_prior(session, self.config),
        )
        if self.refresh_every is None:
            return ()
        self._sessions_since_refresh += 1
        if self._sessions_since_refresh < self.refresh_every:
            return ()
        self._sessions_since_refresh = 0
        return self._refresh(session.end)

    def end_of_stream(self) -> Iterable[Verdict]:
        self._drain_feeds()
        last = max(
            (t for t in (
                self.builder.graph.last_seen(node)
                for node in self.builder.graph.nodes()
            ) if t is not None),
            default=0.0,
        )
        verdicts = self._refresh(last, final=True)
        return verdicts

    def evict_idle(self, now: float, idle_gap: float) -> None:
        self.builder.evict_idle_names(now, idle_gap)

    # -- internals -----------------------------------------------------------

    def _drain_feeds(self) -> None:
        if self.booking_feed is not None:
            for record in self.booking_feed.drain():
                self.builder.observe_booking(record)
        if self.sms_feed is not None:
            for record in self.sms_feed.drain():
                self.builder.observe_sms(record)

    def _drain_seed_feeds(self) -> None:
        for feed in self.seed_feeds:
            tail = list(feed.drain())
            if tail:
                seed_from_verdicts(self._seeds, tail, self.config)

    def _refresh(
        self, now: float, final: bool = False
    ) -> List[Verdict]:
        """Re-run the analysis; convict newly campaign-bound clusters."""
        self.refreshes += 1
        self._drain_seed_feeds()
        graph = self.builder.graph
        if (
            self._compiled is None
            or self._compiled.version != graph.version
        ):
            self._compiled = compile_graph(graph, obs=self.obs)
        analysis = analyze(
            graph,
            merged_seeds(self._seeds, self.builder, self.config),
            self.config,
            obs=self.obs,
            compiled=self._compiled,
        )
        if final:
            self.final_analysis = analysis
        verdicts: List[Verdict] = []
        for campaign_verdict in analysis.campaign_verdicts:
            if not campaign_verdict.verdict.is_bot:
                continue
            campaign = campaign_verdict.campaign
            fresh = [
                fingerprint_id
                for fingerprint_id in campaign.fingerprint_ids
                if fingerprint_id not in self._convicted_fingerprints
            ]
            if not fresh:
                continue
            self._convicted_fingerprints.update(fresh)
            if self.campaign_sink is not None:
                self.campaign_sink(campaign, now)
            for fingerprint_id in fresh:
                verdicts.append(
                    Verdict(
                        subject_id=entity_subject(fingerprint_id),
                        detector=self.name,
                        score=campaign_verdict.verdict.score,
                        is_bot=True,
                        reasons=campaign_verdict.verdict.reasons,
                    )
                )
        return verdicts

    # -- introspection -------------------------------------------------------

    @property
    def convicted_fingerprints(self) -> List[str]:
        return sorted(self._convicted_fingerprints)

    @property
    def final_campaigns(self) -> List[Campaign]:
        return (
            list(self.final_analysis.campaigns)
            if self.final_analysis is not None
            else []
        )
