"""Typed node identities for the entity graph.

Every node is an :class:`EntityId` — a ``(kind, value)`` named tuple —
so nodes from different namespaces (a session id, a fingerprint id, a
passenger-name key) can share one adjacency structure without
colliding.  Kinds are plain strings; the constructors below are the
only places that build ids, which keeps the namespace rules in one
file.

The kinds mirror the side-channels the paper's campaigns cannot
rotate away: booking references and passenger names for Case A/B seat
spinning, phone numbers and booking references for Case C SMS pumping,
plus the infrastructure identities (fingerprint, IP, /24 subnet) that
link *within* a rotation epoch.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

SESSION = "session"
FINGERPRINT = "fp"
IP = "ip"
SUBNET = "subnet"
PHONE = "phone"
BOOKING_REF = "ref"
NAME_KEY = "name"
FLIGHT = "flight"

#: All node kinds, in display order.
KINDS: Tuple[str, ...] = (
    SESSION,
    FINGERPRINT,
    IP,
    SUBNET,
    PHONE,
    BOOKING_REF,
    NAME_KEY,
    FLIGHT,
)


class EntityId(NamedTuple):
    """One graph node: a namespaced identity."""

    kind: str
    value: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.kind}:{self.value}"


def session_node(session_id: str) -> EntityId:
    return EntityId(SESSION, session_id)


def fingerprint_node(fingerprint_id: str) -> EntityId:
    return EntityId(FINGERPRINT, fingerprint_id)


def ip_node(ip_address: str) -> EntityId:
    return EntityId(IP, ip_address)


def subnet_node(ip_address: str) -> EntityId:
    """The /24 (first three octets) containing ``ip_address``."""
    return EntityId(SUBNET, subnet_of(ip_address))


def phone_node(number: str) -> EntityId:
    return EntityId(PHONE, number)


def booking_ref_node(booking_ref: str) -> EntityId:
    return EntityId(BOOKING_REF, booking_ref)


def name_key_node(name_key: Tuple[str, str]) -> EntityId:
    first, last = name_key
    return EntityId(NAME_KEY, f"{first}|{last}")


def flight_node(flight_id: str) -> EntityId:
    return EntityId(FLIGHT, flight_id)


def subnet_of(ip_address: str) -> str:
    """Dotted-quad prefix used for subnet grouping (``a.b.c.0/24``)."""
    parts = ip_address.split(".")
    if len(parts) != 4:
        return ip_address
    return ".".join(parts[:3]) + ".0/24"
