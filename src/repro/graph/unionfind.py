"""Disjoint-set unions, dense and keyed.

:class:`UnionFind` is the dense integer variant the identity linker in
:mod:`repro.core.detection.rotation` has always used (it now lives here
so every graph consumer shares one implementation).
:class:`KeyedUnionFind` lifts the same structure to arbitrary hashable
keys with dynamic growth — the shape connected-component extraction
over an :class:`~repro.graph.builder.EntityGraph` needs, where nodes
arrive incrementally and are tuples, not indices.

Both keep the classic invariants: path compression never changes which
root represents a set, union is by size, and ``groups()`` is a
deterministic partition of everything ever added.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Generic, Hashable, List, TypeVar

K = TypeVar("K", bound=Hashable)


class UnionFind:
    """Disjoint-set union with path compression and union by size."""

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"size must be >= 0: {size}")
        self._parent = list(range(size))
        self._size = [1] * size

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, item: int) -> int:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]

    def groups(self) -> List[List[int]]:
        """Members of every disjoint set, smallest index first."""
        by_root: Dict[int, List[int]] = defaultdict(list)
        for item in range(len(self._parent)):
            by_root[self.find(item)].append(item)
        return sorted(by_root.values(), key=lambda grp: grp[0])


class KeyedUnionFind(Generic[K]):
    """Disjoint-set union over arbitrary hashable keys.

    Keys are added lazily (``add``/``union``/``find`` all create unknown
    keys) and remembered in insertion order, which makes ``groups()``
    deterministic for any deterministic feed: each group lists members
    in insertion order, and groups sort by their earliest member.
    """

    def __init__(self) -> None:
        self._index: Dict[K, int] = {}
        self._keys: List[K] = []
        self._inner = UnionFind(0)

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: K) -> bool:
        return key in self._index

    def add(self, key: K) -> int:
        """Ensure ``key`` exists; return its dense index."""
        index = self._index.get(key)
        if index is None:
            index = len(self._keys)
            self._index[key] = index
            self._keys.append(key)
            self._inner._parent.append(index)
            self._inner._size.append(1)
        return index

    def find(self, key: K) -> K:
        """The representative key of ``key``'s set (adds if unknown)."""
        return self._keys[self._inner.find(self.add(key))]

    def union(self, a: K, b: K) -> None:
        self._inner.union(self.add(a), self.add(b))

    def connected(self, a: K, b: K) -> bool:
        return self._inner.find(self.add(a)) == self._inner.find(
            self.add(b)
        )

    def groups(self) -> List[List[K]]:
        """Every disjoint set, members in insertion order, sets ordered
        by earliest member."""
        return [
            [self._keys[index] for index in group]
            for group in self._inner.groups()
        ]
