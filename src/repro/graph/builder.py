"""The multipartite entity graph and its incremental builder.

:class:`EntityGraph` is a weighted undirected adjacency structure over
:class:`~repro.graph.entities.EntityId` nodes with first/last-seen
times per node.  Edge insertion is idempotent (same pair, max weight),
so the graph a feed produces is independent of observation order — the
property the streaming-equals-batch equivalence test pins.

:class:`GraphBuilder` turns raw records into graph structure one
observation at a time:

* web-log entries / closed sessions — session ↔ fingerprint ↔ IP
  (↔ /24 subnet), the links *within* a rotation epoch;
* booking records — fingerprint ↔ target flight and, gated on
  recurrence, fingerprint ↔ passenger-name key: the side-channel that
  survives Case A/B identity rotation;
* SMS records — fingerprint ↔ phone number and fingerprint ↔ booking
  reference: the Case C anchors ("a handful of purchased tickets
  anchor thousands of sends").

Transient state (passenger-name recurrence gating) lives in a
:class:`~repro.stream.store.KeyedStore` with a hard key cap, so the
builder rides the streaming pipeline with bounded memory; the graph
itself grows like the log it summarises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..booking.reservation import BookingRecord
from ..sms.gateway import SmsRecord
from ..stream.store import KeyedStore
from ..web.logs import LogEntry, Session
from .entities import (
    EntityId,
    booking_ref_node,
    fingerprint_node,
    flight_node,
    ip_node,
    name_key_node,
    phone_node,
    session_node,
    subnet_node,
)
from .unionfind import KeyedUnionFind

#: Edge trust weights by link type.  Strong links are identities the
#: attacker must actively share (booking reference, recurring passenger
#: name); weak links are hubs legitimate traffic also touches (target
#: flight, /24 subnet) — propagation's source-side degree
#: normalization further attenuates those.
EDGE_SESSION_FINGERPRINT = 1.0
EDGE_SESSION_IP = 0.7
EDGE_FINGERPRINT_IP = 0.8
EDGE_FINGERPRINT_NAME = 0.9
EDGE_FINGERPRINT_REF = 0.95
EDGE_FINGERPRINT_PHONE = 0.7
EDGE_FINGERPRINT_FLIGHT = 0.25
EDGE_IP_SUBNET = 0.5


class EntityGraph:
    """Weighted undirected multipartite graph with node timestamps."""

    def __init__(self) -> None:
        self._adjacency: Dict[EntityId, Dict[EntityId, float]] = {}
        self._first_seen: Dict[EntityId, float] = {}
        self._last_seen: Dict[EntityId, float] = {}
        self.edge_count = 0
        #: Structural version stamp: bumped on every node insertion,
        #: edge insertion and edge weight raise (never by :meth:`touch`
        #: — timestamps are not structure).  Consumers that compile the
        #: graph (:func:`repro.graph.propagation.compile_graph`) cache
        #: the compiled form keyed on this and recompile only when the
        #: structure actually changed.
        self.version = 0

    # -- construction --------------------------------------------------------

    def add_node(
        self, node: EntityId, time: Optional[float] = None
    ) -> None:
        if node not in self._adjacency:
            self._adjacency[node] = {}
            self.version += 1
        if time is not None:
            self.touch(node, time)

    def touch(self, node: EntityId, time: float) -> None:
        """Extend the node's observed [first_seen, last_seen] span."""
        first = self._first_seen.get(node)
        if first is None or time < first:
            self._first_seen[node] = time
        last = self._last_seen.get(node)
        if last is None or time > last:
            self._last_seen[node] = time

    def add_edge(
        self,
        a: EntityId,
        b: EntityId,
        weight: float,
        time: Optional[float] = None,
    ) -> None:
        """Link ``a`` and ``b`` (idempotent; same pair keeps max weight)."""
        if a == b:
            raise ValueError(f"self-edge not allowed: {a}")
        if not 0.0 < weight <= 1.0:
            raise ValueError(f"edge weight must be in (0, 1]: {weight}")
        self.add_node(a, time)
        self.add_node(b, time)
        existing = self._adjacency[a].get(b)
        if existing is None:
            self.edge_count += 1
            self._adjacency[a][b] = weight
            self._adjacency[b][a] = weight
            self.version += 1
        elif weight > existing:
            self._adjacency[a][b] = weight
            self._adjacency[b][a] = weight
            self.version += 1

    # -- reads ---------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._adjacency)

    def __contains__(self, node: EntityId) -> bool:
        return node in self._adjacency

    def nodes(self, kind: Optional[str] = None) -> List[EntityId]:
        """All nodes (optionally one kind), in insertion order."""
        if kind is None:
            return list(self._adjacency)
        return [node for node in self._adjacency if node.kind == kind]

    def neighbors(self, node: EntityId) -> Dict[EntityId, float]:
        return dict(self._adjacency.get(node, {}))

    _EMPTY_ADJACENCY: Dict[EntityId, float] = {}

    def neighbors_view(self, node: EntityId) -> Mapping[EntityId, float]:
        """The node's live adjacency dict — read-only by contract.

        :meth:`neighbors` returns a defensive copy, which is the right
        default but O(degree) allocation per call; hot analysis loops
        (graph compile, campaign corroboration/attachment scans) read
        this view instead and must not mutate it.
        """
        return self._adjacency.get(node, self._EMPTY_ADJACENCY)

    def weighted_degree(self, node: EntityId) -> float:
        return sum(self._adjacency.get(node, {}).values())

    def first_seen(self, node: EntityId) -> Optional[float]:
        return self._first_seen.get(node)

    def last_seen(self, node: EntityId) -> Optional[float]:
        return self._last_seen.get(node)

    def kind_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for node in self._adjacency:
            counts[node.kind] = counts.get(node.kind, 0) + 1
        return counts

    def components(
        self, nodes: Optional[Iterable[EntityId]] = None
    ) -> List[List[EntityId]]:
        """Connected components over ``nodes`` (default: every node).

        When ``nodes`` is given, components are computed on the induced
        subgraph: only edges with both endpoints inside the set count.
        Components and their members are returned in deterministic
        sorted order.
        """
        allowed: Optional[Set[EntityId]] = (
            None if nodes is None else set(nodes)
        )
        union: KeyedUnionFind[EntityId] = KeyedUnionFind()
        pool = self._adjacency if allowed is None else allowed
        for node in sorted(pool):
            if allowed is not None and node not in self._adjacency:
                continue
            union.add(node)
            for neighbor in self._adjacency.get(node, {}):
                if allowed is None or neighbor in allowed:
                    union.union(node, neighbor)
        return sorted(
            (sorted(group) for group in union.groups()),
            key=lambda group: group[0],
        )

    def edges(self) -> List[Tuple[EntityId, EntityId, float]]:
        """Every edge once, endpoints ordered, sorted."""
        found = []
        for a, neighbors in self._adjacency.items():
            for b, weight in neighbors.items():
                if a < b:
                    found.append((a, b, weight))
        return sorted(found)

    def snapshot(self, include_spans: bool = False) -> Dict[str, object]:
        """Canonical plain-data view — two graphs built from the same
        records in any order produce equal snapshots.

        The view is JSON-able once the ``EntityId`` tuples are
        listified, and mergeable: shard worlds ship their graphs across
        the pickle boundary as snapshots and the parent folds them with
        :meth:`merge_snapshot`.  Observation spans are opt-in: span
        times record *when an edge rule fired*, which (unlike the node
        and edge sets) can depend on feed order — e.g. the passenger
        name gate touches nodes at gate-open time — so they are left
        out of the canonical equality view and included only where the
        extra state matters (cross-shard merges).
        """
        view: Dict[str, object] = {
            "nodes": sorted(self.nodes()),
            "edges": self.edges(),
        }
        if include_spans:
            # A sorted triple list, not a node-keyed dict: tuple keys
            # would not survive the JSON result cache.
            view["spans"] = [
                (node, self._first_seen[node], self._last_seen[node])
                for node in sorted(self._first_seen)
            ]
        return view

    @classmethod
    def from_snapshot(cls, data: Dict[str, object]) -> "EntityGraph":
        """Rebuild a graph from :meth:`snapshot` output (exact round-trip
        up to node insertion order, which the snapshot canonicalises)."""
        graph = cls()
        graph.merge_snapshot(data)
        return graph

    def merge_snapshot(self, data: Dict[str, object]) -> None:
        """Fold a snapshot into this graph (cross-shard merge).

        The fold is associative and commutative: node insertion is
        idempotent, same-pair edges keep the max weight, and spans keep
        the min first-seen / max last-seen — so shard snapshots merge
        to the identical graph in any order.  Nodes/edge endpoints may
        arrive as lists (JSON round-trip) and are re-tupled.
        """
        for raw in data.get("nodes", []):
            self.add_node(EntityId(*raw))
        for a, b, weight in data.get("edges", []):
            self.add_edge(EntityId(*a), EntityId(*b), float(weight))
        for raw, first, last in data.get("spans", []):
            node = EntityId(*raw)
            self.touch(node, float(first))
            self.touch(node, float(last))


@dataclass
class GraphBuilderConfig:
    """Knobs for the incremental builder.

    ``min_name_repeats`` mirrors the rotation linker's gating: a
    passenger-name key only links fingerprints once it has appeared in
    at least that many bookings (one-off shared surnames never link).
    ``max_pending_names`` caps the recurrence-gating state — the
    KeyedStore bound that keeps streaming memory finite.
    """

    min_name_repeats: int = 2
    max_pending_names: int = 50_000
    include_subnets: bool = True
    link_flights: bool = True

    def __post_init__(self) -> None:
        if self.min_name_repeats < 1:
            raise ValueError(
                f"min_name_repeats must be >= 1: {self.min_name_repeats}"
            )


@dataclass
class _NameState:
    """Recurrence gate for one passenger-name key."""

    bookings: int = 0
    fingerprints: Set[str] = field(default_factory=set)
    active: bool = False


class GraphBuilder:
    """Feeds records into an :class:`EntityGraph`, incrementally.

    The same instance serves batch construction (feed everything, read
    ``graph``) and streaming (one ``observe_*`` call per record as it
    lands) — both produce the identical graph for the same record set,
    in any interleaving, because every link rule is a pure function of
    the records seen so far and edge insertion is idempotent.
    """

    def __init__(
        self,
        config: Optional[GraphBuilderConfig] = None,
        obs: Optional[object] = None,
    ) -> None:
        self.config = config or GraphBuilderConfig()
        self.graph = EntityGraph()
        #: Optional duck-typed :class:`repro.obs.ObsRegistry`.
        self.obs = obs
        self._names: KeyedStore[str, _NameState] = KeyedStore(
            max_keys=self.config.max_pending_names
        )
        #: SMS sends per fingerprint id — the Case C velocity signature
        #: (sessions there are single-request, so per-session priors
        #: carry nothing; the fingerprint is the right granularity).
        self.sms_by_fingerprint: Dict[str, int] = {}
        #: SMS sends per booking reference — the paper's "a handful of
        #: purchased tickets anchor thousands of sends".  The shared
        #: refs are what glue a rotated pumper's fingerprints into one
        #: campaign.
        self.sms_by_ref: Dict[str, int] = {}
        self.sessions_observed = 0
        self.bookings_observed = 0
        self.sms_observed = 0
        self.entries_observed = 0

    # -- observations --------------------------------------------------------

    def observe_entry(self, entry: LogEntry, now: float) -> None:
        """Link the entry's fingerprint and IP (intra-epoch identity)."""
        self.entries_observed += 1
        fp = fingerprint_node(entry.client.fingerprint_id)
        ip = ip_node(entry.client.ip_address)
        self.graph.add_edge(fp, ip, EDGE_FINGERPRINT_IP, time=entry.time)
        if self.config.include_subnets:
            self.graph.add_edge(
                ip, subnet_node(entry.client.ip_address),
                EDGE_IP_SUBNET, time=entry.time,
            )
        self._update_gauges()

    def observe_session(self, session: Session) -> None:
        """Add a closed session and its identity edges."""
        self.sessions_observed += 1
        node = session_node(session.session_id)
        fp = fingerprint_node(session.fingerprint_id)
        ip = ip_node(session.ip_address)
        self.graph.add_node(node, time=session.start)
        self.graph.touch(node, session.end)
        self.graph.add_edge(
            node, fp, EDGE_SESSION_FINGERPRINT, time=session.start
        )
        self.graph.add_edge(node, ip, EDGE_SESSION_IP, time=session.start)
        self.graph.add_edge(fp, ip, EDGE_FINGERPRINT_IP, time=session.start)
        if self.config.include_subnets:
            self.graph.add_edge(
                ip, subnet_node(session.ip_address),
                EDGE_IP_SUBNET, time=session.start,
            )
        self._update_gauges()

    def observe_booking(self, record: BookingRecord) -> None:
        """Link the booking's client to its flight and passenger names."""
        self.bookings_observed += 1
        fp = fingerprint_node(record.client.fingerprint_id)
        ip = ip_node(record.client.ip_address)
        self.graph.add_edge(fp, ip, EDGE_FINGERPRINT_IP, time=record.time)
        if self.config.link_flights:
            self.graph.add_edge(
                fp, flight_node(record.flight_id),
                EDGE_FINGERPRINT_FLIGHT, time=record.time,
            )
        for key in sorted({p.name_key for p in record.passengers}):
            self._observe_name(key, record.client.fingerprint_id, record.time)
        self._update_gauges()

    def observe_sms(self, record: SmsRecord) -> None:
        """Link the send's client to its phone number and booking ref."""
        self.sms_observed += 1
        self.sms_by_fingerprint[record.client.fingerprint_id] = (
            self.sms_by_fingerprint.get(record.client.fingerprint_id, 0)
            + 1
        )
        fp = fingerprint_node(record.client.fingerprint_id)
        ip = ip_node(record.client.ip_address)
        self.graph.add_edge(fp, ip, EDGE_FINGERPRINT_IP, time=record.time)
        self.graph.add_edge(
            fp, phone_node(str(record.number)),
            EDGE_FINGERPRINT_PHONE, time=record.time,
        )
        if record.booking_ref:
            self.sms_by_ref[record.booking_ref] = (
                self.sms_by_ref.get(record.booking_ref, 0) + 1
            )
            self.graph.add_edge(
                fp, booking_ref_node(record.booking_ref),
                EDGE_FINGERPRINT_REF, time=record.time,
            )
        self._update_gauges()

    # -- name-recurrence gating ----------------------------------------------

    def _observe_name(
        self, key: Tuple[str, str], fingerprint_id: str, time: float
    ) -> None:
        node = name_key_node(key)
        state, _ = self._names.get_or_create(
            node.value, time, _NameState
        )
        state.bookings += 1
        state.fingerprints.add(fingerprint_id)
        if state.active:
            self.graph.add_edge(
                node, fingerprint_node(fingerprint_id),
                EDGE_FINGERPRINT_NAME, time=time,
            )
            return
        if state.bookings >= self.config.min_name_repeats:
            # The gate opens: flush every fingerprint recorded while
            # pending, so the final edge set does not depend on the
            # order bookings arrived in.
            state.active = True
            for pending in sorted(state.fingerprints):
                self.graph.add_edge(
                    node, fingerprint_node(pending),
                    EDGE_FINGERPRINT_NAME, time=time,
                )

    @property
    def pending_names(self) -> int:
        return len(self._names)

    @property
    def peak_pending_names(self) -> int:
        return self._names.peak_size

    def evict_idle_names(self, now: float, idle_gap: float) -> int:
        """Drop recurrence gates idle past ``idle_gap``; returns count.

        An evicted *pending* name loses its one-off sighting (by
        design: it did not recur within the window); an evicted
        *active* name keeps its edges — only the gate state goes.
        """
        return len(self._names.evict_idle(now, idle_gap))

    # -- batch helper --------------------------------------------------------

    def observe_all(
        self,
        sessions: Sequence[Session] = (),
        bookings: Sequence[BookingRecord] = (),
        sms: Sequence[SmsRecord] = (),
    ) -> "GraphBuilder":
        for session in sessions:
            self.observe_session(session)
        for record in bookings:
            self.observe_booking(record)
        for record in sms:
            self.observe_sms(record)
        return self

    def _update_gauges(self) -> None:
        obs = self.obs
        if obs is None:
            return
        obs.set_gauge("graph.nodes", float(self.graph.node_count))
        obs.set_gauge("graph.edges", float(self.graph.edge_count))


def build_batch_graph(
    sessions: Sequence[Session] = (),
    bookings: Sequence[BookingRecord] = (),
    sms: Sequence[SmsRecord] = (),
    config: Optional[GraphBuilderConfig] = None,
    obs: Optional[object] = None,
) -> EntityGraph:
    """One-shot batch construction (the reference the stream matches)."""
    return (
        GraphBuilder(config, obs=obs)
        .observe_all(sessions=sessions, bookings=bookings, sms=sms)
        .graph
    )
