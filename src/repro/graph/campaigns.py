"""Campaign extraction over the risk-thresholded graph.

A *campaign* is what per-session detection cannot see: the set of
sessions, fingerprints and infrastructure one operation spreads its
traffic across.  Extraction works core-out:

1. the **core** is every infrastructure node (fingerprint, IP,
   passenger name, booking reference, phone) whose propagated risk
   clears ``risk_threshold`` — these are where diffusion concentrates,
   because one shared identity unions evidence from many sessions;
2. connected components run over the core *only* — never through hub
   kinds (target flights, /24 subnets), and never through sessions.
   Raw components would merge every legitimate customer of a targeted
   flight into the attacker's cluster through the shared flight node;
3. each component then **attaches** the sessions adjacent to its core
   (the traffic the infrastructure carried), and is kept if at least
   ``min_sessions`` attach.

The campaign's risk combines the core's evidence channels noisy-OR
style: for each infrastructure kind present in the core, take the
maximum propagated score, then combine across kinds — a cluster whose
fingerprints, IPs *and* recurring passenger names all amplified is
more damning than any one channel alone.  That combined risk is the
score member sessions inherit: a member is convicted for belonging to
a collectively damning operation, not for its own behaviour.

Each :class:`Campaign` carries the temporal-coherence and identity-
churn statistics that :class:`~repro.core.detection.rotation.LinkedEntity`
pioneered (distinct fingerprints/IPs, activity span, mean rotation
interval), generalised from booking records to the whole entity graph.

:class:`CampaignVerdict` bridges into the existing detection stack: a
campaign-level :class:`~repro.core.detection.verdict.Verdict`
(``campaign:<id>`` subject) for campaign-scale mitigation, plus one
per-member-session verdict that feeds
:class:`~repro.core.detection.fusion.FusionDetector` exactly like any
other detector family's output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.detection.verdict import Verdict
from .builder import EntityGraph
from .propagation import CompiledGraph
from .entities import (
    BOOKING_REF,
    FINGERPRINT,
    FLIGHT,
    IP,
    NAME_KEY,
    PHONE,
    SESSION,
    SUBNET,
    EntityId,
)

#: Detector name attached to campaign-derived verdicts.
CAMPAIGN_DETECTOR = "campaign-graph"

#: Subject-id namespace for campaign-level verdicts.
CAMPAIGN_SUBJECT_PREFIX = "campaign:"

#: Node kinds eligible for the campaign core (shared infrastructure).
CORE_KINDS: Tuple[str, ...] = (
    FINGERPRINT,
    IP,
    NAME_KEY,
    BOOKING_REF,
    PHONE,
)

#: Device/address kinds that need corroboration to enter the core: a
#: fingerprint or IP can inherit a hot score from a *single* shared
#: identity node (a passenger-name collision with the attacker's fixed
#: names, a NAT'd exit address), which is coincidence, not linkage.
DEVICE_KINDS: Tuple[str, ...] = (FINGERPRINT, IP)


@dataclass(frozen=True)
class CampaignConfig:
    """Extraction thresholds.

    ``risk_threshold`` gates which infrastructure nodes enter the
    core; ``hub_kinds`` (flights, subnets) exist for propagation only
    and are never members nor connectors; ``min_sessions`` drops cores
    whose attached traffic is too small to call a campaign.
    """

    risk_threshold: float = 0.25
    min_sessions: int = 3
    hub_kinds: Tuple[str, ...] = (FLIGHT, SUBNET)
    #: Risky neighbours a device node (fingerprint/IP) must have to
    #: enter the core when it carries no direct seed evidence of its
    #: own.  One hot neighbour means the device's score was relayed
    #: down a single channel — a name collision, a shared NAT exit —
    #: while real campaign devices tie together several risky nodes.
    min_device_corroboration: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.risk_threshold < 1.0:
            raise ValueError(
                f"risk_threshold must be in (0, 1): {self.risk_threshold}"
            )
        if self.min_sessions < 1:
            raise ValueError(
                f"min_sessions must be >= 1: {self.min_sessions}"
            )
        if self.min_device_corroboration < 1:
            raise ValueError(
                "min_device_corroboration must be >= 1: "
                f"{self.min_device_corroboration}"
            )


@dataclass(frozen=True)
class Campaign:
    """One recovered operation: a risky infrastructure core plus the
    sessions it carried."""

    campaign_id: str
    #: Core infrastructure nodes plus attached session nodes, sorted.
    members: Tuple[EntityId, ...]
    #: Noisy-OR over the core's per-kind maximum propagated scores.
    risk: float
    first_seen: float
    last_seen: float

    def _values(self, kind: str) -> Tuple[str, ...]:
        return tuple(
            member.value for member in self.members if member.kind == kind
        )

    @property
    def session_ids(self) -> Tuple[str, ...]:
        return self._values(SESSION)

    @property
    def fingerprint_ids(self) -> Tuple[str, ...]:
        return self._values(FINGERPRINT)

    @property
    def ip_addresses(self) -> Tuple[str, ...]:
        return self._values(IP)

    @property
    def name_keys(self) -> Tuple[str, ...]:
        return self._values(NAME_KEY)

    @property
    def booking_refs(self) -> Tuple[str, ...]:
        return self._values(BOOKING_REF)

    @property
    def phone_numbers(self) -> Tuple[str, ...]:
        return self._values(PHONE)

    @property
    def session_count(self) -> int:
        return len(self.session_ids)

    @property
    def distinct_fingerprints(self) -> int:
        return len(self.fingerprint_ids)

    @property
    def distinct_ips(self) -> int:
        return len(self.ip_addresses)

    @property
    def span(self) -> float:
        return self.last_seen - self.first_seen

    @property
    def rotates_identity(self) -> bool:
        """More than one fingerprint for one logical operation."""
        return self.distinct_fingerprints > 1

    @property
    def mean_rotation_interval(self) -> float:
        """Estimated time between fingerprint rotations (the paper's
        5.3 h statistic).  Infinity when no rotation was observed."""
        if self.distinct_fingerprints <= 1:
            return float("inf")
        return self.span / (self.distinct_fingerprints - 1)


@dataclass(frozen=True)
class CampaignVerdict:
    """A campaign plus its verdict forms.

    ``verdict`` judges the campaign itself (subject
    ``campaign:<id>``) — the input to campaign-level mitigation.
    ``member_verdicts`` judge each member session with the campaign's
    risk — the fan-out that feeds :class:`FusionDetector` so graph
    evidence combines with per-session detector families.
    """

    campaign: Campaign
    verdict: Verdict
    member_verdicts: Tuple[Verdict, ...]


def _campaign_risk(
    core: Sequence[EntityId], scores: Mapping[EntityId, float]
) -> float:
    """Noisy-OR across the core's evidence channels.

    Each infrastructure kind contributes its best-amplified node; the
    channels combine like independent evidence (fusion's convention).
    A rotated campaign whose fingerprints, IPs and recurring names all
    lit up scores far above any single channel.
    """
    per_kind: Dict[str, float] = {}
    for node in core:
        score = scores.get(node, 0.0)
        if score > per_kind.get(node.kind, 0.0):
            per_kind[node.kind] = score
    survival = 1.0
    for score in per_kind.values():
        survival *= 1.0 - min(max(score, 0.0), 1.0)
    return 1.0 - survival


def _corroborated(
    neighbors_of: Callable[[EntityId], Iterable[EntityId]],
    node: EntityId,
    scores: Mapping[EntityId, float],
    seeds: Mapping[EntityId, float],
    config: CampaignConfig,
) -> bool:
    """Whether a device node's risk is multi-channel, not one relay.

    Counts risky neighbours.  Hub kinds never corroborate (a hot
    target flight must not vouch for every device that touched it),
    and a session neighbour counts only on its *seed* evidence — its
    propagated score includes backflow from this very device, so a
    single name collision would otherwise vouch for itself through
    the device's own session.
    """
    hot = 0
    for neighbor in neighbors_of(node):
        if neighbor.kind in config.hub_kinds:
            continue
        evidence = (
            seeds.get(neighbor, 0.0)
            if neighbor.kind == SESSION
            else scores.get(neighbor, 0.0)
        )
        if evidence >= config.risk_threshold:
            hot += 1
            if hot >= config.min_device_corroboration:
                return True
    return False


def extract_campaigns(
    graph: EntityGraph,
    scores: Mapping[EntityId, float],
    config: Optional[CampaignConfig] = None,
    obs: Optional[object] = None,
    seeds: Optional[Mapping[EntityId, float]] = None,
    compiled: Optional[CompiledGraph] = None,
) -> List[Campaign]:
    """Core components plus their attached sessions.

    ``seeds`` (when given) exempts directly seeded device nodes from
    the corroboration gate: a fingerprint with its own evidence (an
    SMS-velocity prior, an entity-level verdict) is core on its own
    merits, while one that merely inherited heat from a single shared
    identity node needs ``min_device_corroboration`` risky neighbours.

    ``compiled`` (when given) serves the neighbour scans from the CSR
    arrays :func:`~repro.graph.propagation.compile_graph` already
    built for propagation, skipping per-call adjacency dict copies;
    corroboration counts and attachment sets are order-independent,
    so the result is identical either way.

    Campaigns are ordered largest-first (session count, then first
    member id) and named ``C001``, ``C002``, ... deterministically.
    """
    config = config or CampaignConfig()
    seeds = seeds or {}
    if compiled is not None and compiled.version == graph.version:
        neighbors_of = compiled.neighbors_of
    else:
        neighbors_of = graph.neighbors_view
    core = [
        node
        for node in graph.nodes()
        if node.kind in CORE_KINDS
        and scores.get(node, 0.0) >= config.risk_threshold
        and (
            node.kind not in DEVICE_KINDS
            or seeds.get(node, 0.0) > 0.0
            or _corroborated(neighbors_of, node, scores, seeds, config)
        )
    ]
    components = graph.components(core)

    candidates: List[Tuple[Tuple[EntityId, ...], float, float, float]] = []
    for component in components:
        attached = sorted(
            {
                neighbor
                for node in component
                for neighbor in neighbors_of(node)
                if neighbor.kind == SESSION
            }
        )
        if len(attached) < config.min_sessions:
            continue
        times = [
            time
            for node in attached
            for time in (graph.first_seen(node), graph.last_seen(node))
            if time is not None
        ]
        first = min(times) if times else 0.0
        last = max(times) if times else 0.0
        risk = _campaign_risk(component, scores)
        members = tuple(sorted(set(component) | set(attached)))
        candidates.append((members, risk, first, last))

    candidates.sort(
        key=lambda item: (
            -sum(1 for n in item[0] if n.kind == SESSION),
            item[0][0],
        )
    )
    campaigns = [
        Campaign(
            campaign_id=f"C{index + 1:03d}",
            members=members,
            risk=risk,
            first_seen=first,
            last_seen=last,
        )
        for index, (members, risk, first, last) in enumerate(candidates)
    ]
    if obs is not None:
        obs.set_gauge("graph.campaigns", float(len(campaigns)))
        obs.set_gauge(
            "graph.campaign_sessions",
            float(sum(c.session_count for c in campaigns)),
        )
    return campaigns


def campaign_subject(campaign_id: str) -> str:
    return f"{CAMPAIGN_SUBJECT_PREFIX}{campaign_id}"


def campaign_verdicts(
    campaigns: List[Campaign],
    threshold: float = 0.5,
    detector: str = CAMPAIGN_DETECTOR,
) -> List[CampaignVerdict]:
    """Verdict forms for every campaign.

    Member-session verdicts inherit the campaign's (core) risk — a
    member is judged for the operation it belongs to, which is the
    whole point of campaign-level detection — and are bot-positive
    when the campaign clears ``threshold``.
    """
    results = []
    for campaign in campaigns:
        is_bot = campaign.risk >= threshold
        score = min(max(campaign.risk, 0.0), 1.0)
        reasons = (
            f"campaign:{campaign.campaign_id}",
            f"fingerprints:{campaign.distinct_fingerprints}",
            f"sessions:{campaign.session_count}",
        )
        members = tuple(
            Verdict(
                subject_id=session_id,
                detector=detector,
                score=score,
                is_bot=is_bot,
                reasons=reasons if is_bot else (),
            )
            for session_id in campaign.session_ids
        )
        results.append(
            CampaignVerdict(
                campaign=campaign,
                verdict=Verdict(
                    subject_id=campaign_subject(campaign.campaign_id),
                    detector=detector,
                    score=min(max(campaign.risk, 0.0), 1.0),
                    is_bot=is_bot,
                    reasons=reasons,
                ),
                member_verdicts=members,
            )
        )
    return results
