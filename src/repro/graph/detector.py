"""Batch graph detection: seeds → diffusion → campaigns → verdicts.

:class:`GraphDetector` is the sixth detector family in the comparison
matrix.  It does not look for abusive *sessions* — it looks for
abusive *structure*: weak per-session evidence (other families'
sub-threshold scores, gentle behavioural priors) is seeded onto the
entity graph, amplified by propagation, and read back out as
campaigns.  A session conviction here means "this session belongs to
an operation that is collectively damning", which is exactly the
judgement per-session families cannot make about rotated campaigns.

The analysis core (:func:`analyze`, :func:`session_prior`,
:func:`accumulate_seed`) is shared verbatim with
:class:`~repro.graph.stream.GraphStreamAdapter`, so the streaming
end-of-stream result is the batch result by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..booking.reservation import BookingRecord
from ..core.detection.verdict import Verdict
from ..sms.gateway import SmsRecord
from ..stream.adapters import FP_SUBJECT_PREFIX
from ..web.logs import Session
from ..web.request import BOARDING_PASS_SMS, HOLD
from .builder import (
    EntityGraph,
    GraphBuilder,
    GraphBuilderConfig,
)
from .campaigns import (
    CAMPAIGN_DETECTOR,
    Campaign,
    CampaignConfig,
    CampaignVerdict,
    campaign_verdicts,
    extract_campaigns,
)
from .entities import (
    EntityId,
    booking_ref_node,
    fingerprint_node,
    session_node,
)
from .propagation import (
    CompiledGraph,
    PropagationConfig,
    PropagationResult,
    compile_graph,
    propagate,
)


@dataclass
class GraphDetectorConfig:
    """End-to-end knobs for the graph detection pipeline.

    ``seed_weights`` maps detector names to trust weights applied when
    verdict scores are folded into node seeds (noisy-OR, like fusion).
    The behavioural priors are deliberately *weak*: a session holding
    seats a handful of times seeds well below any conviction threshold
    — only shared structure amplifies it past one.
    """

    builder: GraphBuilderConfig = field(default_factory=GraphBuilderConfig)
    propagation: PropagationConfig = field(
        default_factory=PropagationConfig
    )
    campaigns: CampaignConfig = field(default_factory=CampaignConfig)
    seed_weights: Dict[str, float] = field(default_factory=dict)
    default_seed_weight: float = 0.5
    #: Per-session hold-count prior: ``cap * min(1, holds / scale)``.
    hold_seed_scale: float = 10.0
    hold_seed_cap: float = 0.4
    #: Per-session SMS-request prior, same shape.
    sms_seed_scale: float = 25.0
    sms_seed_cap: float = 0.4
    #: Per-*fingerprint* SMS-velocity prior — the Case C signature.
    #: Geo-matched per-request proxies shred pumper traffic into
    #: single-request sessions whose session priors carry nothing, but
    #: the rotated fingerprint still accumulates the sends.
    fp_sms_seed_scale: float = 25.0
    fp_sms_seed_cap: float = 0.4
    #: Per-booking-reference SMS-velocity prior: "a handful of
    #: purchased tickets anchor thousands of sends".  The shared refs
    #: glue a rotated pumper's fingerprints into one campaign.
    ref_sms_seed_scale: float = 25.0
    ref_sms_seed_cap: float = 0.4
    #: Campaign verdict threshold (mirrors fusion's 0.5 convention).
    verdict_threshold: float = 0.5


def session_prior(session: Session, config: GraphDetectorConfig) -> float:
    """Weak behavioural seed for one session (always sub-threshold)."""
    holds = 0
    sms = 0
    for entry in session.entries:
        if entry.path == HOLD:
            holds += 1
        elif entry.path == BOARDING_PASS_SMS:
            sms += 1
    hold_seed = config.hold_seed_cap * min(
        1.0, holds / config.hold_seed_scale
    )
    sms_seed = config.sms_seed_cap * min(1.0, sms / config.sms_seed_scale)
    return 1.0 - (1.0 - hold_seed) * (1.0 - sms_seed)


def accumulate_seed(
    seeds: Dict[EntityId, float],
    node: EntityId,
    score: float,
    weight: float = 1.0,
) -> None:
    """Fold evidence into ``seeds[node]`` noisy-OR style."""
    if score <= 0.0 or weight <= 0.0:
        return
    contribution = min(weight * score, 1.0)
    current = seeds.get(node, 0.0)
    seeds[node] = 1.0 - (1.0 - current) * (1.0 - contribution)


def sms_velocity_seeds(
    builder: GraphBuilder, config: GraphDetectorConfig
) -> Dict[EntityId, float]:
    """SMS-velocity seeds from builder send counts.

    Both are capped-linear in the count, zero for a quiet entity —
    the per-fingerprint and per-booking-reference views of the same
    Case C signature.
    """
    seeds: Dict[EntityId, float] = {}
    for fingerprint_id, count in builder.sms_by_fingerprint.items():
        value = config.fp_sms_seed_cap * min(
            1.0, count / config.fp_sms_seed_scale
        )
        if value > 0.0:
            seeds[fingerprint_node(fingerprint_id)] = value
    for booking_ref, count in builder.sms_by_ref.items():
        value = config.ref_sms_seed_cap * min(
            1.0, count / config.ref_sms_seed_scale
        )
        if value > 0.0:
            seeds[booking_ref_node(booking_ref)] = value
    return seeds


def merged_seeds(
    seeds: Mapping[EntityId, float],
    builder: GraphBuilder,
    config: GraphDetectorConfig,
) -> Dict[EntityId, float]:
    """Accumulated seeds plus priors derived from builder state.

    Builder-derived priors are recomputed from scratch at every
    analysis (never folded into the accumulated dict), so a streaming
    adapter that refreshes many times sees exactly the seeds a batch
    run computes once — the equivalence the test suite pins.
    """
    merged = dict(seeds)
    for node, value in sms_velocity_seeds(builder, config).items():
        accumulate_seed(merged, node, value)
    return merged


def seed_from_verdicts(
    seeds: Dict[EntityId, float],
    verdicts: Sequence[Verdict],
    config: GraphDetectorConfig,
) -> None:
    """Map existing detector verdicts onto graph-node seeds.

    Session-subject verdicts seed session nodes; ``fp:``-namespaced
    entity verdicts seed fingerprint nodes.  Campaign-graph verdicts
    are skipped so re-seeding from a previous round cannot self-amplify.
    """
    for verdict in verdicts:
        if verdict.detector == CAMPAIGN_DETECTOR:
            continue
        weight = config.seed_weights.get(
            verdict.detector, config.default_seed_weight
        )
        if verdict.subject_id.startswith(FP_SUBJECT_PREFIX):
            node = fingerprint_node(
                verdict.subject_id[len(FP_SUBJECT_PREFIX):]
            )
        else:
            node = session_node(verdict.subject_id)
        accumulate_seed(seeds, node, verdict.score, weight)


@dataclass
class GraphAnalysis:
    """One full pass of the graph pipeline."""

    graph: EntityGraph
    propagation: PropagationResult
    campaigns: List[Campaign]
    campaign_verdicts: List[CampaignVerdict]
    #: The merged seed map the sweep started from — kept so equivalence
    #: harnesses can replay the exact analysis through the dict
    #: reference path (``propagate_dict`` + uncompiled extraction).
    seeds: Dict[EntityId, float] = field(default_factory=dict)


def analyze(
    graph: EntityGraph,
    seeds: Mapping[EntityId, float],
    config: GraphDetectorConfig,
    obs: Optional[object] = None,
    compiled: Optional[CompiledGraph] = None,
) -> GraphAnalysis:
    """Propagate ``seeds`` and extract campaign verdicts (pure).

    The graph is compiled to CSR form once (or reused via ``compiled``
    when the caller's cached copy is still structurally current) and
    shared by both the propagation sweep and the campaign extraction's
    neighbour scans.
    """
    if compiled is None or compiled.version != graph.version:
        compiled = compile_graph(graph, obs=obs)
    result = propagate(
        graph, seeds, config=config.propagation, obs=obs,
        compiled=compiled,
    )
    campaigns = extract_campaigns(
        graph, result.scores, config=config.campaigns, obs=obs,
        seeds=seeds, compiled=compiled,
    )
    return GraphAnalysis(
        graph=graph,
        propagation=result,
        campaigns=campaigns,
        campaign_verdicts=campaign_verdicts(
            campaigns, threshold=config.verdict_threshold
        ),
        seeds=dict(seeds),
    )


class GraphDetector:
    """Campaign detection over the batch-built entity graph.

    Subjects are session ids (like every session-family detector), so
    its output drops straight into :class:`FusionDetector`; the
    campaign-level verdicts and the campaigns themselves are kept on
    the instance for mitigation and reporting.
    """

    name = CAMPAIGN_DETECTOR

    def __init__(
        self,
        config: Optional[GraphDetectorConfig] = None,
        obs: Optional[object] = None,
    ) -> None:
        self.config = config or GraphDetectorConfig()
        self.obs = obs
        self.last_analysis: Optional[GraphAnalysis] = None

    def judge_all(
        self,
        sessions: Sequence[Session],
        bookings: Sequence[BookingRecord] = (),
        sms: Sequence[SmsRecord] = (),
        seed_verdicts: Sequence[Verdict] = (),
    ) -> List[Verdict]:
        """One verdict per session; campaign members carry their
        amplified score, everyone else scores zero."""
        sessions = list(sessions)
        builder = GraphBuilder(self.config.builder, obs=self.obs)
        builder.observe_all(sessions=sessions, bookings=bookings, sms=sms)

        seeds: Dict[EntityId, float] = {}
        for session in sessions:
            accumulate_seed(
                seeds,
                session_node(session.session_id),
                session_prior(session, self.config),
            )
        seed_from_verdicts(seeds, seed_verdicts, self.config)

        analysis = analyze(
            builder.graph,
            merged_seeds(seeds, builder, self.config),
            self.config,
            obs=self.obs,
        )
        self.last_analysis = analysis

        by_session: Dict[str, Verdict] = {}
        for campaign_verdict in analysis.campaign_verdicts:
            for member in campaign_verdict.member_verdicts:
                by_session[member.subject_id] = member
        return [
            by_session.get(
                session.session_id,
                Verdict(
                    subject_id=session.session_id,
                    detector=self.name,
                    score=0.0,
                    is_bot=False,
                ),
            )
            for session in sessions
        ]

    @property
    def campaigns(self) -> List[Campaign]:
        return (
            list(self.last_analysis.campaigns)
            if self.last_analysis is not None
            else []
        )
