"""Weak-signal amplification: damped degree-normalized risk diffusion.

No single session of a rotated campaign looks abusive, but the
campaign's sessions share infrastructure nodes.  Propagation starts
from weak per-entity seed scores (existing detector verdicts, gentle
behavioural priors) and iterates a random-walk-with-restart style
update until nothing moves:

``s'(v) = seed(v) + d * sum_u (w(u,v) / deg(u)) * s(u)``

where ``d`` is the damping factor, ``w`` the edge weight and ``deg``
the *weighted* degree of the emitting side.  Scores are clamped into
[0, 1] only at read-out.  The asymmetry is the whole design:

* **emission is degree-normalized at the source** — a node re-emits
  at most ``d`` times its own risk, split across its edges by weight.
  That makes the update operator's spectral radius at most ``d < 1``:
  the fixed point exists, is unique, and *no* structure can blow up.
  It is also the hub safety: a flight with hundreds of customers or a
  /24 shared by a whole region splits its emission so thin that it
  heats no individual neighbour, no matter how hot it runs itself;
* **absorption is an unnormalized sum** — risk mass pouring in from
  *distinct* sources adds up, so a booking reference fed by 60 weakly
  suspicious fingerprints, or a fingerprint behind 100 near-innocent
  single-request sessions, accumulates far more mass than any one
  source carries.  That fan-in *is* the weak-signal amplification:
  risk mass is conserved up to ``d``, so a three-session household
  circulating ~0.1 total seed mass can never look like a campaign,
  while a hundred sessions of the same operation can.

Properties the test-suite pins:

* read-out scores stay in [0, 1] (clamped non-negative mass);
* isolated nodes keep exactly their seed (empty neighbour sum);
* updates are synchronous (Jacobi) and edge iteration is sorted, so
  the fixed point is deterministic and independent of graph feed
  order — no RNG anywhere;
* iteration starts at the seeds and every update is monotone
  nondecreasing, climbing geometrically (rate ``d``) to the Neumann
  fixed point; the loop stops when the largest per-node delta drops
  below tolerance.

The sweep itself runs on a :class:`CompiledGraph`: the adjacency dicts
are compiled once into int-indexed CSR arrays (incoming edges grouped
by destination, sources sorted within each group) and every Jacobi
round becomes three NumPy operations — gather source mass, scale by
the precomputed coupling, ``np.bincount`` back onto destinations.
``np.bincount`` accumulates its weights in array order, which is the
sorted-neighbour order the CSR layout stores, so the vectorized sweep
is bit-identical to the historical per-edge Python loop (kept as
:func:`propagate_dict`, the reference the property tests compare
against).  Compilation is seed-independent, so streaming callers
reuse one compiled graph across refreshes until the structure grows.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from .builder import EntityGraph
from .entities import EntityId


@dataclass(frozen=True)
class PropagationConfig:
    """Diffusion knobs (defaults tuned on the Case A/C scenarios)."""

    damping: float = 0.85
    max_rounds: int = 100
    tolerance: float = 1e-5

    def __post_init__(self) -> None:
        if not 0.0 < self.damping < 1.0:
            raise ValueError(
                f"damping must be in (0, 1): {self.damping}"
            )
        if self.max_rounds < 1:
            raise ValueError(
                f"max_rounds must be >= 1: {self.max_rounds}"
            )
        if self.tolerance <= 0:
            raise ValueError(
                f"tolerance must be positive: {self.tolerance}"
            )


@dataclass
class PropagationResult:
    """Fixed-point scores plus convergence diagnostics."""

    scores: Dict[EntityId, float]
    rounds: int
    converged: bool

    def score(self, node: EntityId) -> float:
        return self.scores.get(node, 0.0)

    def top(self, count: int = 10) -> List[Tuple[EntityId, float]]:
        """Highest-risk nodes, score-descending then id-ascending."""
        if count <= 0:
            return []
        return [
            (node, -negated)
            for negated, node in heapq.nsmallest(
                count,
                ((-score, node) for node, score in self.scores.items()),
            )
        ]


@dataclass
class CompiledGraph:
    """Int-indexed CSR form of an :class:`EntityGraph`.

    Incoming edges are grouped by destination node (``indptr`` bounds
    node ``i``'s group at ``src[indptr[i]:indptr[i+1]]``) with sources
    *sorted by node id* inside each group — the same sorted-neighbour
    iteration order the dict reference uses, which is what keeps float
    accumulation bit-identical across build orders.  ``degree`` is the
    weighted degree summed in that order, and ``src_degree`` gathers
    it per edge so the damped coupling is one elementwise expression
    at propagate time.

    Compilation depends only on graph *structure* (not on seeds or
    config), and carries the graph's structural ``version`` stamp so
    callers can cache the compiled form and recompile only when the
    graph actually grew.
    """

    nodes: List[EntityId]
    index: Dict[EntityId, int]
    indptr: np.ndarray      # (n+1,) int64 — incoming-edge group bounds
    src: np.ndarray         # (e,) int64 — source node index per edge
    dst: np.ndarray         # (e,) int64 — destination node index per edge
    weights: np.ndarray     # (e,) float64 — edge weight per edge
    degree: np.ndarray      # (n,) float64 — weighted degree per node
    src_degree: np.ndarray  # (e,) float64 — degree[src] per edge
    version: int = 0

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        """Directed edge slots (2x the undirected edge count)."""
        return int(self.src.shape[0])

    def neighbors_of(self, node: EntityId) -> List[EntityId]:
        """The node's neighbours, sorted by id (no dict copy)."""
        i = self.index.get(node)
        if i is None:
            return []
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        return [self.nodes[j] for j in self.src[lo:hi]]


def compile_graph(
    graph: EntityGraph, obs: Optional[object] = None
) -> CompiledGraph:
    """Compile ``graph`` into CSR arrays (one-time, seed-independent)."""
    span = obs.timer("graph.compile").time() if obs is not None else None
    if span is not None:
        span.__enter__()
    try:
        nodes = sorted(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)
        counts = np.empty(n, dtype=np.int64)
        src_ids: List[int] = []
        weight_list: List[float] = []
        for i, node in enumerate(nodes):
            items = sorted(graph.neighbors_view(node).items())
            counts[i] = len(items)
            for neighbor, weight in items:
                src_ids.append(index[neighbor])
                weight_list.append(weight)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        src = np.asarray(src_ids, dtype=np.int64)
        weights = np.asarray(weight_list, dtype=np.float64)
        # Destination index per edge; bincount over it accumulates each
        # node's incoming sum in sorted-source order — the dict path's
        # exact summation order.
        dst = np.repeat(np.arange(n, dtype=np.int64), counts)
        degree = np.bincount(dst, weights=weights, minlength=n)
        src_degree = degree[src] if n else np.empty(0, dtype=np.float64)
        compiled = CompiledGraph(
            nodes=nodes,
            index=index,
            indptr=indptr,
            src=src,
            dst=dst,
            weights=weights,
            degree=degree,
            src_degree=src_degree,
            version=graph.version,
        )
    finally:
        if span is not None:
            span.__exit__(None, None, None)
    if obs is not None:
        obs.increment("graph.compile.nodes", float(n))
        obs.increment("graph.compile.edges", float(compiled.edge_count))
    return compiled


def propagate(
    graph: EntityGraph,
    seeds: Mapping[EntityId, float],
    config: Optional[PropagationConfig] = None,
    obs: Optional[object] = None,
    compiled: Optional[CompiledGraph] = None,
) -> PropagationResult:
    """Diffuse ``seeds`` over ``graph`` to the deterministic fixed point.

    Seed entries for nodes absent from the graph are kept as-is (they
    are isolated by definition); every graph node missing from
    ``seeds`` starts at 0.  Seeds are clipped into [0, 1] on the way
    in, and scores are clamped into [0, 1] on the way out, so a caller
    cannot push the diffusion out of range.

    ``compiled`` reuses a previous :func:`compile_graph` result; it
    must match the graph's current structural version (streaming
    callers cache it and recompile only when the graph grew).
    """
    config = config or PropagationConfig()
    if compiled is None:
        compiled = compile_graph(graph, obs=obs)
    elif compiled.version != graph.version:
        raise ValueError(
            f"stale CompiledGraph: compiled version {compiled.version} "
            f"!= graph version {graph.version}"
        )

    n = compiled.node_count
    seed_vec = np.zeros(n, dtype=np.float64)
    for node, value in seeds.items():
        i = compiled.index.get(node)
        if i is not None:
            seed_vec[i] = min(max(float(value), 0.0), 1.0)
    # Seeded nodes absent from the graph are isolated by definition:
    # their read-out is exactly the clipped seed, no sweep needed.
    extras = {
        node: min(max(float(value), 0.0), 1.0)
        for node, value in seeds.items()
        if node not in compiled.index
    }

    # Per-edge damped coupling, computed exactly as the dict reference
    # does per pair: (damping * weight) / degree[source].
    factor = config.damping * compiled.weights / compiled.src_degree
    src = compiled.src
    dst = compiled.dst

    mass = seed_vec.copy()
    rounds = 0
    converged = False
    timer = obs.timer("graph.propagation.round") if obs is not None else None
    for rounds in range(1, config.max_rounds + 1):
        span = timer.time() if timer is not None else None
        if span is not None:
            span.__enter__()
        absorbed = np.bincount(
            dst, weights=factor * mass[src], minlength=n
        )
        updated = seed_vec + absorbed
        delta = float((updated - mass).max(initial=0.0))
        mass = updated
        if span is not None:
            span.__exit__(None, None, None)
        if delta < config.tolerance:
            converged = True
            break
    scores = {
        node: min(1.0, float(value))
        for node, value in zip(compiled.nodes, mass)
    }
    scores.update(extras)
    if obs is not None:
        obs.set_gauge("graph.propagation.rounds", float(rounds))
        obs.set_gauge(
            "graph.propagation.converged", 1.0 if converged else 0.0
        )
        obs.increment(
            "graph.propagation.edge_sweeps",
            float(compiled.edge_count * rounds),
        )
    return PropagationResult(
        scores=scores, rounds=rounds, converged=converged
    )


def propagate_dict(
    graph: EntityGraph,
    seeds: Mapping[EntityId, float],
    config: Optional[PropagationConfig] = None,
    obs: Optional[object] = None,
) -> PropagationResult:
    """Reference per-edge Python implementation of :func:`propagate`.

    Kept verbatim as the semantic specification the CSR kernel is
    property-tested against (`tests/test_propagation_csr.py`): same
    sorted-neighbour summation order, same monotone delta tracking,
    same clamping.  Production callers use :func:`propagate`.
    """
    config = config or PropagationConfig()

    nodes = sorted(set(graph.nodes()) | set(seeds))
    seed_of = {
        node: min(max(float(seeds.get(node, 0.0)), 0.0), 1.0)
        for node in nodes
    }
    # Precompute sorted incoming-edge lists with the source-side
    # normalized coupling, so each round is a flat scan over directed
    # edges; sorting makes float sums independent of the order records
    # fed the builder.
    # Degrees are summed over *sorted* neighbours (not the graph's
    # insertion-ordered adjacency): float addition is not associative,
    # so this is what makes two builds of the same record set — batch
    # vs streaming, any interleaving — produce bit-identical scores.
    degree = {
        node: sum(
            weight
            for _, weight in sorted(graph.neighbors(node).items())
        )
        for node in nodes
    }
    incoming: Dict[EntityId, List[Tuple[EntityId, float]]] = {}
    for node in nodes:
        pairs = []
        for neighbor, weight in sorted(graph.neighbors(node).items()):
            # The *source* (neighbor) side normalizes: a node re-emits
            # d times its mass, split across its edges by weight.
            pairs.append(
                (neighbor, config.damping * weight / degree[neighbor])
            )
        incoming[node] = pairs

    mass = dict(seed_of)
    rounds = 0
    converged = False
    timer = obs.timer("graph.propagation.round") if obs is not None else None
    for rounds in range(1, config.max_rounds + 1):
        span = timer.time() if timer is not None else None
        if span is not None:
            span.__enter__()
        delta = 0.0
        updated: Dict[EntityId, float] = {}
        for node in nodes:
            absorbed = 0.0
            for source, factor in incoming[node]:
                absorbed += factor * mass[source]
            value = seed_of[node] + absorbed
            updated[node] = value
            change = value - mass[node]
            if change > delta:
                delta = change
        mass = updated
        if span is not None:
            span.__exit__(None, None, None)
        if delta < config.tolerance:
            converged = True
            break
    scores = {
        node: min(1.0, value) for node, value in mass.items()
    }
    if obs is not None:
        obs.set_gauge("graph.propagation.rounds", float(rounds))
        obs.set_gauge(
            "graph.propagation.converged", 1.0 if converged else 0.0
        )
    return PropagationResult(
        scores=scores, rounds=rounds, converged=converged
    )
