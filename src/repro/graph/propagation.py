"""Weak-signal amplification: damped degree-normalized risk diffusion.

No single session of a rotated campaign looks abusive, but the
campaign's sessions share infrastructure nodes.  Propagation starts
from weak per-entity seed scores (existing detector verdicts, gentle
behavioural priors) and iterates a random-walk-with-restart style
update until nothing moves:

``s'(v) = seed(v) + d * sum_u (w(u,v) / deg(u)) * s(u)``

where ``d`` is the damping factor, ``w`` the edge weight and ``deg``
the *weighted* degree of the emitting side.  Scores are clamped into
[0, 1] only at read-out.  The asymmetry is the whole design:

* **emission is degree-normalized at the source** — a node re-emits
  at most ``d`` times its own risk, split across its edges by weight.
  That makes the update operator's spectral radius at most ``d < 1``:
  the fixed point exists, is unique, and *no* structure can blow up.
  It is also the hub safety: a flight with hundreds of customers or a
  /24 shared by a whole region splits its emission so thin that it
  heats no individual neighbour, no matter how hot it runs itself;
* **absorption is an unnormalized sum** — risk mass pouring in from
  *distinct* sources adds up, so a booking reference fed by 60 weakly
  suspicious fingerprints, or a fingerprint behind 100 near-innocent
  single-request sessions, accumulates far more mass than any one
  source carries.  That fan-in *is* the weak-signal amplification:
  risk mass is conserved up to ``d``, so a three-session household
  circulating ~0.1 total seed mass can never look like a campaign,
  while a hundred sessions of the same operation can.

Properties the test-suite pins:

* read-out scores stay in [0, 1] (clamped non-negative mass);
* isolated nodes keep exactly their seed (empty neighbour sum);
* updates are synchronous (Jacobi) and edge iteration is sorted, so
  the fixed point is deterministic and independent of graph feed
  order — no RNG anywhere;
* iteration starts at the seeds and every update is monotone
  nondecreasing, climbing geometrically (rate ``d``) to the Neumann
  fixed point; the loop stops when the largest per-node delta drops
  below tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from .builder import EntityGraph
from .entities import EntityId


@dataclass(frozen=True)
class PropagationConfig:
    """Diffusion knobs (defaults tuned on the Case A/C scenarios)."""

    damping: float = 0.85
    max_rounds: int = 100
    tolerance: float = 1e-5

    def __post_init__(self) -> None:
        if not 0.0 < self.damping < 1.0:
            raise ValueError(
                f"damping must be in (0, 1): {self.damping}"
            )
        if self.max_rounds < 1:
            raise ValueError(
                f"max_rounds must be >= 1: {self.max_rounds}"
            )
        if self.tolerance <= 0:
            raise ValueError(
                f"tolerance must be positive: {self.tolerance}"
            )


@dataclass
class PropagationResult:
    """Fixed-point scores plus convergence diagnostics."""

    scores: Dict[EntityId, float]
    rounds: int
    converged: bool

    def score(self, node: EntityId) -> float:
        return self.scores.get(node, 0.0)

    def top(self, count: int = 10) -> List[Tuple[EntityId, float]]:
        """Highest-risk nodes, score-descending then id-ascending."""
        ranked = sorted(
            self.scores.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:count]


def propagate(
    graph: EntityGraph,
    seeds: Mapping[EntityId, float],
    config: Optional[PropagationConfig] = None,
    obs: Optional[object] = None,
) -> PropagationResult:
    """Diffuse ``seeds`` over ``graph`` to the deterministic fixed point.

    Seed entries for nodes absent from the graph are kept as-is (they
    are isolated by definition); every graph node missing from
    ``seeds`` starts at 0.  Seeds are clipped into [0, 1] on the way
    in, and scores are clamped into [0, 1] on the way out, so a caller
    cannot push the diffusion out of range.
    """
    config = config or PropagationConfig()

    nodes = sorted(set(graph.nodes()) | set(seeds))
    seed_of = {
        node: min(max(float(seeds.get(node, 0.0)), 0.0), 1.0)
        for node in nodes
    }
    # Precompute sorted incoming-edge lists with the source-side
    # normalized coupling, so each round is a flat scan over directed
    # edges; sorting makes float sums independent of the order records
    # fed the builder.
    # Degrees are summed over *sorted* neighbours (not the graph's
    # insertion-ordered adjacency): float addition is not associative,
    # so this is what makes two builds of the same record set — batch
    # vs streaming, any interleaving — produce bit-identical scores.
    degree = {
        node: sum(
            weight
            for _, weight in sorted(graph.neighbors(node).items())
        )
        for node in nodes
    }
    incoming: Dict[EntityId, List[Tuple[EntityId, float]]] = {}
    for node in nodes:
        pairs = []
        for neighbor, weight in sorted(graph.neighbors(node).items()):
            # The *source* (neighbor) side normalizes: a node re-emits
            # d times its mass, split across its edges by weight.
            pairs.append(
                (neighbor, config.damping * weight / degree[neighbor])
            )
        incoming[node] = pairs

    mass = dict(seed_of)
    rounds = 0
    converged = False
    timer = obs.timer("graph.propagation.round") if obs is not None else None
    for rounds in range(1, config.max_rounds + 1):
        span = timer.time() if timer is not None else None
        if span is not None:
            span.__enter__()
        delta = 0.0
        updated: Dict[EntityId, float] = {}
        for node in nodes:
            absorbed = 0.0
            for source, factor in incoming[node]:
                absorbed += factor * mass[source]
            value = seed_of[node] + absorbed
            updated[node] = value
            change = value - mass[node]
            if change > delta:
                delta = change
        mass = updated
        if span is not None:
            span.__exit__(None, None, None)
        if delta < config.tolerance:
            converged = True
            break
    scores = {
        node: min(1.0, value) for node, value in mass.items()
    }
    if obs is not None:
        obs.set_gauge("graph.propagation.rounds", float(rounds))
        obs.set_gauge(
            "graph.propagation.converged", 1.0 if converged else 0.0
        )
    return PropagationResult(
        scores=scores, rounds=rounds, converged=converged
    )
