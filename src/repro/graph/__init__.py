"""Entity risk graph: weak-signal amplification over shared infrastructure.

The paper's campaigns defeat per-session detection by spreading
low-and-slow traffic across rotated fingerprints and residential
proxies (Section III-B).  What rotation cannot scrub is *shared
infrastructure*: passenger name pools, booking references, phone
numbers and target flights persist across identity swaps.  This
package turns those side-channels into a first-class multipartite
graph and amplifies weak per-entity risk over it:

* :mod:`~repro.graph.entities` — typed node ids (session, fingerprint,
  IP, subnet, phone, booking reference, passenger-name key, flight);
* :mod:`~repro.graph.unionfind` — the generalized disjoint-set shared
  with :mod:`repro.core.detection.rotation`;
* :mod:`~repro.graph.builder` — :class:`EntityGraph` plus the
  incremental :class:`GraphBuilder` (bounded transient state via
  :class:`~repro.stream.store.KeyedStore`);
* :mod:`~repro.graph.propagation` — damped, degree-normalized risk
  diffusion to a deterministic fixed point;
* :mod:`~repro.graph.campaigns` — campaign extraction over the
  risk-thresholded subgraph with churn/temporal statistics;
* :mod:`~repro.graph.detector` — the batch :class:`GraphDetector`;
* :mod:`~repro.graph.stream` — the :class:`GraphStreamAdapter` riding
  :class:`~repro.stream.pipeline.StreamPipeline`.
"""

from .builder import (
    EntityGraph,
    GraphBuilder,
    GraphBuilderConfig,
    build_batch_graph,
)
from .campaigns import (
    CAMPAIGN_DETECTOR,
    Campaign,
    CampaignConfig,
    CampaignVerdict,
    extract_campaigns,
)
from .detector import GraphAnalysis, GraphDetector, GraphDetectorConfig
from .entities import (
    BOOKING_REF,
    FINGERPRINT,
    FLIGHT,
    IP,
    NAME_KEY,
    PHONE,
    SESSION,
    SUBNET,
    EntityId,
)
from .propagation import PropagationConfig, PropagationResult, propagate
from .stream import GraphStreamAdapter, RecordFeed
from .unionfind import KeyedUnionFind, UnionFind

__all__ = [
    "BOOKING_REF",
    "CAMPAIGN_DETECTOR",
    "Campaign",
    "CampaignConfig",
    "CampaignVerdict",
    "EntityGraph",
    "EntityId",
    "FINGERPRINT",
    "FLIGHT",
    "GraphAnalysis",
    "GraphBuilder",
    "GraphBuilderConfig",
    "GraphDetector",
    "GraphDetectorConfig",
    "GraphStreamAdapter",
    "IP",
    "KeyedUnionFind",
    "NAME_KEY",
    "PHONE",
    "PropagationConfig",
    "PropagationResult",
    "RecordFeed",
    "SESSION",
    "SUBNET",
    "UnionFind",
    "build_batch_graph",
    "extract_campaigns",
    "propagate",
]
