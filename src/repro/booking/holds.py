"""Temporary seat holds with time-to-live expiry.

The hold is the feature Seat Spinning abuses: "once a seat is selected
on a flight, it is temporarily reserved for the passenger for a specific
duration — ranging from 30 minutes to several hours — before payment is
required" (Section IV-A).  :class:`HoldStore` owns every hold's
lifecycle and runs TTL expiry off a heap so sweeps are O(expired) rather
than O(all).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..common import ClientRef
from .passengers import Passenger
from .seatmap import Seat

# Hold lifecycle states.
ACTIVE = "active"
EXPIRED = "expired"
CONFIRMED = "confirmed"
CANCELLED = "cancelled"


@dataclass
class Hold:
    """One temporary reservation of ``nip`` seats on a flight.

    ``shadow`` marks honeypot holds: they look identical to the client
    but were never backed by real inventory (Section V's decoy
    environment proposal).
    """

    hold_id: str
    flight_id: str
    nip: int
    passengers: Tuple[Passenger, ...]
    client: ClientRef
    created_at: float
    expires_at: float
    price_quoted: float
    shadow: bool = False
    #: Specific seats reserved (empty unless the flight has a seat map).
    seats: Tuple[Seat, ...] = ()
    status: str = field(default=ACTIVE)
    closed_at: Optional[float] = None

    @property
    def is_active(self) -> bool:
        return self.status == ACTIVE

    @property
    def held_duration(self) -> float:
        """Seconds the hold was (or has been) active."""
        end = self.closed_at if self.closed_at is not None else self.expires_at
        return max(end - self.created_at, 0.0)


class HoldStore:
    """Registry of all holds with heap-based TTL expiry.

    ``expire_due(now)`` transitions every active hold whose
    ``expires_at <= now`` to ``EXPIRED`` and returns them so the caller
    (the reservation system) can release the underlying seats.
    """

    def __init__(self) -> None:
        self._holds: Dict[str, Hold] = {}
        self._expiry_heap: List[Tuple[float, str]] = []
        self._ids = itertools.count(1)

    def new_hold_id(self) -> str:
        return f"H{next(self._ids):08d}"

    def add(self, hold: Hold) -> None:
        if hold.hold_id in self._holds:
            raise ValueError(f"duplicate hold id {hold.hold_id!r}")
        self._holds[hold.hold_id] = hold
        heapq.heappush(self._expiry_heap, (hold.expires_at, hold.hold_id))

    def get(self, hold_id: str) -> Hold:
        try:
            return self._holds[hold_id]
        except KeyError:
            raise KeyError(f"unknown hold id {hold_id!r}") from None

    def __contains__(self, hold_id: str) -> bool:
        return hold_id in self._holds

    def __len__(self) -> int:
        return len(self._holds)

    def all_holds(self) -> List[Hold]:
        return list(self._holds.values())

    def active_holds(self) -> List[Hold]:
        return [hold for hold in self._holds.values() if hold.is_active]

    def active_for_flight(self, flight_id: str) -> List[Hold]:
        return [
            hold
            for hold in self._holds.values()
            if hold.is_active and hold.flight_id == flight_id
        ]

    def close(self, hold_id: str, status: str, now: float) -> Hold:
        """Transition an active hold to a terminal status."""
        if status not in (EXPIRED, CONFIRMED, CANCELLED):
            raise ValueError(f"not a terminal hold status: {status!r}")
        hold = self.get(hold_id)
        if not hold.is_active:
            raise ValueError(
                f"hold {hold_id} is {hold.status}, cannot move to {status}"
            )
        hold.status = status
        hold.closed_at = now
        return hold

    def expire_due(self, now: float) -> List[Hold]:
        """Expire every active hold whose TTL has elapsed.

        Stale heap entries (for holds already confirmed or cancelled)
        are discarded lazily.
        """
        expired: List[Hold] = []
        while self._expiry_heap and self._expiry_heap[0][0] <= now:
            _, hold_id = heapq.heappop(self._expiry_heap)
            hold = self._holds[hold_id]
            if hold.is_active:
                # The hold logically ended at its own deadline even when
                # the sweep runs later (lazy expiry must not inflate
                # held_duration accounting).
                self.close(hold_id, EXPIRED, hold.expires_at)
                expired.append(hold)
        return expired

    def next_expiry(self) -> Optional[float]:
        """Time of the earliest still-pending expiry, or None."""
        while self._expiry_heap:
            expires_at, hold_id = self._expiry_heap[0]
            if self._holds[hold_id].is_active:
                return expires_at
            heapq.heappop(self._expiry_heap)
        return None
