"""Flights and seat inventory.

A :class:`Flight` owns a :class:`SeatInventory` that tracks three seat
populations: confirmed (paid), held (temporarily reserved, the feature
Seat Spinning abuses) and available.  The invariant

``confirmed + held + available == capacity``

is enforced on every transition and checked by the property-based test
suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .seatmap import SeatMap


class InventoryError(Exception):
    """Raised on impossible inventory transitions (a caller bug)."""


@dataclass
class SeatInventory:
    """Seat accounting for one flight."""

    capacity: int
    confirmed: int = 0
    held: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError(f"negative capacity: {self.capacity}")

    @property
    def available(self) -> int:
        """Seats neither confirmed nor under an active hold."""
        return self.capacity - self.confirmed - self.held

    @property
    def load_factor(self) -> float:
        """Fraction of capacity that is confirmed or held (0 if empty)."""
        if self.capacity == 0:
            return 1.0
        return (self.confirmed + self.held) / self.capacity

    def take_hold(self, seats: int) -> None:
        """Move ``seats`` from available to held."""
        if seats < 1:
            raise InventoryError(f"hold size must be >= 1: {seats}")
        if seats > self.available:
            raise InventoryError(
                f"cannot hold {seats} seats; only {self.available} available"
            )
        self.held += seats

    def release_hold(self, seats: int) -> None:
        """Move ``seats`` from held back to available (expiry / cancel)."""
        if seats < 1 or seats > self.held:
            raise InventoryError(
                f"cannot release {seats} held seats; {self.held} held"
            )
        self.held -= seats

    def confirm_hold(self, seats: int) -> None:
        """Move ``seats`` from held to confirmed (payment completed)."""
        if seats < 1 or seats > self.held:
            raise InventoryError(
                f"cannot confirm {seats} held seats; {self.held} held"
            )
        self.held -= seats
        self.confirmed += seats


@dataclass
class Flight:
    """One scheduled flight with its seat inventory.

    ``seat_map`` is optional: when present, holds reserve *specific*
    seats (enabling seat-level attacks such as middle-seat hoarding)
    and must agree with ``capacity``.
    """

    flight_id: str
    airline: str
    origin: str
    destination: str
    departure_time: float
    capacity: int
    seat_map: Optional[SeatMap] = None
    inventory: SeatInventory = field(init=False)

    def __post_init__(self) -> None:
        if (
            self.seat_map is not None
            and self.seat_map.capacity != self.capacity
        ):
            raise ValueError(
                f"seat map has {self.seat_map.capacity} seats but "
                f"capacity is {self.capacity}"
            )
        self.inventory = SeatInventory(capacity=self.capacity)

    @property
    def sold_out(self) -> bool:
        """True when no seat can currently be held or bought."""
        return self.inventory.available == 0
