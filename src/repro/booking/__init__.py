"""Airline reservation substrate.

Implements the abusable booking feature set the paper's DoI case
studies target: flights with finite seat inventory
(:mod:`repro.booking.flight`), temporary holds with TTL expiry
(:mod:`repro.booking.holds`), the reservation facade and booking log
(:mod:`repro.booking.reservation`), passenger records and name
generators (:mod:`repro.booking.passengers`) and dynamic load-factor
pricing (:mod:`repro.booking.pricing`).
"""

from .flight import Flight, InventoryError, SeatInventory
from .holds import ACTIVE, CANCELLED, CONFIRMED, EXPIRED, Hold, HoldStore
from .passengers import (
    Passenger,
    edit_distance,
    gibberish_score,
    misspell,
    sample_birthdate,
    sample_genuine_party,
    sample_genuine_passenger,
    sample_gibberish_passenger,
)
from .pricing import PricingEngine
from .seatmap import (
    AISLE,
    ANY,
    MIDDLE,
    MIDDLE_BLOCK,
    PREFERENCES,
    Seat,
    SeatMap,
    SeatMapError,
    TOGETHER,
    WINDOW,
    WINDOW_AISLE,
)
from .reservation import (
    BookingRecord,
    HoldResult,
    REJECT_DEPARTED,
    REJECT_INVALID_PARTY,
    REJECT_NIP_CAP,
    REJECT_NO_INVENTORY,
    REJECT_UNKNOWN_FLIGHT,
    ReservationSystem,
)

__all__ = [
    "Flight",
    "InventoryError",
    "SeatInventory",
    "ACTIVE",
    "CANCELLED",
    "CONFIRMED",
    "EXPIRED",
    "Hold",
    "HoldStore",
    "Passenger",
    "edit_distance",
    "gibberish_score",
    "misspell",
    "sample_birthdate",
    "sample_genuine_party",
    "sample_genuine_passenger",
    "sample_gibberish_passenger",
    "PricingEngine",
    "AISLE",
    "ANY",
    "MIDDLE",
    "MIDDLE_BLOCK",
    "PREFERENCES",
    "Seat",
    "SeatMap",
    "SeatMapError",
    "TOGETHER",
    "WINDOW",
    "WINDOW_AISLE",
    "BookingRecord",
    "HoldResult",
    "REJECT_DEPARTED",
    "REJECT_INVALID_PARTY",
    "REJECT_NIP_CAP",
    "REJECT_NO_INVENTORY",
    "REJECT_UNKNOWN_FLIGHT",
    "ReservationSystem",
]
