"""Dynamic seat pricing.

Fares rise with the flight's load factor (confirmed + held seats).
Because *held* seats count, Denial-of-Inventory attackers can
manipulate prices in both directions (Section II-A: "attackers
strategically hold reservations and items at lower fares ... to force
price drops before making a legitimate purchase" — or, by hoarding,
drive prices up to resell).
"""

from __future__ import annotations

from dataclasses import dataclass

from .flight import Flight


@dataclass(frozen=True)
class PricingEngine:
    """Convex load-factor pricing: ``base * (1 + alpha * load ** beta)``.

    With the defaults, an empty flight sells at ``base_fare`` and a full
    one at ``base_fare * (1 + alpha)``; convexity (``beta > 1``) makes
    the last seats much more expensive than the first, as real revenue
    management does.
    """

    base_fare: float = 120.0
    alpha: float = 2.0
    beta: float = 2.2

    def __post_init__(self) -> None:
        if self.base_fare <= 0:
            raise ValueError(f"base_fare must be positive: {self.base_fare}")
        if self.alpha < 0 or self.beta <= 0:
            raise ValueError(
                f"invalid pricing shape: alpha={self.alpha} beta={self.beta}"
            )

    def price_at_load(self, load_factor: float) -> float:
        """Per-seat fare at a given load factor (clamped to [0, 1])."""
        load = min(max(load_factor, 0.0), 1.0)
        return self.base_fare * (1.0 + self.alpha * load ** self.beta)

    def quote(self, flight: Flight, seats: int) -> float:
        """Total fare quote for ``seats`` seats at the current load."""
        if seats < 1:
            raise ValueError(f"seats must be >= 1: {seats}")
        return self.price_at_load(flight.inventory.load_factor) * seats
