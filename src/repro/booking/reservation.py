"""The reservation system: holds, confirmation, expiry, booking records.

:class:`ReservationSystem` is the substrate the Seat Spinning case
studies run against.  It exposes the abusable feature faithfully:
anyone can hold ``nip`` seats for ``hold_ttl`` seconds with nothing but
passenger details, and the hold silently returns to inventory when it
expires — at which point an attacker can immediately re-hold it
("each new request sent as soon as the temporary hold on the previous
one expired", Section IV-A).

Every attempt, successful or rejected, produces a :class:`BookingRecord`
so detection and analysis code sees exactly what production booking logs
would contain.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..common import ClientRef
from ..sim.clock import Clock, HOUR
from ..sim.metrics import MetricsRecorder
from .flight import Flight
from .holds import ACTIVE, CANCELLED, CONFIRMED, EXPIRED, Hold, HoldStore
from .passengers import Passenger
from .pricing import PricingEngine
from .seatmap import ANY as ANY_SEAT

# Rejection codes returned by create_hold.
REJECT_UNKNOWN_FLIGHT = "unknown-flight"
REJECT_NIP_CAP = "nip-exceeds-cap"
REJECT_NO_INVENTORY = "insufficient-inventory"
REJECT_INVALID_PARTY = "invalid-party"
REJECT_DEPARTED = "flight-departed"


@dataclass(frozen=True)
class BookingRecord:
    """One booking-funnel event as it would appear in booking logs."""

    time: float
    flight_id: str
    nip: int
    outcome: str  # "held" or a rejection code
    hold_id: str
    passengers: Tuple[Passenger, ...]
    client: ClientRef
    price_quoted: float
    shadow: bool


@dataclass(frozen=True)
class HoldResult:
    """Outcome of a hold attempt."""

    ok: bool
    hold: Optional[Hold]
    error: str = ""
    price_quoted: float = 0.0


class ReservationSystem:
    """Flight inventory plus the temporary-hold feature.

    Policy knobs (``hold_ttl``, ``max_nip``) are mutable at runtime
    because mitigations change them mid-attack — that is the whole
    Case A storyline.
    """

    def __init__(
        self,
        clock: Clock,
        metrics: Optional[MetricsRecorder] = None,
        hold_ttl: float = 1.0 * HOUR,
        max_nip: int = 9,
        pricing: Optional[PricingEngine] = None,
    ) -> None:
        if hold_ttl <= 0:
            raise ValueError(f"hold_ttl must be positive: {hold_ttl}")
        if max_nip < 1:
            raise ValueError(f"max_nip must be >= 1: {max_nip}")
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRecorder()
        self.hold_ttl = hold_ttl
        self.max_nip = max_nip
        self.pricing = pricing if pricing is not None else PricingEngine()
        self.holds = HoldStore()
        self._flights: Dict[str, Flight] = {}
        self.records: List[BookingRecord] = []
        self._record_times: List[float] = []

    # -- flights ------------------------------------------------------------

    def add_flight(self, flight: Flight) -> None:
        if flight.flight_id in self._flights:
            raise ValueError(f"duplicate flight id {flight.flight_id!r}")
        self._flights[flight.flight_id] = flight

    def flight(self, flight_id: str) -> Flight:
        try:
            return self._flights[flight_id]
        except KeyError:
            raise KeyError(f"unknown flight {flight_id!r}") from None

    def flights(self) -> List[Flight]:
        return list(self._flights.values())

    def availability(self, flight_id: str) -> int:
        """Real seats currently available (after lazy expiry)."""
        self.expire_due()
        return self.flight(flight_id).inventory.available

    # -- hold lifecycle -------------------------------------------------------

    def create_hold(
        self,
        flight_id: str,
        passengers: Sequence[Passenger],
        client: ClientRef,
        shadow: bool = False,
        seat_preference: str = ANY_SEAT,
    ) -> HoldResult:
        """Attempt to hold ``len(passengers)`` seats.

        ``shadow=True`` creates a honeypot hold: the caller receives a
        normal-looking success but no real inventory moves.

        ``seat_preference`` only matters on flights with a seat map:
        the hold then reserves *specific* seats picked to match.
        """
        self.expire_due()
        now = self.clock.now
        nip = len(passengers)

        error = self._validate(flight_id, nip, shadow)
        if error:
            self._record(
                now, flight_id, nip, error, "", tuple(passengers), client,
                0.0, shadow,
            )
            self.metrics.increment("booking.holds_rejected")
            self.metrics.increment(f"booking.reject.{error}")
            return HoldResult(ok=False, hold=None, error=error)

        flight = self._flights[flight_id]
        price = self.pricing.quote(flight, nip)
        seats: Tuple = ()
        if not shadow:
            flight.inventory.take_hold(nip)
            if flight.seat_map is not None:
                picked = flight.seat_map.pick(nip, seat_preference)
                flight.seat_map.hold(picked)
                seats = tuple(picked)

        hold = Hold(
            hold_id=self.holds.new_hold_id(),
            flight_id=flight_id,
            nip=nip,
            passengers=tuple(passengers),
            client=client,
            created_at=now,
            expires_at=now + self.hold_ttl,
            price_quoted=price,
            shadow=shadow,
            seats=seats,
        )
        self.holds.add(hold)
        self._record(
            now, flight_id, nip, "held", hold.hold_id, hold.passengers,
            client, price, shadow,
        )
        self.metrics.increment("booking.holds_created")
        self.metrics.record("booking.hold_nip", now, float(nip))
        if shadow:
            self.metrics.increment("booking.shadow_holds_created")
        return HoldResult(ok=True, hold=hold, price_quoted=price)

    def _validate(self, flight_id: str, nip: int, shadow: bool) -> str:
        if nip < 1:
            return REJECT_INVALID_PARTY
        if flight_id not in self._flights:
            return REJECT_UNKNOWN_FLIGHT
        if nip > self.max_nip:
            return REJECT_NIP_CAP
        flight = self._flights[flight_id]
        if self.clock.now >= flight.departure_time:
            return REJECT_DEPARTED
        if not shadow and nip > flight.inventory.available:
            return REJECT_NO_INVENTORY
        return ""

    def confirm(self, hold_id: str) -> Hold:
        """Complete payment on an active hold (seats become confirmed)."""
        self.expire_due()
        hold = self.holds.get(hold_id)
        if not hold.is_active:
            raise ValueError(
                f"hold {hold_id} is {hold.status}; cannot confirm"
            )
        if not hold.shadow:
            flight = self._flights[hold.flight_id]
            flight.inventory.confirm_hold(hold.nip)
            if flight.seat_map is not None and hold.seats:
                flight.seat_map.confirm(hold.seats)
        self.holds.close(hold_id, CONFIRMED, self.clock.now)
        self.metrics.increment("booking.holds_confirmed")
        self.metrics.increment("booking.revenue", hold.price_quoted)
        return hold

    def cancel(self, hold_id: str) -> Hold:
        """Voluntarily release an active hold."""
        hold = self.holds.get(hold_id)
        if not hold.is_active:
            raise ValueError(f"hold {hold_id} is {hold.status}; cannot cancel")
        if not hold.shadow:
            flight = self._flights[hold.flight_id]
            flight.inventory.release_hold(hold.nip)
            if flight.seat_map is not None and hold.seats:
                flight.seat_map.release(hold.seats)
        self.holds.close(hold_id, CANCELLED, self.clock.now)
        self.metrics.increment("booking.holds_cancelled")
        return hold

    def expire_due(self) -> List[Hold]:
        """Expire overdue holds, returning seats to inventory."""
        expired = self.holds.expire_due(self.clock.now)
        for hold in expired:
            if not hold.shadow:
                flight = self._flights[hold.flight_id]
                flight.inventory.release_hold(hold.nip)
                if flight.seat_map is not None and hold.seats:
                    flight.seat_map.release(hold.seats)
            self.metrics.increment("booking.holds_expired")
        return expired

    # -- policy knobs (driven by mitigations) --------------------------------

    def set_max_nip(self, max_nip: int) -> None:
        """Apply / change the NiP cap (the Fig. 1 mitigation)."""
        if max_nip < 1:
            raise ValueError(f"max_nip must be >= 1: {max_nip}")
        self.max_nip = max_nip
        self.metrics.record(
            "booking.max_nip_changes", self.clock.now, float(max_nip)
        )

    def set_hold_ttl(self, hold_ttl: float) -> None:
        """Change the hold TTL for *future* holds."""
        if hold_ttl <= 0:
            raise ValueError(f"hold_ttl must be positive: {hold_ttl}")
        self.hold_ttl = hold_ttl

    # -- internals -------------------------------------------------------------

    def _record(
        self,
        now: float,
        flight_id: str,
        nip: int,
        outcome: str,
        hold_id: str,
        passengers: Tuple[Passenger, ...],
        client: ClientRef,
        price: float,
        shadow: bool,
    ) -> None:
        self._record_times.append(now)
        self.records.append(
            BookingRecord(
                time=now,
                flight_id=flight_id,
                nip=nip,
                outcome=outcome,
                hold_id=hold_id,
                passengers=passengers,
                client=client,
                price_quoted=price,
                shadow=shadow,
            )
        )

    def held_records(self) -> List[BookingRecord]:
        """Only the attempts that produced a hold (what Fig. 1 counts)."""
        return [record for record in self.records if record.outcome == "held"]

    def records_since(self, start: float) -> List[BookingRecord]:
        """Records with ``time >= start`` (binary search; records are
        appended in time order so repeated window scans stay cheap)."""
        index = bisect.bisect_left(self._record_times, start)
        return self.records[index:]
