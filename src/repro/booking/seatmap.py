"""Seat maps: per-seat inventory for seat-level Seat Spinning.

The paper's manual case study traces back to a publicised trick
("'Genius' plane hack allows passengers to avoid dreaded middle seat
without paying", cited as [11]): hold the *middle seat* of your row so
nobody can buy it, then let the hold lapse at departure.  Modelling
that requires seats, not just counts.

:class:`SeatMap` tracks individual seats in a single-aisle 3-3 cabin
(letters ABC-DEF: A/F window, C/D aisle, B/E middle) with the same
available/held/confirmed lifecycle as :class:`~repro.booking.flight.
SeatInventory`, plus preference-driven seat picking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

# Seat position kinds.
WINDOW = "window"
MIDDLE = "middle"
AISLE = "aisle"

#: Letter -> position kind in the default 3-3 layout.
_POSITION_BY_LETTER: Dict[str, str] = {
    "A": WINDOW,
    "B": MIDDLE,
    "C": AISLE,
    "D": AISLE,
    "E": MIDDLE,
    "F": WINDOW,
}

# Seat states.
AVAILABLE = "available"
HELD = "held"
CONFIRMED = "confirmed"

# Picking preferences.
ANY = "any"
WINDOW_AISLE = "window-aisle"   # what normal passengers want
MIDDLE_BLOCK = "middle-block"   # the middle-seat hoarding trick
TOGETHER = "together"           # adjacent seats in one row

PREFERENCES = (ANY, WINDOW_AISLE, MIDDLE_BLOCK, TOGETHER)


@dataclass(frozen=True)
class Seat:
    """One physical seat."""

    row: int
    letter: str

    @property
    def label(self) -> str:
        return f"{self.row}{self.letter}"

    @property
    def position(self) -> str:
        return _POSITION_BY_LETTER[self.letter]


class SeatMapError(Exception):
    """Raised on impossible seat transitions (a caller bug)."""


class SeatMap:
    """Per-seat state for one cabin."""

    def __init__(self, rows: int) -> None:
        if rows < 1:
            raise ValueError(f"rows must be >= 1: {rows}")
        self.rows = rows
        self._state: Dict[Seat, str] = {}
        for row in range(1, rows + 1):
            for letter in "ABCDEF":
                self._state[Seat(row, letter)] = AVAILABLE

    @property
    def capacity(self) -> int:
        return len(self._state)

    def state_of(self, seat: Seat) -> str:
        try:
            return self._state[seat]
        except KeyError:
            raise SeatMapError(f"no such seat {seat.label}") from None

    def seats_in_state(self, state: str) -> List[Seat]:
        return sorted(
            (seat for seat, s in self._state.items() if s == state),
            key=lambda seat: (seat.row, seat.letter),
        )

    def available_count(self) -> int:
        return sum(1 for s in self._state.values() if s == AVAILABLE)

    # -- picking ------------------------------------------------------------

    def pick(self, count: int, preference: str = ANY) -> List[Seat]:
        """Choose ``count`` available seats honouring ``preference``.

        Picking is deterministic (front-of-cabin first) so simulations
        stay reproducible.  When the preference cannot be fully
        satisfied the pick falls back to any available seats — real
        booking engines do the same rather than fail the sale.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1: {count}")
        if preference not in PREFERENCES:
            raise ValueError(
                f"unknown preference {preference!r}; expected {PREFERENCES}"
            )
        available = self.seats_in_state(AVAILABLE)
        if count > len(available):
            raise SeatMapError(
                f"cannot pick {count} seats; {len(available)} available"
            )
        if preference == TOGETHER:
            block = self._adjacent_block(available, count)
            if block is not None:
                return block
            preference = ANY  # fall back: no adjacent block left
        ordering = {
            ANY: (WINDOW, AISLE, MIDDLE),
            WINDOW_AISLE: (WINDOW, AISLE, MIDDLE),
            MIDDLE_BLOCK: (MIDDLE, WINDOW, AISLE),
        }[preference]
        ranked = sorted(
            available,
            key=lambda seat: (
                ordering.index(seat.position),
                seat.row,
                seat.letter,
            ),
        )
        return ranked[:count]

    @staticmethod
    def _adjacent_block(
        available: Sequence[Seat], count: int
    ) -> Optional[List[Seat]]:
        """First run of ``count`` adjacent same-row seats, if any."""
        by_row: Dict[int, List[Seat]] = {}
        for seat in available:
            by_row.setdefault(seat.row, []).append(seat)
        for row in sorted(by_row):
            seats = sorted(by_row[row], key=lambda s: s.letter)
            letters = [s.letter for s in seats]
            for start in range(len(seats) - count + 1):
                run = letters[start:start + count]
                expected = [
                    chr(ord(run[0]) + offset) for offset in range(count)
                ]
                if run == expected:
                    return seats[start:start + count]
        return None

    # -- lifecycle ------------------------------------------------------------

    def hold(self, seats: Sequence[Seat]) -> None:
        for seat in seats:
            if self.state_of(seat) != AVAILABLE:
                raise SeatMapError(
                    f"seat {seat.label} is {self.state_of(seat)}"
                )
        for seat in seats:
            self._state[seat] = HELD

    def release(self, seats: Sequence[Seat]) -> None:
        for seat in seats:
            if self.state_of(seat) != HELD:
                raise SeatMapError(
                    f"cannot release {seat.label}: {self.state_of(seat)}"
                )
        for seat in seats:
            self._state[seat] = AVAILABLE

    def confirm(self, seats: Sequence[Seat]) -> None:
        for seat in seats:
            if self.state_of(seat) != HELD:
                raise SeatMapError(
                    f"cannot confirm {seat.label}: {self.state_of(seat)}"
                )
        for seat in seats:
            self._state[seat] = CONFIRMED

    # -- analysis -------------------------------------------------------------

    def position_share(
        self, seats: Sequence[Seat], position: str
    ) -> float:
        """Fraction of ``seats`` in the given position kind."""
        if not seats:
            return 0.0
        return sum(1 for s in seats if s.position == position) / len(seats)
