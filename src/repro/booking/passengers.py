"""Passenger records and name generation.

Seat holds require passenger details (name, surname, birthdate, email —
Section IV-B), and the paper's detection heuristics key on exactly those
details: gibberish names, repeated names with rotating birthdates, and
fixed name sets re-ordered across bookings with occasional misspellings.

This module provides the :class:`Passenger` record plus generators for
each style of passenger data observed in the paper:

* :func:`sample_genuine_passenger` — plausible names from a name pool,
* :func:`sample_gibberish_passenger` — random keyboard-mash entries,
* :func:`misspell` — single-character typos used by manual attackers.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass
from typing import List, Optional, Tuple

FIRST_NAMES = [
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
    "Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
    "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Luca",
    "Giulia", "Marco", "Sofia", "Ahmed", "Fatima", "Wei", "Mei", "Hiroshi",
    "Yuki", "Pierre", "Camille", "Hans", "Anna", "Carlos", "Lucia", "Ivan",
    "Olga", "Raj", "Priya", "Chen", "Li", "Omar", "Leila", "Kofi", "Ama",
    "Daniel", "Laura", "Matthew", "Emily", "Anthony", "Emma", "Mark",
    "Olivia", "Steven", "Sophia", "Andrew", "Isabella", "Paul", "Mia",
    "Joshua", "Charlotte", "Kenneth", "Amelia", "Kevin", "Harper", "Brian",
    "Evelyn", "George", "Abigail", "Timothy", "Ella", "Ronald", "Grace",
    "Jason", "Chloe", "Edward", "Victoria", "Jeffrey", "Lily", "Ryan",
    "Hannah", "Jacob", "Zoe", "Gary", "Nora", "Nicholas", "Aria", "Eric",
    "Layla", "Jonathan", "Nina", "Stephen", "Elena", "Larry", "Clara",
    "Justin", "Alice", "Scott", "Julia", "Brandon", "Eva", "Benjamin",
    "Ruby", "Samuel", "Stella", "Gregory", "Ines", "Frank", "Lea",
    "Alexander", "Maya", "Patrick", "Sara", "Raymond", "Irene", "Jack",
    "Nadia", "Dennis", "Amira", "Jerry", "Yasmin", "Tyler", "Aisha",
    "Aaron", "Zara", "Jose", "Elif", "Adam", "Selin", "Nathan", "Mariam",
    "Henry", "Rania", "Douglas", "Dana", "Zachary", "Lina", "Peter",
    "Hana", "Kyle", "Noor", "Ethan", "Salma", "Walter", "Dalia",
]

LAST_NAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Rossi", "Ferrari", "Esposito",
    "Bianchi", "Mueller", "Schmidt", "Schneider", "Fischer", "Dubois",
    "Martin", "Bernard", "Petit", "Tanaka", "Suzuki", "Takahashi", "Wang",
    "Zhang", "Liu", "Chen", "Singh", "Kumar", "Patel", "Hassan", "Ali",
    "Ibrahim", "Okafor", "Mensah", "Silva", "Santos", "Oliveira", "Ivanov",
    "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson", "Taylor",
    "Moore", "Jackson", "White", "Harris", "Thompson", "Lewis", "Clark",
    "Robinson", "Walker", "Young", "Allen", "King", "Wright", "Torres",
    "Nguyen", "Hill", "Flores", "Green", "Adams", "Nelson", "Baker",
    "Hall", "Rivera", "Campbell", "Mitchell", "Carter", "Roberts",
    "Gomez", "Phillips", "Evans", "Turner", "Diaz", "Parker", "Cruz",
    "Edwards", "Collins", "Reyes", "Stewart", "Morris", "Morales",
    "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan", "Cooper",
    "Peterson", "Bailey", "Reed", "Kelly", "Howard", "Ramos", "Kim",
    "Cox", "Ward", "Richardson", "Watson", "Brooks", "Chavez", "Wood",
    "James", "Bennett", "Gray", "Mendoza", "Ruiz", "Hughes", "Price",
    "Alvarez", "Castillo", "Sanders", "Patil", "Myers", "Long", "Ross",
    "Foster", "Jimenez", "Weber", "Wagner", "Becker", "Hoffmann",
    "Keller", "Richter", "Klein", "Wolf", "Neumann", "Braun", "Zimmer",
]

EMAIL_DOMAINS = [
    "gmail.com", "yahoo.com", "outlook.com", "hotmail.com", "icloud.com",
    "mail.com", "proton.me",
]


@dataclass(frozen=True)
class Passenger:
    """One passenger on a reservation.

    ``birthdate`` is an ISO ``YYYY-MM-DD`` string: detection heuristics
    treat it as an opaque rotating token, so no date arithmetic is
    needed.
    """

    first_name: str
    last_name: str
    birthdate: str
    email: str

    @property
    def full_name(self) -> str:
        return f"{self.first_name} {self.last_name}"

    @property
    def name_key(self) -> Tuple[str, str]:
        """Case-folded (first, last) pair used by detection heuristics."""
        return (self.first_name.lower(), self.last_name.lower())


def sample_birthdate(rng: random.Random) -> str:
    """A plausible adult birthdate."""
    year = rng.randint(1950, 2006)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return f"{year:04d}-{month:02d}-{day:02d}"


def email_for(first_name: str, last_name: str, rng: random.Random) -> str:
    domain = rng.choice(EMAIL_DOMAINS)
    separator = rng.choice([".", "_", ""])
    suffix = str(rng.randint(1, 999)) if rng.random() < 0.4 else ""
    return (
        f"{first_name.lower()}{separator}{last_name.lower()}{suffix}@{domain}"
    )


def sample_genuine_passenger(rng: random.Random) -> Passenger:
    """A passenger with a plausible name drawn from the name pools."""
    first = rng.choice(FIRST_NAMES)
    last = rng.choice(LAST_NAMES)
    return Passenger(
        first_name=first,
        last_name=last,
        birthdate=sample_birthdate(rng),
        email=email_for(first, last, rng),
    )


def sample_genuine_party(rng: random.Random, size: int) -> List[Passenger]:
    """A party of ``size`` genuine passengers, usually sharing a surname.

    Real multi-passenger bookings are dominated by families and couples,
    so with high probability everyone shares the lead passenger's
    surname.
    """
    if size < 1:
        raise ValueError(f"party size must be >= 1: {size}")
    lead = sample_genuine_passenger(rng)
    party = [lead]
    shared_surname = rng.random() < 0.7
    for _ in range(size - 1):
        member = sample_genuine_passenger(rng)
        if shared_surname:
            member = Passenger(
                first_name=member.first_name,
                last_name=lead.last_name,
                birthdate=member.birthdate,
                email=member.email,
            )
        party.append(member)
    return party


def _gibberish_token(rng: random.Random, low: int = 5, high: int = 9) -> str:
    length = rng.randint(low, high)
    return "".join(rng.choice(string.ascii_lowercase) for _ in range(length))


def sample_gibberish_passenger(rng: random.Random) -> Passenger:
    """Random keyboard-mash passenger data.

    Matches the paper's example of entirely random entries
    ("Name: affjgdui, Surname: ddfjrei, Email: ddfjrei@...").
    """
    first = _gibberish_token(rng)
    last = _gibberish_token(rng)
    return Passenger(
        first_name=first,
        last_name=last,
        birthdate=sample_birthdate(rng),
        email=f"{last}@{rng.choice(EMAIL_DOMAINS)}",
    )


def misspell(name: str, rng: random.Random) -> str:
    """Introduce one human-style typo: swap, drop or double a character.

    Used by the manual seat spinner (Section IV-B: "few entries
    contained slight misspellings of names and surnames, suggesting
    manual input").
    """
    if len(name) < 3:
        return name
    kind = rng.choice(["swap", "drop", "double"])
    position = rng.randint(1, len(name) - 2)
    if kind == "swap":
        chars = list(name)
        chars[position], chars[position + 1] = (
            chars[position + 1],
            chars[position],
        )
        return "".join(chars)
    if kind == "drop":
        return name[:position] + name[position + 1:]
    return name[:position] + name[position] + name[position:]


def _name_trigrams() -> frozenset:
    """Trigram inventory of plausible names (built once at import).

    Serves as the "dictionary of name-like letter sequences" a real
    fraud team would derive from historical passenger data.
    """
    trigrams = set()
    for name in FIRST_NAMES + LAST_NAMES:
        lowered = f"^{name.lower()}$"
        for i in range(len(lowered) - 2):
            trigrams.add(lowered[i:i + 3])
    return frozenset(trigrams)


_NAME_TRIGRAMS = _name_trigrams()


def gibberish_score(token: str) -> float:
    """Heuristic [0, 1] score of how keyboard-mash-like a token looks.

    Blends three signals: deviation from the vowel ratio of real names,
    long consonant runs, and the fraction of the token's trigrams never
    seen in plausible names.  Genuine names score near 0; uniform
    random lowercase strings score well above 0.35; a misspelled real
    name lands in between (a couple of unseen trigrams only).
    """
    cleaned = "".join(ch for ch in token.lower() if ch.isalpha())
    if len(cleaned) < 3:
        return 0.0
    vowels = sum(1 for ch in cleaned if ch in "aeiouy")
    vowel_ratio = vowels / len(cleaned)
    # Penalty for deviating from the ~0.42 vowel ratio of real names.
    vowel_penalty = min(abs(vowel_ratio - 0.42) / 0.42, 1.0)
    longest_consonant_run = 0
    current = 0
    for ch in cleaned:
        if ch in "aeiouy":
            current = 0
        else:
            current += 1
            longest_consonant_run = max(longest_consonant_run, current)
    run_penalty = min(max(longest_consonant_run - 2, 0) / 3.0, 1.0)
    wrapped = f"^{cleaned}$"
    token_trigrams = [
        wrapped[i:i + 3] for i in range(len(wrapped) - 2)
    ]
    unseen = sum(1 for tri in token_trigrams if tri not in _NAME_TRIGRAMS)
    trigram_penalty = unseen / len(token_trigrams)
    return (
        0.25 * vowel_penalty
        + 0.25 * run_penalty
        + 0.5 * trigram_penalty
    )


def edit_distance(a: str, b: str) -> int:
    """Levenshtein distance (iterative two-row implementation)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(
                    previous[j] + 1,       # deletion
                    current[j - 1] + 1,    # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]
