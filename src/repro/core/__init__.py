"""The paper's contribution area: detection and mitigation of
functional abuse.

* :mod:`repro.core.detection` — behaviour-based, knowledge-based,
  anomaly and passenger-detail detectors,
* :mod:`repro.core.mitigation` — deployable countermeasures and the
  closed-loop mitigation controller.
"""

from . import detection, mitigation

__all__ = ["detection", "mitigation"]
