"""Session feature extraction for behaviour-based detection.

Turns a reconstructed :class:`~repro.web.logs.Session` into the numeric
feature vector the behaviour-based literature uses (Section III-A):
volume metrics, HTTP-method mix, endpoint mix, timing statistics and
error rates.  The same vector feeds the threshold detector, the
logistic-regression classifier and the clustering detector, which is
what makes the E6 comparison apples-to-apples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from ...web.logs import Session
from ...web.request import (
    BOARDING_PASS_SMS,
    FLIGHT_DETAILS,
    HOLD,
    OTP_LOGIN,
    PAY,
    SEARCH,
    TRAP,
)

#: Order of features in the vector (kept stable for trained models).
FEATURE_NAMES: List[str] = [
    "request_count",
    "duration_minutes",
    "requests_per_minute",
    "get_fraction",
    "post_fraction",
    "unique_paths",
    "search_count",
    "details_count",
    "hold_count",
    "pay_count",
    "sms_request_count",
    "hold_to_pay_gap",        # holds minus pays (abandonment signal)
    "mean_interrequest",
    "cv_interrequest",        # coefficient of variation of gaps
    "error_fraction",         # non-200 responses
    "trap_hits",              # visits to the hidden trap endpoint
]


@dataclass(frozen=True)
class SessionFeatures:
    """Named feature bundle for one session."""

    session_id: str
    request_count: int
    duration_minutes: float
    requests_per_minute: float
    get_fraction: float
    post_fraction: float
    unique_paths: int
    search_count: int
    details_count: int
    hold_count: int
    pay_count: int
    sms_request_count: int
    hold_to_pay_gap: int
    mean_interrequest: float
    cv_interrequest: float
    error_fraction: float
    trap_hits: int

    def vector(self) -> np.ndarray:
        """The feature vector in :data:`FEATURE_NAMES` order."""
        return np.array(
            [getattr(self, name) for name in FEATURE_NAMES], dtype=float
        )


def extract_features(session: Session) -> SessionFeatures:
    """Compute the behaviour feature bundle for one session.

    A zero-entry session (the sessionizer can surface one at an
    eviction boundary) yields the all-zeros bundle instead of dividing
    by its zero request count.
    """
    entries = session.entries
    count = len(entries)
    if count == 0:
        return SessionFeatures(
            session_id=session.session_id,
            request_count=0,
            duration_minutes=0.0,
            requests_per_minute=0.0,
            get_fraction=0.0,
            post_fraction=0.0,
            unique_paths=0,
            search_count=0,
            details_count=0,
            hold_count=0,
            pay_count=0,
            sms_request_count=0,
            hold_to_pay_gap=0,
            mean_interrequest=0.0,
            cv_interrequest=0.0,
            error_fraction=0.0,
            trap_hits=0,
        )
    duration_min = session.duration / 60.0
    # A single-request session has zero duration; rate uses a 1-minute
    # floor so it stays finite and comparable.
    rate = count / max(duration_min, 1.0)

    gets = sum(1 for e in entries if e.method == "GET")
    posts = sum(1 for e in entries if e.method == "POST")
    paths = {e.path for e in entries}
    by_path = {
        SEARCH: 0,
        FLIGHT_DETAILS: 0,
        HOLD: 0,
        PAY: 0,
        OTP_LOGIN: 0,
        BOARDING_PASS_SMS: 0,
        TRAP: 0,
    }
    for entry in entries:
        if entry.path in by_path:
            by_path[entry.path] += 1
    errors = sum(1 for e in entries if e.status != 200)

    times = [e.time for e in entries]
    gaps = [later - earlier for earlier, later in zip(times, times[1:])]
    if gaps:
        mean_gap = sum(gaps) / len(gaps)
        # Squared deviation via multiplication, not ``** 2``: CPython
        # lowers float ``**`` to libm pow, which rounds differently
        # from multiply for ~0.1% of inputs on this platform — and the
        # columnar fast path (NumPy squares via multiply) must be
        # bit-identical to this reference.
        deviations = [g - mean_gap for g in gaps]
        variance = sum(d * d for d in deviations) / len(gaps)
        cv = math.sqrt(variance) / mean_gap if mean_gap > 0 else 0.0
    else:
        mean_gap = 0.0
        cv = 0.0

    sms_requests = by_path[OTP_LOGIN] + by_path[BOARDING_PASS_SMS]
    return SessionFeatures(
        session_id=session.session_id,
        request_count=count,
        duration_minutes=duration_min,
        requests_per_minute=rate,
        get_fraction=gets / count,
        post_fraction=posts / count,
        unique_paths=len(paths),
        search_count=by_path[SEARCH],
        details_count=by_path[FLIGHT_DETAILS],
        hold_count=by_path[HOLD],
        pay_count=by_path[PAY],
        sms_request_count=sms_requests,
        hold_to_pay_gap=by_path[HOLD] - by_path[PAY],
        mean_interrequest=mean_gap,
        cv_interrequest=cv,
        error_fraction=errors / count,
        trap_hits=by_path[TRAP],
    )


def feature_matrix(sessions: List[Session]) -> np.ndarray:
    """Stack per-session vectors into an ``(n, d)`` matrix.

    The output is preallocated and filled row by row — ``np.vstack``
    over n small vectors allocated the list, the vectors *and* the
    result before copying everything once more.
    """
    matrix = np.zeros((len(sessions), len(FEATURE_NAMES)))
    for row, session in enumerate(sessions):
        matrix[row] = extract_features(session).vector()
    return matrix


def feature_matrix_columnar(log, idle_gap=None):
    """``(session_ids, matrix)`` straight from a log's columns.

    The columnar fast path: vectorized sessionization + group-by
    feature aggregation via :class:`~repro.core.detection.
    session_index.SessionIndex`, bit-identical to
    ``feature_matrix(sessionize(log, idle_gap))`` without building a
    single ``LogEntry`` or ``Session``.  Callers that need more than
    the matrix (detector verdicts, sequences, Session objects) should
    build the :class:`SessionIndex` themselves and share it.
    """
    # Local import: session_index imports FEATURE_NAMES from here.
    from ...web.logs import DEFAULT_IDLE_GAP
    from .session_index import SessionIndex

    index = SessionIndex.from_log(
        log, idle_gap=DEFAULT_IDLE_GAP if idle_gap is None else idle_gap
    )
    return index.session_ids, index.matrix
