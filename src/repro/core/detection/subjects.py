"""Verdict subject-id namespaces.

Fusion treats subject ids as opaque, so detectors that judge different
things — sessions, fingerprint entities, phone numbers — need disjoint
namespaces to never collide inside one fusion pass.  Sessions use their
raw session id; entity detectors prefix fingerprint ids with ``fp:``
(the only namespace :class:`~repro.core.mitigation.online.
OnlineVerdictSink` acts on).

Historically these lived in :mod:`repro.stream.adapters`; they moved
here so batch detector families in :mod:`repro.core.detection` can emit
entity verdicts without importing the streaming layer (which imports
this package back).
"""

from __future__ import annotations

#: Namespace prefix for fingerprint-entity verdict subjects.
FP_SUBJECT_PREFIX = "fp:"


def entity_subject(fingerprint_id: str) -> str:
    """Fusion subject id for a fingerprint entity."""
    return f"{FP_SUBJECT_PREFIX}{fingerprint_id}"
