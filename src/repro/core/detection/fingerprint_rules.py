"""Knowledge-based (fingerprint) detection.

The paper's Section III-B pipeline: collect client fingerprints, flag
automation artifacts (``navigator.webdriver``, headless UA, empty
plugin lists) and cross-attribute inconsistencies (Safari on Windows,
touch on desktop, ...), and turn confirmed-bad fingerprints into edge
block rules.

Its documented weakness — the reason the paper's attacks succeed — is
also modelled: a mimicry-level fingerprint trips neither check, and a
rotating attacker invalidates any fingerprint-id block within hours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from ...identity.fingerprint import (
    Fingerprint,
    automation_artifacts,
    consistency_check,
)
from ...web.request import Request
from .verdict import Verdict


@dataclass(frozen=True)
class FingerprintWeights:
    """Scoring weights for the two signal classes."""

    artifact_weight: float = 0.6
    inconsistency_weight: float = 0.35
    threshold: float = 0.3


class FingerprintDetector:
    """Scores individual fingerprints on artifacts + inconsistencies.

    Subjects are fingerprint ids.
    """

    name = "fingerprint-rules"

    def __init__(
        self, weights: FingerprintWeights = FingerprintWeights()
    ) -> None:
        self.weights = weights

    def judge(self, fingerprint: Fingerprint) -> Verdict:
        artifacts = automation_artifacts(fingerprint)
        inconsistencies = consistency_check(fingerprint)
        score = min(
            len(artifacts) * self.weights.artifact_weight
            + len(inconsistencies) * self.weights.inconsistency_weight,
            1.0,
        )
        return Verdict(
            subject_id=fingerprint.fingerprint_id,
            detector=self.name,
            score=score,
            is_bot=score >= self.weights.threshold,
            reasons=tuple(artifacts) + tuple(inconsistencies),
        )

    def judge_all(
        self, fingerprints: Iterable[Fingerprint]
    ) -> List[Verdict]:
        return [self.judge(fingerprint) for fingerprint in fingerprints]

    def flagged_ids(
        self, fingerprints_seen: Dict[str, Fingerprint]
    ) -> List[str]:
        """Fingerprint ids (from an edge collection) judged as bots."""
        return [
            fingerprint_id
            for fingerprint_id, fingerprint in fingerprints_seen.items()
            if self.judge(fingerprint).is_bot
        ]


def block_by_fingerprint_id(
    fingerprint_id: str,
) -> Callable[[Request], bool]:
    """Edge predicate blocking one exact fingerprint id.

    The narrowest possible rule — and the one a rotating attacker
    escapes the moment they re-forge (the 5.3 h effectiveness window
    measured in Case A).
    """

    def predicate(request: Request) -> bool:
        return request.client.fingerprint_id == fingerprint_id

    return predicate


def block_by_attribute_combo(
    reference: Fingerprint,
    attributes: Optional[List[str]] = None,
) -> Callable[[Request], bool]:
    """Edge predicate blocking fingerprints matching a salient attribute
    combination of ``reference``.

    Broader than an exact-id block — survives rotations that only
    change minor attributes — at the price of potential collateral
    damage on genuine users sharing the combination.
    """
    selected = attributes or [
        "browser",
        "os",
        "screen_width",
        "screen_height",
        "canvas_hash",
    ]
    expected = {name: getattr(reference, name) for name in selected}

    def predicate(request: Request) -> bool:
        fingerprint = request.fingerprint
        if fingerprint is None:
            return False
        return all(
            getattr(fingerprint, name) == value
            for name, value in expected.items()
        )

    return predicate


def block_by_ip(ip_address: str) -> Callable[[Request], bool]:
    """Edge predicate blocking one exact IP address."""

    def predicate(request: Request) -> bool:
        return request.client.ip_address == ip_address

    return predicate


def block_by_booking_ref(booking_ref: str) -> Callable[[Request], bool]:
    """Edge predicate blocking requests that cite one booking reference.

    The anti-rotation block for SMS pumping: the attacker can swap
    fingerprints and exits at will, but the booking references that
    anchor the campaign are finite and cannot be re-forged without
    buying more tickets.
    """

    def predicate(request: Request) -> bool:
        return request.params.get("booking_ref") == booking_ref

    return predicate


def block_datacenter_asns(asns: Iterable[int]) -> Callable[[Request], bool]:
    """Edge predicate blocking non-residential clients (IP-intel rule)."""
    del asns  # reserved for finer-grained variants

    def predicate(request: Request) -> bool:
        return not request.client.ip_residential

    return predicate
