"""Linking rotating identities back into entities.

Fingerprint rotation defeats per-fingerprint verdicts (Section III-B),
but rotation cannot scrub *everything*: booking references, passenger
names and campaign targets persist across identity swaps.  This module
clusters records that share those stable side-channels using a
union-find, then measures each cluster's identity churn — which is how
the Case A analysis recovers the paper's "rotated ... within an average
of 5.3 hours" number from raw logs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

from ...booking.reservation import BookingRecord
from ...graph.unionfind import UnionFind
from ...sms.gateway import SmsRecord

__all__ = [
    "LinkedEntity",
    "UnionFind",  # re-exported for compatibility; lives in repro.graph
    "link_booking_records",
    "link_sms_records",
]


@dataclass(frozen=True)
class LinkedEntity:
    """One recovered entity: records linked by stable side-channels."""

    record_indices: Tuple[int, ...]
    distinct_fingerprints: int
    distinct_ips: int
    first_seen: float
    last_seen: float

    @property
    def record_count(self) -> int:
        return len(self.record_indices)

    @property
    def span(self) -> float:
        return self.last_seen - self.first_seen

    @property
    def rotates_identity(self) -> bool:
        """More than one fingerprint for one logical entity."""
        return self.distinct_fingerprints > 1

    @property
    def mean_rotation_interval(self) -> float:
        """Estimated time between fingerprint rotations (the 5.3 h
        statistic).  Infinity when no rotation was observed."""
        if self.distinct_fingerprints <= 1:
            return float("inf")
        return self.span / (self.distinct_fingerprints - 1)


def _link(
    items: Sequence,
    key_sets: Sequence[Sequence[Hashable]],
    times: Sequence[float],
    fingerprints: Sequence[str],
    ips: Sequence[str],
    min_cluster: int,
) -> List[LinkedEntity]:
    """Generic linker: union records sharing any key; summarise groups."""
    union = UnionFind(len(items))
    first_with_key: Dict[Hashable, int] = {}
    for index, keys in enumerate(key_sets):
        for key in keys:
            if key in first_with_key:
                union.union(first_with_key[key], index)
            else:
                first_with_key[key] = index
    entities = []
    for group in union.groups():
        if len(group) < min_cluster:
            continue
        group_times = [times[i] for i in group]
        entities.append(
            LinkedEntity(
                record_indices=tuple(group),
                distinct_fingerprints=len({fingerprints[i] for i in group}),
                distinct_ips=len({ips[i] for i in group}),
                first_seen=min(group_times),
                last_seen=max(group_times),
            )
        )
    entities.sort(key=lambda e: -e.record_count)
    return entities


def link_booking_records(
    records: Sequence[BookingRecord],
    min_cluster: int = 3,
    min_name_repeats: int = 2,
) -> List[LinkedEntity]:
    """Cluster booking records into entities.

    Records are linked when they share a fingerprint id, an IP address,
    or a passenger name that recurs across at least
    ``min_name_repeats`` bookings (one-off shared names — common
    surnames on different flights — never link on their own because the
    *pair* (first, last) must recur in full).
    """
    name_booking_count: Dict[Tuple[str, str], int] = defaultdict(int)
    for record in records:
        for key in {p.name_key for p in record.passengers}:
            name_booking_count[key] += 1

    key_sets: List[List[Hashable]] = []
    for record in records:
        keys: List[Hashable] = [
            ("fp", record.client.fingerprint_id),
            ("ip", record.client.ip_address),
        ]
        for passenger in record.passengers:
            if name_booking_count[passenger.name_key] >= min_name_repeats:
                keys.append(("name", passenger.name_key))
        key_sets.append(keys)

    return _link(
        records,
        key_sets,
        [record.time for record in records],
        [record.client.fingerprint_id for record in records],
        [record.client.ip_address for record in records],
        min_cluster,
    )


def link_sms_records(
    records: Sequence[SmsRecord],
    min_cluster: int = 3,
) -> List[LinkedEntity]:
    """Cluster SMS-send records into entities.

    Links on booking reference (the side-channel the Case C attacker
    could not rotate: a handful of purchased tickets anchor thousands
    of sends), fingerprint id and IP address.
    """
    key_sets: List[List[Hashable]] = []
    for record in records:
        keys: List[Hashable] = [
            ("fp", record.client.fingerprint_id),
            ("ip", record.client.ip_address),
        ]
        if record.booking_ref:
            keys.append(("ref", record.booking_ref))
        key_sets.append(keys)

    return _link(
        records,
        key_sets,
        [record.time for record in records],
        [record.client.fingerprint_id for record in records],
        [record.client.ip_address for record in records],
        min_cluster,
    )
