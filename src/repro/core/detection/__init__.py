"""Detection core: every signal family the paper discusses.

* behaviour-based — :mod:`~repro.core.detection.features`,
  :mod:`~repro.core.detection.volume`,
  :mod:`~repro.core.detection.classifier`,
  :mod:`~repro.core.detection.clustering`;
* knowledge-based — :mod:`~repro.core.detection.fingerprint_rules`;
* identity linking — :mod:`~repro.core.detection.rotation`;
* statistical anomaly — :mod:`~repro.core.detection.anomaly`;
* passenger-detail heuristics —
  :mod:`~repro.core.detection.passenger_details`.
"""

from .anomaly import (
    CountrySurge,
    EwmaMonitor,
    NipAnomaly,
    NipDistributionMonitor,
    SmsSurgeMonitor,
    chi_square_sf,
    jensen_shannon,
    regularized_gamma_q,
)
from .classifier import LogisticSessionClassifier, TrainingReport
from .clustering import ClusteringConfig, ClusteringDetector, kmeans
from .features import (
    FEATURE_NAMES,
    SessionFeatures,
    extract_features,
    feature_matrix,
)
from .fingerprint_rules import (
    FingerprintDetector,
    FingerprintWeights,
    block_by_attribute_combo,
    block_by_fingerprint_id,
    block_by_ip,
    block_datacenter_asns,
)
from .fusion import DEFAULT_WEIGHTS, FusionDetector
from .geo_velocity import GeoVelocityConfig, GeoVelocityDetector
from .seats import SeatHoardingConfig, SeatHoardingDetector
from .navigation import (
    NavigationDetector,
    NavigationDetectorConfig,
    NavigationModel,
    session_path,
)
from .passenger_details import (
    AUTOMATED_HINT,
    AnalyzerConfig,
    BIRTHDATE_ROTATION,
    EITHER_HINT,
    GIBBERISH_NAMES,
    MANUAL_HINT,
    MISSPELLING_CLUSTER,
    NAME_SET_PERMUTATION,
    PassengerDetailAnalyzer,
    PassengerFinding,
    REPEATED_NAME,
)
from .rotation import (
    LinkedEntity,
    UnionFind,
    link_booking_records,
    link_sms_records,
)
from .verdict import Verdict
from .volume import VolumeDetector, VolumeThresholds

__all__ = [
    "CountrySurge",
    "EwmaMonitor",
    "NipAnomaly",
    "NipDistributionMonitor",
    "SmsSurgeMonitor",
    "chi_square_sf",
    "jensen_shannon",
    "regularized_gamma_q",
    "LogisticSessionClassifier",
    "TrainingReport",
    "ClusteringConfig",
    "ClusteringDetector",
    "kmeans",
    "FEATURE_NAMES",
    "SessionFeatures",
    "extract_features",
    "feature_matrix",
    "DEFAULT_WEIGHTS",
    "FusionDetector",
    "GeoVelocityConfig",
    "GeoVelocityDetector",
    "SeatHoardingConfig",
    "SeatHoardingDetector",
    "NavigationDetector",
    "NavigationDetectorConfig",
    "NavigationModel",
    "session_path",
    "FingerprintDetector",
    "FingerprintWeights",
    "block_by_attribute_combo",
    "block_by_fingerprint_id",
    "block_by_ip",
    "block_datacenter_asns",
    "AUTOMATED_HINT",
    "AnalyzerConfig",
    "BIRTHDATE_ROTATION",
    "EITHER_HINT",
    "GIBBERISH_NAMES",
    "MANUAL_HINT",
    "MISSPELLING_CLUSTER",
    "NAME_SET_PERMUTATION",
    "PassengerDetailAnalyzer",
    "PassengerFinding",
    "REPEATED_NAME",
    "LinkedEntity",
    "UnionFind",
    "link_booking_records",
    "link_sms_records",
    "Verdict",
    "VolumeDetector",
    "VolumeThresholds",
]
