"""Passenger-detail heuristics (the Section IV-B detectors).

The signals that actually isolated the paper's Seat Spinning attacks —
automated *and* manual — live in the passenger data itself:

* **gibberish names** — random keyboard-mash entries,
* **repeated names** — the same (first, last) pair across many
  bookings,
* **birthdate rotation** — a fixed name whose birthdate changes
  systematically (the Airline B automation signature),
* **fixed name-set permutation** — a small pool of names reshuffled
  across bookings (the Airline C manual signature),
* **misspelling clusters** — near-duplicate names at edit distance 1,
  "suggesting manual input rather than automation".

:class:`PassengerDetailAnalyzer` runs all of them over a window of
booking records and emits typed findings with the affected hold ids.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from ...booking.passengers import edit_distance, gibberish_score
from ...booking.reservation import BookingRecord
from .rotation import UnionFind

# Finding kinds.
GIBBERISH_NAMES = "gibberish-names"
REPEATED_NAME = "repeated-name"
BIRTHDATE_ROTATION = "birthdate-rotation"
NAME_SET_PERMUTATION = "name-set-permutation"
MISSPELLING_CLUSTER = "misspelling-cluster"

#: Execution-mode hints per finding kind.
AUTOMATED_HINT = "automated"
MANUAL_HINT = "manual"
EITHER_HINT = "either"

_MODE_HINTS: Dict[str, str] = {
    GIBBERISH_NAMES: AUTOMATED_HINT,
    REPEATED_NAME: EITHER_HINT,
    BIRTHDATE_ROTATION: AUTOMATED_HINT,
    NAME_SET_PERMUTATION: EITHER_HINT,
    MISSPELLING_CLUSTER: MANUAL_HINT,
}


@dataclass(frozen=True)
class PassengerFinding:
    """One heuristic hit over a set of bookings."""

    kind: str
    hold_ids: Tuple[str, ...]
    evidence: str
    score: float

    @property
    def mode_hint(self) -> str:
        """Whether this signature suggests automation, manual abuse, or
        either."""
        return _MODE_HINTS[self.kind]


@dataclass
class AnalyzerConfig:
    """Heuristic thresholds."""

    gibberish_threshold: float = 0.4
    #: Bookings a name pair must appear in before it counts as repeated.
    repeat_threshold: int = 4
    #: Distinct birthdates for one repeated name to flag rotation.
    birthdate_rotation_threshold: int = 3
    #: Minimum bookings for a name-set permutation cluster.
    permutation_min_bookings: int = 5
    #: Maximum pool of distinct names in a permutation cluster.
    permutation_max_pool: int = 12
    #: Misspelling candidates must sit at exactly this edit distance.
    misspell_distance: int = 1


class PassengerDetailAnalyzer:
    """Runs every passenger-detail heuristic over booking records."""

    def __init__(self, config: AnalyzerConfig = AnalyzerConfig()) -> None:
        self.config = config

    # -- public API ---------------------------------------------------------

    def analyze(
        self, records: Sequence[BookingRecord]
    ) -> List[PassengerFinding]:
        """All findings over the given window, strongest first."""
        held = [r for r in records if r.outcome == "held"]
        findings: List[PassengerFinding] = []
        findings.extend(self._gibberish(held))
        repeated = self._repeated_names(held)
        findings.extend(repeated_finding for repeated_finding, _ in repeated)
        findings.extend(
            self._birthdate_rotation(held, [key for _, key in repeated])
        )
        findings.extend(self._name_set_permutation(held))
        findings.extend(self._misspellings(held))
        findings.sort(key=lambda f: -f.score)
        return findings

    def flagged_hold_ids(
        self, records: Sequence[BookingRecord]
    ) -> Set[str]:
        """Union of hold ids across all findings."""
        flagged: Set[str] = set()
        for finding in self.analyze(records):
            flagged.update(finding.hold_ids)
        return flagged

    # -- heuristics ------------------------------------------------------------

    def _gibberish(
        self, records: Sequence[BookingRecord]
    ) -> List[PassengerFinding]:
        hold_ids = []
        worst = 0.0
        for record in records:
            # A fabricated passenger has *both* tokens random; a genuine
            # one has at least one pronounceable token (many real
            # surnames alone would trip a single-token check).
            scores = [
                min(
                    gibberish_score(p.first_name),
                    gibberish_score(p.last_name),
                )
                for p in record.passengers
            ]
            mean_score = sum(scores) / len(scores)
            if mean_score > self.config.gibberish_threshold:
                hold_ids.append(record.hold_id)
                worst = max(worst, mean_score)
        if not hold_ids:
            return []
        return [
            PassengerFinding(
                kind=GIBBERISH_NAMES,
                hold_ids=tuple(hold_ids),
                evidence=(
                    f"{len(hold_ids)} bookings with keyboard-mash names "
                    f"(max score {worst:.2f})"
                ),
                score=min(worst, 1.0),
            )
        ]

    def _repeated_names(
        self, records: Sequence[BookingRecord]
    ) -> List[Tuple[PassengerFinding, Tuple[str, str]]]:
        bookings_with_name: Dict[Tuple[str, str], List[str]] = defaultdict(
            list
        )
        for record in records:
            for key in {p.name_key for p in record.passengers}:
                bookings_with_name[key].append(record.hold_id)
        findings = []
        for key, hold_ids in sorted(bookings_with_name.items()):
            if len(hold_ids) >= self.config.repeat_threshold:
                first, last = key
                findings.append(
                    (
                        PassengerFinding(
                            kind=REPEATED_NAME,
                            hold_ids=tuple(hold_ids),
                            evidence=(
                                f"name '{first} {last}' appears in "
                                f"{len(hold_ids)} bookings"
                            ),
                            score=min(
                                len(hold_ids)
                                / (self.config.repeat_threshold * 4),
                                1.0,
                            ),
                        ),
                        key,
                    )
                )
        return findings

    def _birthdate_rotation(
        self,
        records: Sequence[BookingRecord],
        repeated_keys: Sequence[Tuple[str, str]],
    ) -> List[PassengerFinding]:
        repeated = set(repeated_keys)
        birthdates: Dict[Tuple[str, str], Set[str]] = defaultdict(set)
        holds: Dict[Tuple[str, str], List[str]] = defaultdict(list)
        for record in records:
            for passenger in record.passengers:
                if passenger.name_key in repeated:
                    birthdates[passenger.name_key].add(passenger.birthdate)
                    holds[passenger.name_key].append(record.hold_id)
        findings = []
        for key in sorted(birthdates):
            distinct = len(birthdates[key])
            if distinct >= self.config.birthdate_rotation_threshold:
                first, last = key
                findings.append(
                    PassengerFinding(
                        kind=BIRTHDATE_ROTATION,
                        hold_ids=tuple(dict.fromkeys(holds[key])),
                        evidence=(
                            f"name '{first} {last}' used with {distinct} "
                            "distinct birthdates"
                        ),
                        score=min(distinct / 10.0 + 0.5, 1.0),
                    )
                )
        return findings

    def _name_set_permutation(
        self, records: Sequence[BookingRecord]
    ) -> List[PassengerFinding]:
        """Clusters of bookings drawing from one small shared name pool
        in varying orders/combinations."""
        name_counts: Counter = Counter()
        for record in records:
            for key in {p.name_key for p in record.passengers}:
                name_counts[key] += 1
        shared = {key for key, count in name_counts.items() if count >= 2}
        if not shared:
            return []

        union = UnionFind(len(records))
        first_with: Dict[Tuple[str, str], int] = {}
        for index, record in enumerate(records):
            for key in {p.name_key for p in record.passengers}:
                if key not in shared:
                    continue
                if key in first_with:
                    union.union(first_with[key], index)
                else:
                    first_with[key] = index

        findings = []
        for group in union.groups():
            if len(group) < self.config.permutation_min_bookings:
                continue
            pool: Set[Tuple[str, str]] = set()
            orderings: Set[Tuple[Tuple[str, str], ...]] = set()
            hold_ids = []
            for index in group:
                record = records[index]
                keys = tuple(p.name_key for p in record.passengers)
                pool.update(keys)
                orderings.add(keys)
                hold_ids.append(record.hold_id)
            if len(pool) > self.config.permutation_max_pool:
                continue
            if len(orderings) < 2:
                continue  # identical every time: plain repetition
            findings.append(
                PassengerFinding(
                    kind=NAME_SET_PERMUTATION,
                    hold_ids=tuple(hold_ids),
                    evidence=(
                        f"{len(group)} bookings permute a pool of "
                        f"{len(pool)} names in {len(orderings)} orders"
                    ),
                    score=min(len(group) / 20.0 + 0.4, 1.0),
                )
            )
        return findings

    def _misspellings(
        self, records: Sequence[BookingRecord]
    ) -> List[PassengerFinding]:
        """Near-duplicate names one edit away from a frequent name."""
        token_counts: Counter = Counter()
        token_holds: Dict[str, List[str]] = defaultdict(list)
        for record in records:
            for passenger in record.passengers:
                for token in (
                    passenger.first_name.lower(),
                    passenger.last_name.lower(),
                ):
                    token_counts[token] += 1
                    token_holds[token].append(record.hold_id)
        frequent = [
            token for token, count in token_counts.items() if count >= 3
        ]
        findings = []
        seen_pairs: Set[Tuple[str, str]] = set()
        for token in sorted(frequent):
            for other in sorted(token_counts):
                if other == token or token_counts[other] >= 3:
                    continue
                pair = (min(token, other), max(token, other))
                if pair in seen_pairs:
                    continue
                if (
                    abs(len(token) - len(other))
                    <= self.config.misspell_distance
                    and edit_distance(token, other)
                    == self.config.misspell_distance
                ):
                    seen_pairs.add(pair)
                    # Only the bookings containing the *misspelled*
                    # token are implicated; sweeping in every booking
                    # with the frequent name would flag whole families.
                    hold_ids = tuple(dict.fromkeys(token_holds[other]))
                    findings.append(
                        PassengerFinding(
                            kind=MISSPELLING_CLUSTER,
                            hold_ids=hold_ids,
                            evidence=(
                                f"'{other}' is one edit from frequent "
                                f"name '{token}'"
                            ),
                            score=0.6,
                        )
                    )
        return findings
