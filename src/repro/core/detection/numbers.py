"""Number-reputation and reuse-window detection (Case D's defense).

A legitimate user asks for an OTP once, maybe twice if the first one
is slow.  A number-cycling attacker rents a disposable number and
pumps it for as many OTP deliveries as it can before discarding it —
so the telltale is the *destination number*, not the sender: the same
number receiving many OTP sends inside a short reuse window.

:class:`NumberReputationScorer` consumes the SMS gateway's records in
time order and keeps, per destination number, a sliding reuse window of
``(time, sender fingerprint)`` events.  When a number's window count
reaches the reuse threshold the number's reputation goes to zero and
every fingerprint that fed it inside the window is convicted as a
``fp:`` entity (the namespace the online mitigation sink acts on).
Once a number is flagged, reputation takes over from the window: any
*later* sender touching it is convicted on contact — numbers are
cheap for attackers to rent but expensive to un-burn.

The scorer is a pure function of the record sequence, so the batch
path (:func:`score_sms_records`) and the streaming adapter draining a
:class:`~repro.stream.feed.RecordFeed` produce identical verdicts by
construction — the equivalence the test suite pins.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from ...sms.gateway import OTP, SmsRecord
from .subjects import entity_subject
from .verdict import Verdict

NUMBER_REPUTATION = "number-reputation"


class NumberReputationScorer:
    """Incremental per-destination-number OTP reuse detection."""

    name = NUMBER_REPUTATION

    def __init__(
        self,
        reuse_threshold: int = 5,
        reuse_window: float = 3600.0,
        kinds: Tuple[str, ...] = (OTP,),
    ) -> None:
        if reuse_threshold < 2:
            raise ValueError(
                f"reuse_threshold must be >= 2: {reuse_threshold}"
            )
        if reuse_window <= 0:
            raise ValueError(
                f"reuse_window must be positive: {reuse_window}"
            )
        self.reuse_threshold = reuse_threshold
        self.reuse_window = reuse_window
        self.kinds = kinds
        #: Per-number sliding window of (time, sender fingerprint id).
        self._windows: Dict[str, Deque[Tuple[float, str]]] = {}
        #: Numbers whose reputation is burned, with the burn time.
        self.flagged_numbers: Dict[str, float] = {}
        self._convicted: set = set()
        self.records_seen = 0

    def observe(self, record: SmsRecord) -> List[Verdict]:
        """Ingest one gateway record (in time order); returns any new
        entity convictions it triggers."""
        if record.kind not in self.kinds:
            return []
        self.records_seen += 1
        number = record.number.e164
        fingerprint_id = record.client.fingerprint_id

        if number in self.flagged_numbers:
            # Reputation path: the number is already burned; anyone
            # still feeding it is part of the cycling operation.
            return self._convict(
                [fingerprint_id],
                f"burned-number:{number}",
            )

        window = self._windows.get(number)
        if window is None:
            window = deque()
            self._windows[number] = window
        window.append((record.time, fingerprint_id))
        while window and record.time - window[0][0] > self.reuse_window:
            window.popleft()
        if len(window) < self.reuse_threshold:
            return []

        # Reuse threshold crossed: burn the number, convict every
        # in-window contributor in first-seen order.
        self.flagged_numbers[number] = record.time
        contributors = list(
            dict.fromkeys(sender for _, sender in window)
        )
        del self._windows[number]
        return self._convict(
            contributors,
            f"number-reuse:{len(window)}-in-{self.reuse_window:.0f}s:"
            f"{number}",
        )

    def finish(self) -> List[Verdict]:
        """End of records: nothing is pending (convictions fire the
        moment a threshold crosses), but the hook keeps the scorer
        interchangeable with windowed families like destination
        surge."""
        return []

    def _convict(
        self, fingerprint_ids: List[str], reason: str
    ) -> List[Verdict]:
        verdicts = []
        for fingerprint_id in fingerprint_ids:
            if fingerprint_id in self._convicted:
                continue
            self._convicted.add(fingerprint_id)
            verdicts.append(
                Verdict(
                    subject_id=entity_subject(fingerprint_id),
                    detector=self.name,
                    score=1.0,
                    is_bot=True,
                    reasons=(reason,),
                )
            )
        return verdicts

    @property
    def convicted_fingerprints(self) -> List[str]:
        return sorted(self._convicted)

    @property
    def tracked_numbers(self) -> int:
        return len(self._windows)


def score_sms_records(
    records, scorer
) -> List[Verdict]:
    """Batch path: run a record scorer over a finished gateway log.

    Works for any scorer with the ``observe``/``finish`` protocol
    (number reputation, destination surge); the streaming adapters run
    the very same calls record by record, which is what makes the
    stream/batch verdict sets identical.
    """
    verdicts: List[Verdict] = []
    for record in records:
        verdicts.extend(scorer.observe(record))
    verdicts.extend(scorer.finish())
    return verdicts
