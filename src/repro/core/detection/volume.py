"""Volume-threshold behaviour detection.

The simplest — and historically most common — behaviour-based bot
detector: flag sessions whose request volume or rate is inhuman.  The
paper's central claim about it (Section III-A) is that DoI and SMS
Pumping bots "do not require a high request volume within a single
session to achieve their objective", so this detector catches scrapers
and misses the paper's attacks.  The E6 benchmark demonstrates exactly
that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ...web.logs import Session
from .features import FEATURE_NAMES, extract_features
from .verdict import Verdict


@dataclass(frozen=True)
class VolumeThresholds:
    """Tunable thresholds; defaults are generous to keep false positives
    on legitimate power users near zero."""

    max_requests_per_session: int = 120
    max_requests_per_minute: float = 12.0
    #: Sessions shorter than this (minutes) are never rate-flagged,
    #: because a burst of 3 quick clicks is not a bot signature.
    min_duration_for_rate: float = 2.0


class VolumeDetector:
    """Threshold detector over session volume features.

    Subjects are session ids.
    """

    name = "volume-threshold"

    def __init__(self, thresholds: VolumeThresholds = VolumeThresholds()) -> None:
        self.thresholds = thresholds

    def judge(self, session: Session) -> Verdict:
        features = extract_features(session)
        reasons = []
        if (
            features.request_count
            > self.thresholds.max_requests_per_session
        ):
            reasons.append("session-request-count")
        if (
            features.duration_minutes >= self.thresholds.min_duration_for_rate
            and features.requests_per_minute
            > self.thresholds.max_requests_per_minute
        ):
            reasons.append("request-rate")
        # Score: how far past the worst-violated threshold we are.
        count_ratio = (
            features.request_count
            / self.thresholds.max_requests_per_session
        )
        rate_ratio = (
            features.requests_per_minute
            / self.thresholds.max_requests_per_minute
            if features.duration_minutes
            >= self.thresholds.min_duration_for_rate
            else 0.0
        )
        score = min(max(count_ratio, rate_ratio) / 2.0, 1.0)
        return Verdict(
            subject_id=session.session_id,
            detector=self.name,
            score=score,
            is_bot=bool(reasons),
            reasons=tuple(reasons),
        )

    def judge_all(self, sessions: List[Session]) -> List[Verdict]:
        return [self.judge(session) for session in sessions]

    def judge_matrix(
        self, session_ids: Sequence[str], matrix: np.ndarray
    ) -> List[Verdict]:
        """Vectorized :meth:`judge` over a prebuilt feature matrix.

        Verdict-identical to judging the corresponding sessions one by
        one — the thresholds and the score arithmetic see the exact
        same float64 values the per-session path computes.
        """
        counts = matrix[:, FEATURE_NAMES.index("request_count")]
        durations = matrix[:, FEATURE_NAMES.index("duration_minutes")]
        rates = matrix[:, FEATURE_NAMES.index("requests_per_minute")]
        count_hit = counts > self.thresholds.max_requests_per_session
        rate_eligible = durations >= self.thresholds.min_duration_for_rate
        rate_hit = rate_eligible & (
            rates > self.thresholds.max_requests_per_minute
        )
        count_ratio = counts / self.thresholds.max_requests_per_session
        rate_ratio = np.where(
            rate_eligible,
            rates / self.thresholds.max_requests_per_minute,
            0.0,
        )
        scores = np.minimum(
            np.maximum(count_ratio, rate_ratio) / 2.0, 1.0
        )
        verdicts = []
        for row, session_id in enumerate(session_ids):
            reasons = []
            if count_hit[row]:
                reasons.append("session-request-count")
            if rate_hit[row]:
                reasons.append("request-rate")
            verdicts.append(
                Verdict(
                    subject_id=session_id,
                    detector=self.name,
                    score=float(scores[row]),
                    is_bot=bool(reasons),
                    reasons=tuple(reasons),
                )
            )
        return verdicts

    def judge_index(self, index) -> List[Verdict]:
        """Judge every session in a :class:`~repro.core.detection.
        session_index.SessionIndex` without materialising any."""
        return self.judge_matrix(index.session_ids, index.matrix)
