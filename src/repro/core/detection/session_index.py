"""Columnar session index: vectorized sessionization + features.

The analysis-side counterpart of :mod:`repro.web.logstore`.  PR 6 made
the *ingest* side columnar; this module makes the *read* side match:
:class:`SessionIndex` consumes a whole log as flat NumPy columns
(:meth:`repro.web.logs.WebLog.columns`) and computes, without ever
materialising a ``LogEntry`` or ``Session``,

* the exact session partition :func:`repro.web.logs.sessionize`
  produces — same session ids, same member entries, same output
  order — via a stable sort on the interned ``(ip, fingerprint)``
  key instead of a per-entry Python loop;
* the full 16-column :data:`~repro.core.detection.features.
  FEATURE_NAMES` matrix via group-by aggregations
  (``np.bincount`` over a per-row segment id);
* the per-endpoint count table and the token/gap sequence encoding
  the :mod:`repro.ml` arm trains on.

Everything is **bit-identical** to the object path, which is what lets
the threshold/logistic/kmeans detectors and the ML dataset builder
switch over without moving a single verdict.  The one numerical
subtlety: every float segment reduction uses ``np.bincount``, whose
weight accumulation is sequential in array order — the same
left-to-right order ``sum()`` uses in
:func:`~repro.core.detection.features.extract_features` —
where ``np.add.reduceat``/``np.sum`` would introduce pairwise-
summation differences at the last ulp.

Replicating ``sessionize`` exactly takes care with ordering:

* session **ids** are assigned in opening order over the original
  scan (``S0000001``...), so each segment's number is the rank of its
  first entry's original row among all opening rows;
* the **output order** is a stable sort by session start over the
  list sessionize builds — closed sessions in close order (a session
  closes when the *next* entry of its key arrives after the idle
  gap), then still-open sessions in key-first-appearance order.  Both
  ranks are computable from the opening rows, so one ``np.lexsort``
  reproduces the exact final order including start-time ties.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ...web.logs import DEFAULT_IDLE_GAP, Session, WebLog
from .features import FEATURE_NAMES
from ...web.request import (
    BOARDING_PASS_SMS,
    FLIGHT_DETAILS,
    HOLD,
    OTP_LOGIN,
    PAY,
    SEARCH,
    TRAP,
)

#: Endpoint order of the per-session count table: columns 0..6 are the
#: known funnel endpoints (the same order the feature vector and the
#: ML token vocabulary use), column 7 counts everything else.
ENDPOINT_ORDER: Tuple[str, ...] = (
    SEARCH,
    FLIGHT_DETAILS,
    HOLD,
    PAY,
    OTP_LOGIN,
    BOARDING_PASS_SMS,
    TRAP,
)
OTHER_ENDPOINT = len(ENDPOINT_ORDER)        # 7
_ENDPOINT_COUNT = OTHER_ENDPOINT + 1        # 8

#: Ground-truth class a zero-evidence session defaults to (mirrors
#: :attr:`repro.web.logs.Session.actor_class`).
LEGIT_CLASS = "legit"


class SessionIndex:
    """Sessionized columnar view of one :class:`~repro.web.logs.WebLog`.

    Built once per analysis pass (:meth:`from_log`); detectors consume
    ``session_ids`` + ``matrix`` directly, the ML arm adds
    :meth:`sequences`, and anything that still needs ``Session``
    objects calls :meth:`sessions` (identical to ``sessionize(log)``).
    """

    def __init__(
        self,
        log: WebLog,
        idle_gap: float,
        session_ids: List[str],
        matrix: np.ndarray,
        counts: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        ips: List[str],
        fingerprints: List[str],
        actor_classes: List[str],
        path_counts: np.ndarray,
        entry_rows: np.ndarray,
        indptr: np.ndarray,
        columns,
    ) -> None:
        self._log = log
        self.idle_gap = idle_gap
        #: Session ids in ``sessionize()`` output order.
        self.session_ids = session_ids
        #: ``(n, len(FEATURE_NAMES))`` float64, rows aligned with
        #: ``session_ids`` — bit-identical to ``feature_matrix(
        #: sessionize(log))``.
        self.matrix = matrix
        self.counts = counts            # (n,) int64 request counts
        self.starts = starts            # (n,) float64
        self.ends = ends                # (n,) float64
        self.ips = ips
        self.fingerprints = fingerprints
        #: Ground-truth majority actor class per session (evaluation
        #: only, same tie-break as ``Session.actor_class``).
        self.actor_classes = actor_classes
        #: ``(n, 8)`` int64 — per-endpoint request counts in
        #: :data:`ENDPOINT_ORDER` + other; feeds the feature columns
        #: and the graph detector's behavioural priors.
        self.path_counts = path_counts
        #: Original log row index of every entry, session-major in
        #: output order; ``indptr`` bounds session ``i``'s entries.
        self.entry_rows = entry_rows
        self.indptr = indptr
        self._columns = columns
        self._sequences: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def __len__(self) -> int:
        return len(self.session_ids)

    @property
    def entry_count(self) -> int:
        return int(self.entry_rows.shape[0])

    @property
    def is_attacker(self) -> np.ndarray:
        """Boolean ground-truth label per session."""
        return np.array(
            [cls != LEGIT_CLASS for cls in self.actor_classes],
            dtype=bool,
        )

    # -- construction --------------------------------------------------------

    @classmethod
    def from_log(
        cls,
        log: WebLog,
        idle_gap: float = DEFAULT_IDLE_GAP,
        obs: Optional[object] = None,
    ) -> "SessionIndex":
        """Sessionize + feature-extract ``log`` in one columnar pass."""
        if idle_gap <= 0:
            raise ValueError(f"idle_gap must be positive: {idle_gap}")
        span = (
            obs.timer("detect.features").time() if obs is not None else None
        )
        if span is not None:
            span.__enter__()
        try:
            index = cls._build(log, idle_gap)
        finally:
            if span is not None:
                span.__exit__(None, None, None)
        if obs is not None:
            obs.increment("detect.sessions", float(len(index)))
            obs.increment("detect.entries", float(index.entry_count))
        return index

    @classmethod
    def _build(cls, log: WebLog, idle_gap: float) -> "SessionIndex":
        cols = log.columns()
        n_rows = len(cols)
        if n_rows == 0:
            return cls(
                log=log, idle_gap=idle_gap, session_ids=[],
                matrix=np.zeros((0, len(FEATURE_NAMES))),
                counts=np.zeros(0, dtype=np.int64),
                starts=np.zeros(0), ends=np.zeros(0),
                ips=[], fingerprints=[], actor_classes=[],
                path_counts=np.zeros((0, _ENDPOINT_COUNT), dtype=np.int64),
                entry_rows=np.zeros(0, dtype=np.int64),
                indptr=np.zeros(1, dtype=np.int64),
                columns=cols,
            )

        # Per-row (ip, fingerprint) pair id, via the small client
        # intern table (one entry per visitor, not per row).
        pair_ids: Dict[Tuple[str, str], int] = {}
        pairs: List[Tuple[str, str]] = []
        pair_of_client = np.empty(len(cols.clients), dtype=np.int64)
        for cid, ref in enumerate(cols.clients):
            key = (ref.ip_address, ref.fingerprint_id)
            pid = pair_ids.get(key)
            if pid is None:
                pid = pair_ids[key] = len(pairs)
                pairs.append(key)
            pair_of_client[cid] = pid
        row_key = pair_of_client[cols.client]

        # Stable sort groups rows by key while preserving the log's
        # time order inside each key — "kg" (key-grouped) space.
        order = np.argsort(row_key, kind="stable")
        k = row_key[order]
        t = cols.time[order]
        new_key = np.empty(n_rows, dtype=bool)
        new_key[0] = True
        np.not_equal(k[1:], k[:-1], out=new_key[1:])
        gap = np.empty(n_rows, dtype=np.float64)
        gap[0] = 0.0
        np.subtract(t[1:], t[:-1], out=gap[1:])
        # A row opens a session when its key changes or the idle gap
        # is strictly exceeded (cross-key gap values are masked by
        # new_key being True there already).
        is_open = new_key | (gap > idle_gap)
        seg_id = np.cumsum(is_open) - 1
        nseg = int(seg_id[-1]) + 1
        open_pos = np.flatnonzero(is_open)
        kg_indptr = np.empty(nseg + 1, dtype=np.int64)
        kg_indptr[:-1] = open_pos
        kg_indptr[-1] = n_rows
        seg_counts = np.diff(kg_indptr)
        open_orig = order[open_pos]

        # Session numbering: sessionize's counter increments at each
        # session open during the original scan, so the number is the
        # rank of the opening entry's original row.
        number = np.empty(nseg, dtype=np.int64)
        number[np.argsort(open_orig, kind="stable")] = np.arange(
            1, nseg + 1
        )

        seg_key = k[open_pos]
        seg_starts = t[open_pos]
        seg_ends = t[kg_indptr[1:] - 1]

        # Output order = stable sort by start over sessionize's list:
        # closed sessions ranked by the original row of the successor
        # entry that closed them, then end-open sessions ranked by
        # their key's first appearance (dict insertion order), offset
        # past every close rank.
        first_seg = new_key[open_pos]
        key_first_row = np.empty(len(pairs), dtype=np.int64)
        key_first_row[seg_key[first_seg]] = open_orig[first_seg]
        next_same = np.zeros(nseg, dtype=bool)
        next_same[:-1] = seg_key[1:] == seg_key[:-1]
        successor_row = np.empty(nseg, dtype=np.int64)
        successor_row[:-1] = open_orig[1:]
        successor_row[-1] = 0
        presort = np.where(
            next_same, successor_row, n_rows + key_first_row[seg_key]
        )
        seg_order = np.lexsort((presort, seg_starts))

        # -- feature aggregations (kg segment space) ----------------------
        status = cols.status[order]
        method = cols.method[order]
        path = cols.path[order]

        counts = seg_counts
        duration_min = (seg_ends - seg_starts) / 60.0
        rate = counts / np.maximum(duration_min, 1.0)

        get_id = cols.string_id("GET")
        post_id = cols.string_id("POST")
        gets = np.bincount(seg_id[method == get_id], minlength=nseg)
        posts = np.bincount(seg_id[method == post_id], minlength=nseg)

        n_strings = len(cols.strings)
        unique_paths = np.bincount(
            np.unique(seg_id * np.int64(n_strings) + path) // n_strings,
            minlength=nseg,
        )

        bucket_of_string = np.full(
            n_strings, OTHER_ENDPOINT, dtype=np.int64
        )
        for bucket, endpoint in enumerate(ENDPOINT_ORDER):
            sid = cols.string_id(endpoint)
            if sid >= 0:
                bucket_of_string[sid] = bucket
        bucket = bucket_of_string[path]
        path_counts = np.bincount(
            seg_id * _ENDPOINT_COUNT + bucket,
            minlength=nseg * _ENDPOINT_COUNT,
        ).reshape(nseg, _ENDPOINT_COUNT)

        errors = np.bincount(seg_id[status != 200], minlength=nseg)

        # Gap statistics: bincount's sequential weight accumulation
        # reproduces the object path's left-to-right sums exactly.
        has_prev = ~is_open
        gap_seg = seg_id[has_prev]
        gap_sum = np.bincount(
            gap_seg, weights=gap[has_prev], minlength=nseg
        )
        gap_count = counts - 1
        mean_gap = np.zeros(nseg)
        np.divide(
            gap_sum, gap_count, out=mean_gap, where=gap_count > 0
        )
        deviation = gap - mean_gap[seg_id]
        square = deviation * deviation
        variance = np.zeros(nseg)
        np.divide(
            np.bincount(
                gap_seg, weights=square[has_prev], minlength=nseg
            ),
            gap_count,
            out=variance,
            where=gap_count > 0,
        )
        cv = np.zeros(nseg)
        np.divide(
            np.sqrt(variance), mean_gap, out=cv, where=mean_gap > 0
        )

        matrix = np.empty((nseg, len(FEATURE_NAMES)))
        matrix[:, 0] = counts
        matrix[:, 1] = duration_min
        matrix[:, 2] = rate
        matrix[:, 3] = gets / counts
        matrix[:, 4] = posts / counts
        matrix[:, 5] = unique_paths
        matrix[:, 6] = path_counts[:, 0]    # search
        matrix[:, 7] = path_counts[:, 1]    # details
        matrix[:, 8] = path_counts[:, 2]    # hold
        matrix[:, 9] = path_counts[:, 3]    # pay
        matrix[:, 10] = path_counts[:, 4] + path_counts[:, 5]  # sms
        matrix[:, 11] = path_counts[:, 2] - path_counts[:, 3]
        matrix[:, 12] = mean_gap
        matrix[:, 13] = cv
        matrix[:, 14] = errors / counts
        matrix[:, 15] = path_counts[:, 6]   # trap

        # -- ground-truth majority class (first-appearance tie-break) ------
        class_ids: Dict[str, int] = {}
        classes: List[str] = []
        class_of_client = np.empty(len(cols.clients), dtype=np.int64)
        for cid, ref in enumerate(cols.clients):
            name = ref.actor_class
            pid = class_ids.get(name)
            if pid is None:
                pid = class_ids[name] = len(classes)
                classes.append(name)
            class_of_client[cid] = pid
        row_class = class_of_client[cols.client[order]]
        n_classes = len(classes)
        combo = seg_id * n_classes + row_class
        class_counts = np.bincount(
            combo, minlength=nseg * n_classes
        ).astype(np.int64)
        first_pos = np.full(nseg * n_classes, n_rows, dtype=np.int64)
        np.minimum.at(first_pos, combo, np.arange(n_rows))
        # count dominates; among equal counts the earlier first
        # appearance wins — Session.actor_class's max() semantics.
        rank = class_counts * np.int64(n_rows + 1) - first_pos
        winner = rank.reshape(nseg, n_classes).argmax(axis=1)

        # -- reorder everything into sessionize output order ---------------
        out_counts = counts[seg_order]
        out_indptr = np.zeros(nseg + 1, dtype=np.int64)
        np.cumsum(out_counts, out=out_indptr[1:])
        # Gather each output session's rows from its kg-contiguous run.
        offsets = np.repeat(
            kg_indptr[:-1][seg_order] - out_indptr[:-1], out_counts
        )
        entry_rows = order[offsets + np.arange(n_rows)]

        session_ids = [f"S{number[j]:07d}" for j in seg_order]
        ips = [pairs[seg_key[j]][0] for j in seg_order]
        fingerprints = [pairs[seg_key[j]][1] for j in seg_order]
        actor_classes = [classes[winner[j]] for j in seg_order]

        return cls(
            log=log,
            idle_gap=idle_gap,
            session_ids=session_ids,
            matrix=matrix[seg_order],
            counts=out_counts,
            starts=seg_starts[seg_order],
            ends=seg_ends[seg_order],
            ips=ips,
            fingerprints=fingerprints,
            actor_classes=actor_classes,
            path_counts=path_counts[seg_order],
            entry_rows=entry_rows,
            indptr=out_indptr,
            columns=cols,
        )

    # -- materialisation ------------------------------------------------------

    def sessions(self) -> List[Session]:
        """``Session`` objects equal to ``sessionize(log, idle_gap)``.

        Only for consumers that genuinely need per-entry objects
        (fingerprint rules, the graph builder); the matrix consumers
        never pay this cost.
        """
        log = self._log
        rows = self.entry_rows
        indptr = self.indptr
        out: List[Session] = []
        for i, session_id in enumerate(self.session_ids):
            out.append(
                Session(
                    session_id=session_id,
                    ip_address=self.ips[i],
                    fingerprint_id=self.fingerprints[i],
                    entries=[
                        log.entry_at(int(row))
                        for row in rows[indptr[i]: indptr[i + 1]]
                    ],
                )
            )
        return out

    def sequences(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(tokens, gaps)`` ML sequence encodings for every session.

        Identical to :func:`repro.ml.data.encode_sequence` applied per
        session: int16 tokens padded with the vocabulary's PAD id,
        float64 ``log1p`` gaps.  Computed lazily and cached.
        """
        if self._sequences is not None:
            return self._sequences
        # Local import: repro.ml.data imports this module's consumers.
        from ...ml.data import (
            MAX_SEQUENCE_LENGTH,
            PAD_TOKEN,
            _STATUS_COUNT,
        )

        cols = self._columns
        n = len(self)
        tokens = np.full(
            (n, MAX_SEQUENCE_LENGTH), PAD_TOKEN, dtype=np.int16
        )
        gaps = np.zeros((n, MAX_SEQUENCE_LENGTH), dtype=np.float64)
        total = self.entry_count
        if total == 0:
            self._sequences = (tokens, gaps)
            return self._sequences

        n_strings = len(cols.strings)
        bucket_of_string = np.full(
            n_strings, OTHER_ENDPOINT, dtype=np.int64
        )
        for bucket, endpoint in enumerate(ENDPOINT_ORDER):
            sid = cols.string_id(endpoint)
            if sid >= 0:
                bucket_of_string[sid] = bucket

        rows = self.entry_rows
        seg_of_row = np.repeat(np.arange(n, dtype=np.int64), self.counts)
        pos = np.arange(total, dtype=np.int64) - self.indptr[seg_of_row]
        keep = pos < MAX_SEQUENCE_LENGTH

        token_vals = (
            bucket_of_string[cols.path[rows]] * _STATUS_COUNT
            + (cols.status[rows] != 200)
        )
        tokens[seg_of_row[keep], pos[keep]] = token_vals[keep]

        times = cols.time[rows]
        raw_gap = np.empty(total, dtype=np.float64)
        raw_gap[0] = 0.0
        np.subtract(times[1:], times[:-1], out=raw_gap[1:])
        has_prev = pos > 0
        fill = keep & has_prev
        gaps[seg_of_row[fill], pos[fill]] = np.log1p(
            np.maximum(raw_gap[fill], 0.0)
        )
        self._sequences = (tokens, gaps)
        return self._sequences
