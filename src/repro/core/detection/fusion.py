"""Verdict fusion across detector families.

Section V's conclusion is that no single signal class survives contact
with advanced functional abuse: fingerprinting, behaviour analysis and
anomaly detection have to be *combined*.  :class:`FusionDetector`
implements the standard noisy-OR combination: each detector family
contributes independent evidence, weighted by how much its verdicts are
trusted, and the fused bot-probability is

``1 - prod(1 - weight_d * score_d)``

so any single confident detector can convict, several weak signals
accumulate, and a detector that saw nothing contributes nothing.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from .verdict import Verdict

#: Default trust weights per detector family.  Knowledge-based rules
#: are precise when they fire; volume thresholds are precise but narrow;
#: statistical detectors get partial trust.
DEFAULT_WEIGHTS: Dict[str, float] = {
    "fingerprint-rules": 0.95,
    "volume-threshold": 0.9,
    "mouse-biometrics": 0.9,
    "navigation-graph": 0.6,
    "logistic-behaviour": 0.7,
    "kmeans-behaviour": 0.5,
    # The trained session-sequence arm (repro.ml): its threshold is
    # FPR-calibrated at train time, so a conviction is high-precision
    # evidence, but it stays below the knowledge-based rules.
    "learned-sequence": 0.85,
    # SMS-record families (Cases D/E): destination-keyed thresholds are
    # as precise as the velocity fast paths they mirror.
    "number-reputation": 0.9,
    "destination-surge": 0.9,
}


@dataclass
class FusionDetector:
    """Noisy-OR fusion of per-subject verdicts from many detectors."""

    weights: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_WEIGHTS)
    )
    default_weight: float = 0.5
    threshold: float = 0.5

    name = "fusion"

    def __post_init__(self) -> None:
        for detector, weight in self.weights.items():
            if not 0.0 <= weight <= 1.0:
                raise ValueError(
                    f"weight for {detector!r} must be in [0, 1]: {weight}"
                )
        if not 0.0 < self.threshold < 1.0:
            raise ValueError(
                f"threshold must be in (0, 1): {self.threshold}"
            )

    def weight_for(self, detector: str) -> float:
        return self.weights.get(detector, self.default_weight)

    def fuse(
        self, verdict_sets: Sequence[Sequence[Verdict]]
    ) -> List[Verdict]:
        """Combine verdicts (grouped however the caller likes) into one
        fused verdict per subject id."""
        survival: Dict[str, float] = defaultdict(lambda: 1.0)
        reasons: Dict[str, List[str]] = defaultdict(list)
        for verdicts in verdict_sets:
            for verdict in verdicts:
                weight = self.weight_for(verdict.detector)
                survival[verdict.subject_id] *= (
                    1.0 - weight * verdict.score
                )
                if verdict.is_bot:
                    reasons[verdict.subject_id].append(verdict.detector)

        fused = []
        for subject_id in sorted(survival):
            score = 1.0 - survival[subject_id]
            fused.append(
                Verdict(
                    subject_id=subject_id,
                    detector=self.name,
                    score=min(max(score, 0.0), 1.0),
                    is_bot=score >= self.threshold,
                    reasons=tuple(dict.fromkeys(reasons[subject_id])),
                )
            )
        return fused
