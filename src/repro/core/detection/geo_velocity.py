"""Geo-velocity ("impossible travel") detection.

The Case C attacker leased residential exits *geo-matched to each
destination number's country* — which perfectly defeats per-request
geo-consistency checks, but creates a different artifact: one booking
reference (or profile) requesting boarding passes from dozens of
countries within hours.  No passenger travels like that.

:class:`GeoVelocityDetector` scans SMS-send records grouped by a stable
key (booking reference or profile id) and flags keys whose request
origins span too many countries inside a sliding window.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ...sms.gateway import SmsRecord
from .verdict import Verdict


@dataclass
class GeoVelocityConfig:
    """Thresholds for the impossible-travel rule.

    A genuine traveller might legitimately appear from 2-3 countries in
    a day (home connection, airport Wi-Fi, roaming); dozens is physics
    violation.
    """

    window: float = 24.0 * 3600.0
    max_countries_per_window: int = 3

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError(f"window must be positive: {self.window}")
        if self.max_countries_per_window < 1:
            raise ValueError(
                "max_countries_per_window must be >= 1: "
                f"{self.max_countries_per_window}"
            )


class GeoVelocityDetector:
    """Flags booking references / profiles with impossible travel.

    Subjects are the grouping keys (booking reference by default).
    """

    name = "geo-velocity"

    def __init__(
        self, config: GeoVelocityConfig = GeoVelocityConfig()
    ) -> None:
        self.config = config

    @staticmethod
    def _key(record: SmsRecord) -> str:
        return record.booking_ref or record.client.profile_id

    def judge_records(
        self, records: Sequence[SmsRecord]
    ) -> List[Verdict]:
        """One verdict per grouping key seen in the records.

        A key is flagged when any ``window``-long span contains request
        origins from more than ``max_countries_per_window`` countries.
        """
        by_key: Dict[str, List[Tuple[float, str]]] = defaultdict(list)
        for record in records:
            key = self._key(record)
            if key:
                by_key[key].append((record.time, record.client.ip_country))

        verdicts = []
        for key in sorted(by_key):
            events = sorted(by_key[key])
            peak = self._peak_countries(events)
            is_bot = peak > self.config.max_countries_per_window
            score = min(
                peak / (self.config.max_countries_per_window * 4), 1.0
            )
            verdicts.append(
                Verdict(
                    subject_id=key,
                    detector=self.name,
                    score=score if is_bot else min(score, 0.49),
                    is_bot=is_bot,
                    reasons=(
                        (f"{peak}-countries-in-window",) if is_bot else ()
                    ),
                )
            )
        return verdicts

    def _peak_countries(
        self, events: Sequence[Tuple[float, str]]
    ) -> int:
        """Maximum distinct origin countries in any sliding window."""
        peak = 0
        start = 0
        window_counts: Dict[str, int] = defaultdict(int)
        for end, (time, country) in enumerate(events):
            window_counts[country] += 1
            while events[start][0] < time - self.config.window:
                old_country = events[start][1]
                window_counts[old_country] -= 1
                if window_counts[old_country] == 0:
                    del window_counts[old_country]
                start += 1
            peak = max(peak, len(window_counts))
        return peak

    def flagged_keys(self, records: Sequence[SmsRecord]) -> List[str]:
        return [
            verdict.subject_id
            for verdict in self.judge_records(records)
            if verdict.is_bot
        ]
