"""Logistic-regression session classifier (from scratch, NumPy).

The supervised end of the behaviour-based spectrum (Section III-A):
train on labelled sessions, predict bot probability from the session
feature vector.  Implemented directly — standardisation, L2-regularised
cross-entropy, batch gradient descent — so the library has no ML
dependencies and the training procedure is fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ...ml.standardize import Standardiser
from ...web.logs import Session
from .features import feature_matrix
from .verdict import Verdict


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Clipped for numerical stability at extreme logits.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


@dataclass
class TrainingReport:
    """Convergence summary returned by :meth:`LogisticSessionClassifier.fit`."""

    iterations: int
    final_loss: float
    training_accuracy: float


class LogisticSessionClassifier:
    """L2-regularised logistic regression over session features.

    Subjects are session ids.  ``threshold`` converts probability to the
    binary ``is_bot`` verdict.
    """

    name = "logistic-behaviour"

    def __init__(
        self,
        learning_rate: float = 0.1,
        l2: float = 1e-3,
        max_iterations: int = 2000,
        tolerance: float = 1e-7,
        threshold: float = 0.5,
    ) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1): {threshold}")
        self.learning_rate = learning_rate
        self.l2 = l2
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.threshold = threshold
        self._weights: Optional[np.ndarray] = None
        self._bias = 0.0
        self._standardiser: Optional[Standardiser] = None

    @property
    def fitted(self) -> bool:
        return self._weights is not None

    def _standardise(self, matrix: np.ndarray) -> np.ndarray:
        # Shared constant-column-safe standardisation (repro.ml); the
        # old per-model copy clamped only exact std == 0.0 and turned
        # constant non-zero columns into amplified rounding noise.
        assert self._standardiser is not None
        return self._standardiser.transform(matrix)

    def fit(
        self, sessions: Sequence[Session], labels: Sequence[bool]
    ) -> TrainingReport:
        """Train on labelled sessions (True = bot)."""
        if len(sessions) != len(labels):
            raise ValueError(
                f"{len(sessions)} sessions but {len(labels)} labels"
            )
        return self.fit_matrix(feature_matrix(list(sessions)), labels)

    def fit_matrix(
        self, matrix: np.ndarray, labels: Sequence[bool]
    ) -> TrainingReport:
        """Train on a prebuilt feature matrix (True = bot).

        Training is bit-identical to :meth:`fit` on the sessions the
        matrix was extracted from.
        """
        if matrix.shape[0] != len(labels):
            raise ValueError(
                f"{matrix.shape[0]} feature rows but {len(labels)} labels"
            )
        if matrix.shape[0] < 2:
            raise ValueError("need at least two training sessions")
        target = np.asarray(labels, dtype=float)
        if len({bool(label) for label in labels}) < 2:
            raise ValueError("training labels must contain both classes")

        self._standardiser = Standardiser.fit(matrix)
        x = self._standardise(matrix)

        n_samples, n_features = x.shape
        weights = np.zeros(n_features)
        bias = 0.0
        previous_loss = np.inf
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            probabilities = _sigmoid(x @ weights + bias)
            gradient_w = (
                x.T @ (probabilities - target) / n_samples
                + self.l2 * weights
            )
            gradient_b = float(np.mean(probabilities - target))
            weights -= self.learning_rate * gradient_w
            bias -= self.learning_rate * gradient_b
            eps = 1e-12
            loss = float(
                -np.mean(
                    target * np.log(probabilities + eps)
                    + (1 - target) * np.log(1 - probabilities + eps)
                )
                + 0.5 * self.l2 * float(weights @ weights)
            )
            if abs(previous_loss - loss) < self.tolerance:
                break
            previous_loss = loss

        self._weights = weights
        self._bias = bias
        predictions = self.predict_proba_matrix(matrix) >= self.threshold
        accuracy = float(np.mean(predictions == (target >= 0.5)))
        return TrainingReport(
            iterations=iterations,
            final_loss=previous_loss,
            training_accuracy=accuracy,
        )

    def predict_proba_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Probabilities straight from a prebuilt feature matrix."""
        if not self.fitted:
            raise RuntimeError("classifier is not fitted")
        if matrix.shape[0] == 0:
            return np.zeros(0)
        x = self._standardise(matrix)
        assert self._weights is not None
        return _sigmoid(x @ self._weights + self._bias)

    def predict_proba(self, sessions: Sequence[Session]) -> np.ndarray:
        if not self.fitted:
            raise RuntimeError("classifier is not fitted")
        return self.predict_proba_matrix(feature_matrix(list(sessions)))

    def _verdicts(
        self, session_ids: Sequence[str], probabilities: np.ndarray
    ) -> List[Verdict]:
        return [
            Verdict(
                subject_id=session_id,
                detector=self.name,
                score=float(probability),
                is_bot=bool(probability >= self.threshold),
                reasons=("model-probability",),
            )
            for session_id, probability in zip(session_ids, probabilities)
        ]

    def judge_all(self, sessions: Sequence[Session]) -> List[Verdict]:
        return self._verdicts(
            [session.session_id for session in sessions],
            self.predict_proba(sessions),
        )

    def judge_index(self, index) -> List[Verdict]:
        """Judge a :class:`~repro.core.detection.session_index.
        SessionIndex` — same verdicts as :meth:`judge_all` on the
        corresponding sessions, no per-session feature extraction."""
        return self._verdicts(
            index.session_ids, self.predict_proba_matrix(index.matrix)
        )
