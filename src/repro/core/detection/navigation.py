"""Graph-based navigation analysis (the Section V research direction).

The paper recommends "local behavioral modeling, such as graph-based
navigation analysis" as a way to catch abuse that volume metrics miss.
This module implements the classic version: a first-order Markov model
of endpoint transitions fitted on (mostly) legitimate sessions, scoring
each new session by the likelihood of its navigation path.

The signal it exposes: legitimate visitors walk the funnel
(search → details → hold → pay); functional-abuse bots teleport
straight to the feature they exploit (START → hold, hold → hold, ...),
which are low-probability transitions under the fitted model.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ...web.logs import Session
from .verdict import Verdict

#: Synthetic states bracketing every session path.
START = "<start>"
END = "<end>"


def session_path(session: Session) -> List[str]:
    """The session's endpoint sequence, bracketed by START/END."""
    return [START] + [entry.path for entry in session.entries] + [END]


class NavigationModel:
    """First-order Markov model over endpoint transitions.

    Laplace-smoothed so unseen transitions get small but finite
    probability; ``mean_log_likelihood`` is length-normalised, which
    keeps long and short sessions comparable.
    """

    def __init__(self, smoothing: float = 0.5) -> None:
        if smoothing <= 0:
            raise ValueError(f"smoothing must be positive: {smoothing}")
        self.smoothing = smoothing
        self._transition_counts: Dict[str, Dict[str, float]] = defaultdict(
            lambda: defaultdict(float)
        )
        self._state_totals: Dict[str, float] = defaultdict(float)
        self._states: set = set()
        self._fitted = False

    @property
    def fitted(self) -> bool:
        return self._fitted

    def fit(self, sessions: Sequence[Session]) -> None:
        """Count transitions over the training sessions."""
        if not sessions:
            raise ValueError("cannot fit a navigation model on nothing")
        for session in sessions:
            path = session_path(session)
            for source, target in zip(path, path[1:]):
                self._transition_counts[source][target] += 1.0
                self._state_totals[source] += 1.0
                self._states.add(source)
                self._states.add(target)
        self._fitted = True

    def transition_probability(self, source: str, target: str) -> float:
        """Smoothed P(target | source)."""
        if not self._fitted:
            raise RuntimeError("navigation model is not fitted")
        vocabulary = max(len(self._states), 2)
        count = self._transition_counts.get(source, {}).get(target, 0.0)
        total = self._state_totals.get(source, 0.0)
        return (count + self.smoothing) / (
            total + self.smoothing * vocabulary
        )

    def mean_log_likelihood(self, session: Session) -> float:
        """Mean per-transition log2-likelihood of the session's path."""
        path = session_path(session)
        total = 0.0
        steps = 0
        for source, target in zip(path, path[1:]):
            total += math.log2(self.transition_probability(source, target))
            steps += 1
        return total / max(steps, 1)

    def rarest_transition(
        self, session: Session
    ) -> Tuple[str, str, float]:
        """The least likely transition in the session's path."""
        path = session_path(session)
        worst = (path[0], path[1], 1.0)
        for source, target in zip(path, path[1:]):
            probability = self.transition_probability(source, target)
            if probability < worst[2]:
                worst = (source, target, probability)
        return worst


@dataclass
class NavigationDetectorConfig:
    """Threshold calibration for :class:`NavigationDetector`.

    The decision threshold is set from the training data itself: the
    ``calibration_percentile``-th percentile of training-session
    likelihoods (training traffic is assumed mostly legitimate, so a
    low percentile keeps false positives at roughly that rate).
    """

    smoothing: float = 0.5
    calibration_percentile: float = 1.0


class NavigationDetector:
    """Flags sessions whose navigation path is improbable.

    Subjects are session ids.
    """

    name = "navigation-graph"

    def __init__(
        self, config: NavigationDetectorConfig = NavigationDetectorConfig()
    ) -> None:
        self.config = config
        self.model = NavigationModel(smoothing=config.smoothing)
        self._threshold: Optional[float] = None

    @property
    def threshold(self) -> Optional[float]:
        return self._threshold

    def fit(self, sessions: Sequence[Session]) -> None:
        """Fit the model and calibrate the decision threshold."""
        self.model.fit(sessions)
        scores = sorted(
            self.model.mean_log_likelihood(session) for session in sessions
        )
        index = int(
            len(scores) * self.config.calibration_percentile / 100.0
        )
        index = min(max(index, 0), len(scores) - 1)
        self._threshold = scores[index]

    def judge(self, session: Session) -> Verdict:
        if self._threshold is None:
            raise RuntimeError("navigation detector is not fitted")
        likelihood = self.model.mean_log_likelihood(session)
        is_bot = likelihood < self._threshold
        reasons: Tuple[str, ...] = ()
        if is_bot:
            source, target, probability = self.model.rarest_transition(
                session
            )
            reasons = (
                f"improbable-transition:{source}->{target}"
                f"@{probability:.4f}",
            )
        # Score: how far below the threshold, squashed into [0, 1].
        gap = self._threshold - likelihood
        score = 1.0 / (1.0 + math.exp(-gap)) if is_bot else 0.0
        return Verdict(
            subject_id=session.session_id,
            detector=self.name,
            score=min(max(score, 0.0), 1.0),
            is_bot=is_bot,
            reasons=reasons,
        )

    def judge_all(self, sessions: Sequence[Session]) -> List[Verdict]:
        return [self.judge(session) for session in sessions]
