"""Statistical anomaly detection over booking and SMS aggregates.

The detection layer that actually caught the paper's attacks:

* :class:`NipDistributionMonitor` — compares the observed
  Number-in-Party distribution against a baseline week (Fig. 1's
  signal: the NiP-6 bar tripling during the attack),
* :class:`SmsSurgeMonitor` — per-destination-country volume ratios
  against a baseline window (Table I's surge percentages),
* :class:`EwmaMonitor` — generic exponentially-weighted rate anomaly
  for time series.

The chi-square survival function is implemented from scratch
(regularised incomplete gamma, series + continued fraction) so the
library core needs nothing beyond NumPy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence


# --------------------------------------------------------------------------
# Special functions (Numerical-Recipes-style incomplete gamma).
# --------------------------------------------------------------------------

def _lower_gamma_series(s: float, x: float) -> float:
    """Regularised lower incomplete gamma P(s, x) via its series."""
    term = 1.0 / s
    total = term
    denominator = s
    for _ in range(500):
        denominator += 1.0
        term *= x / denominator
        total += term
        if abs(term) < abs(total) * 1e-14:
            break
    return total * math.exp(-x + s * math.log(x) - math.lgamma(s))

def _upper_gamma_fraction(s: float, x: float) -> float:
    """Regularised upper incomplete gamma Q(s, x) via Lentz's continued
    fraction (valid for x > s + 1)."""
    tiny = 1e-300
    b = x + 1.0 - s
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        a_n = -i * (i - s)
        b += 2.0
        d = a_n * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + a_n / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-14:
            break
    return h * math.exp(-x + s * math.log(x) - math.lgamma(s))

def regularized_gamma_q(s: float, x: float) -> float:
    """Q(s, x) = 1 - P(s, x); the upper regularised incomplete gamma."""
    if s <= 0:
        raise ValueError(f"s must be positive: {s}")
    if x < 0:
        raise ValueError(f"x must be >= 0: {x}")
    if x == 0:
        return 1.0
    if x < s + 1.0:
        return 1.0 - _lower_gamma_series(s, x)
    return _upper_gamma_fraction(s, x)

def chi_square_sf(statistic: float, dof: int) -> float:
    """Chi-square survival function (p-value of the statistic)."""
    if dof < 1:
        raise ValueError(f"dof must be >= 1: {dof}")
    if statistic < 0:
        raise ValueError(f"statistic must be >= 0: {statistic}")
    return regularized_gamma_q(dof / 2.0, statistic / 2.0)


# --------------------------------------------------------------------------
# Distribution distances.
# --------------------------------------------------------------------------

def _normalise(distribution: Mapping[int, float]) -> Dict[int, float]:
    total = float(sum(distribution.values()))
    if total <= 0:
        raise ValueError("distribution has no mass")
    return {key: value / total for key, value in distribution.items()}

def jensen_shannon(
    p: Mapping[int, float], q: Mapping[int, float]
) -> float:
    """Jensen–Shannon divergence (base-2, in [0, 1]) of two discrete
    distributions given as {outcome: weight} mappings."""
    p_norm = _normalise(p)
    q_norm = _normalise(q)
    support = set(p_norm) | set(q_norm)
    divergence = 0.0
    for outcome in support:
        p_i = p_norm.get(outcome, 0.0)
        q_i = q_norm.get(outcome, 0.0)
        m_i = 0.5 * (p_i + q_i)
        if p_i > 0:
            divergence += 0.5 * p_i * math.log2(p_i / m_i)
        if q_i > 0:
            divergence += 0.5 * q_i * math.log2(q_i / m_i)
    return divergence


# --------------------------------------------------------------------------
# NiP distribution monitor (Fig. 1's detection signal).
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class NipAnomaly:
    """Result of one NiP-distribution evaluation."""

    sample_size: int
    jsd: float
    chi_square: float
    p_value: float
    #: Party sizes whose observed share exceeds baseline by the surge
    #: factor (the "sharp increase in reservations for groups of six").
    surging_nips: tuple
    alarm: bool


@dataclass
class NipDistributionMonitor:
    """Detects distributional shift in Number-in-Party.

    ``baseline`` is the average-week NiP mixture.  ``evaluate`` takes
    observed counts for a window and alarms when the chi-square test
    rejects at ``alpha`` *and* the JSD exceeds a practical floor (pure
    significance on huge samples would alarm on trivia).
    """

    baseline: Mapping[int, float]
    min_samples: int = 100
    alpha: float = 1e-4
    jsd_floor: float = 0.005
    surge_factor: float = 2.0
    surge_min_count: int = 10

    def evaluate(self, observed_counts: Mapping[int, int]) -> NipAnomaly:
        sample_size = int(sum(observed_counts.values()))
        if sample_size < self.min_samples:
            return NipAnomaly(sample_size, 0.0, 0.0, 1.0, (), False)

        baseline = _normalise(self.baseline)
        support = sorted(set(baseline) | set(observed_counts))
        # Chi-square goodness of fit against the baseline mixture.
        statistic = 0.0
        dof = 0
        floor = 1e-9
        for nip in support:
            expected = baseline.get(nip, floor) * sample_size
            if expected < 1.0:
                expected = 1.0  # guard tiny expected cells
            observed = observed_counts.get(nip, 0)
            statistic += (observed - expected) ** 2 / expected
            dof += 1
        dof = max(dof - 1, 1)
        p_value = chi_square_sf(statistic, dof)

        observed_shares = {
            nip: count / sample_size
            for nip, count in observed_counts.items()
        }
        jsd = jensen_shannon(baseline, observed_shares)

        surging = tuple(
            nip
            for nip in sorted(observed_counts)
            if observed_counts[nip] >= self.surge_min_count
            and observed_shares[nip]
            > self.surge_factor * baseline.get(nip, floor)
        )
        alarm = p_value < self.alpha and jsd >= self.jsd_floor
        return NipAnomaly(
            sample_size=sample_size,
            jsd=jsd,
            chi_square=statistic,
            p_value=p_value,
            surging_nips=surging,
            alarm=alarm,
        )


# --------------------------------------------------------------------------
# SMS country surge monitor (Table I's detection signal).
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class CountrySurge:
    """Before/after volume comparison for one destination country."""

    country_code: str
    baseline_count: int
    window_count: int

    @property
    def surge_percent(self) -> float:
        """Percentage increase over baseline (Table I's metric).

        A zero baseline with nonzero window volume is reported as an
        infinite surge.
        """
        if self.baseline_count == 0:
            return math.inf if self.window_count > 0 else 0.0
        return (
            (self.window_count - self.baseline_count)
            / self.baseline_count
            * 100.0
        )


@dataclass
class SmsSurgeMonitor:
    """Per-country SMS volume surge detection against a baseline window."""

    surge_alarm_percent: float = 500.0
    min_window_count: int = 20

    def evaluate(
        self,
        baseline_counts: Mapping[str, int],
        window_counts: Mapping[str, int],
    ) -> List[CountrySurge]:
        """Surges for every country seen in either window, sorted by
        descending surge percentage."""
        countries = set(baseline_counts) | set(window_counts)
        surges = [
            CountrySurge(
                country_code=country,
                baseline_count=int(baseline_counts.get(country, 0)),
                window_count=int(window_counts.get(country, 0)),
            )
            for country in countries
        ]
        surges.sort(
            key=lambda s: (-s.surge_percent, -s.window_count, s.country_code)
        )
        return surges

    def alarming(
        self,
        baseline_counts: Mapping[str, int],
        window_counts: Mapping[str, int],
    ) -> List[CountrySurge]:
        """Only the surges that cross the alarm thresholds."""
        return [
            surge
            for surge in self.evaluate(baseline_counts, window_counts)
            if surge.window_count >= self.min_window_count
            and surge.surge_percent >= self.surge_alarm_percent
        ]

    @staticmethod
    def global_increase_percent(
        baseline_counts: Mapping[str, int],
        window_counts: Mapping[str, int],
    ) -> float:
        """Overall volume increase (the paper's "around 25%")."""
        baseline_total = sum(baseline_counts.values())
        window_total = sum(window_counts.values())
        if baseline_total == 0:
            return math.inf if window_total else 0.0
        return (window_total - baseline_total) / baseline_total * 100.0


# --------------------------------------------------------------------------
# Generic EWMA rate monitor.
# --------------------------------------------------------------------------

class EwmaMonitor:
    """Exponentially-weighted moving average anomaly detector.

    Feed scalar observations in time order; :meth:`update` returns True
    when the new value deviates from the smoothed mean by more than
    ``z_threshold`` smoothed standard deviations (after a warm-up).
    """

    def __init__(
        self,
        alpha: float = 0.2,
        z_threshold: float = 4.0,
        warmup: int = 10,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1]: {alpha}")
        if warmup < 1:
            raise ValueError(f"warmup must be >= 1: {warmup}")
        self.alpha = alpha
        self.z_threshold = z_threshold
        self.warmup = warmup
        self._mean: Optional[float] = None
        self._variance = 0.0
        self._observations = 0

    def update(self, value: float) -> bool:
        """Ingest one observation; True when it is anomalous."""
        self._observations += 1
        if self._mean is None:
            self._mean = value
            return False
        deviation = value - self._mean
        anomalous = False
        if self._observations > self.warmup:
            std = math.sqrt(self._variance)
            if std > 0 and abs(deviation) > self.z_threshold * std:
                anomalous = True
        # Anomalous points still update the state (slowly poisoning the
        # baseline — a documented limitation of EWMA defenses).
        self._mean += self.alpha * deviation
        self._variance = (1 - self.alpha) * (
            self._variance + self.alpha * deviation * deviation
        )
        return anomalous

    @property
    def mean(self) -> float:
        return self._mean if self._mean is not None else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self._variance)
