"""Unsupervised session clustering (k-means from scratch).

The unsupervised branch of behaviour-based detection the paper cites
(Rovetta et al.: "Bot recognition in a web store: an approach based on
unsupervised learning"): cluster session feature vectors, then label a
whole cluster as bot when its centroid is behaviourally extreme
(volume/rate far above the population median).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ...ml.standardize import Standardiser
from ...web.logs import Session
from .features import FEATURE_NAMES, feature_matrix
from .verdict import Verdict


def kmeans(
    data: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iterations: int = 100,
) -> Tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm with k-means++ seeding.

    Returns ``(labels, centroids)``.  Deterministic given the generator.
    """
    n_samples = data.shape[0]
    if k < 1 or k > n_samples:
        raise ValueError(f"k must be in [1, {n_samples}]: {k}")

    # k-means++ seeding.
    centroids = np.empty((k, data.shape[1]))
    first = int(rng.integers(n_samples))
    centroids[0] = data[first]
    for index in range(1, k):
        distances = np.min(
            ((data[:, None, :] - centroids[None, :index, :]) ** 2).sum(
                axis=2
            ),
            axis=1,
        )
        total = distances.sum()
        if total <= 0:
            centroids[index] = data[int(rng.integers(n_samples))]
            continue
        probabilities = distances / total
        choice = int(rng.choice(n_samples, p=probabilities))
        centroids[index] = data[choice]

    labels = np.zeros(n_samples, dtype=int)
    for iteration in range(max_iterations):
        distances = ((data[:, None, :] - centroids[None, :, :]) ** 2).sum(
            axis=2
        )
        new_labels = distances.argmin(axis=1)
        if np.array_equal(new_labels, labels) and iteration > 0:
            break
        labels = new_labels
        # Distance of each point to its assigned centroid, before the
        # update — the re-seeding pool for starved clusters.
        assigned_distances = distances[np.arange(n_samples), labels]
        for cluster in range(k):
            members = data[labels == cluster]
            if len(members):
                centroids[cluster] = members.mean(axis=0)
                continue
            # A cluster can lose every member once centroids move;
            # leaving its stale centroid would silently return fewer
            # than k effective clusters.  Re-seed it at the point
            # farthest from its own centroid (the classic repair),
            # unless every point already sits exactly on one.
            farthest = int(assigned_distances.argmax())
            if assigned_distances[farthest] <= 0.0:
                continue
            centroids[cluster] = data[farthest]
            labels[farthest] = cluster
            assigned_distances[farthest] = 0.0
    return labels, centroids


@dataclass(frozen=True)
class ClusteringConfig:
    k: int = 4
    #: A cluster is bot-labelled when its centroid rate or volume exceeds
    #: this multiple of the population median.
    extremity_factor: float = 8.0


class ClusteringDetector:
    """K-means over session features with extreme-cluster labelling.

    Subjects are session ids.
    """

    name = "kmeans-behaviour"

    def __init__(
        self,
        rng: np.random.Generator,
        config: ClusteringConfig = ClusteringConfig(),
    ) -> None:
        self.config = config
        self._rng = rng

    def judge_all(self, sessions: Sequence[Session]) -> List[Verdict]:
        sessions = list(sessions)
        return self.judge_matrix(
            [session.session_id for session in sessions],
            feature_matrix(sessions),
        )

    def judge_index(self, index) -> List[Verdict]:
        """Judge a :class:`~repro.core.detection.session_index.
        SessionIndex` — verdict- and RNG-stream-identical to
        :meth:`judge_all` on the corresponding sessions."""
        return self.judge_matrix(index.session_ids, index.matrix)

    def judge_matrix(
        self, session_ids: Sequence[str], matrix: np.ndarray
    ) -> List[Verdict]:
        if len(session_ids) < self.config.k:
            return [
                Verdict(session_id, self.name, 0.0, False)
                for session_id in session_ids
            ]

        # Standardise so distance is not dominated by large-scale
        # features (constant-column-safe, see repro.ml.standardize;
        # distances are invariant to the constant-column anchoring).
        labels, _ = kmeans(
            Standardiser.fit(matrix).transform(matrix),
            self.config.k,
            self._rng,
        )

        count_index = FEATURE_NAMES.index("request_count")
        rate_index = FEATURE_NAMES.index("requests_per_minute")
        median_count = max(float(np.median(matrix[:, count_index])), 1.0)
        median_rate = max(float(np.median(matrix[:, rate_index])), 0.1)

        bot_clusters = set()
        for cluster in range(self.config.k):
            members = matrix[labels == cluster]
            if not len(members):
                continue
            centroid_count = float(members[:, count_index].mean())
            centroid_rate = float(members[:, rate_index].mean())
            if (
                centroid_count
                > self.config.extremity_factor * median_count
                or centroid_rate
                > self.config.extremity_factor * median_rate
            ):
                bot_clusters.add(cluster)

        verdicts = []
        for session_id, label in zip(session_ids, labels):
            flagged = int(label) in bot_clusters
            verdicts.append(
                Verdict(
                    subject_id=session_id,
                    detector=self.name,
                    score=1.0 if flagged else 0.0,
                    is_bot=flagged,
                    reasons=(f"cluster-{int(label)}",) if flagged else (),
                )
            )
        return verdicts
