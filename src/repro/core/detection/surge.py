"""Per-destination surge detection (Case E's defense).

Jakobsson & Menczer's cluster bomb points thousands of open
form/notification endpoints at one victim; from the application's side
the attack is a *destination* anomaly — one phone number suddenly
receiving orders of magnitude more notifications than any destination
ever does.  :class:`DestinationSurgeScorer` watches the SMS gateway's
notification records in fixed time windows and convicts the senders
feeding a surging destination, via two complementary triggers:

* an **absolute flood floor** — ``flood_threshold`` messages to one
  destination inside a single window is a flood no matter what history
  says (this is what catches a cold-start cluster bomb mid-window,
  before any baseline exists);
* a **per-destination EWMA baseline** (the
  :class:`~repro.core.detection.anomaly.EwmaMonitor` machinery) over
  per-window counts — a slow-ramp attacker who stays under the flood
  floor still z-scores out of its own destination's history.

Like the number-reputation family, the scorer is a pure function of
the record sequence: batch (:func:`~repro.core.detection.numbers.
score_sms_records`) and streaming (a :class:`~repro.stream.feed.
RecordFeed` drained per log entry) produce identical verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ...sms.gateway import NOTIFICATION, SmsRecord
from .anomaly import EwmaMonitor
from .subjects import entity_subject
from .verdict import Verdict

DESTINATION_SURGE = "destination-surge"


@dataclass(frozen=True)
class SurgeEvent:
    """One destination crossing a surge trigger."""

    time: float
    destination: str
    window_count: int
    trigger: str  # "flood" or "ewma"


class DestinationSurgeScorer:
    """Incremental per-destination notification surge detection."""

    name = DESTINATION_SURGE

    def __init__(
        self,
        window: float = 600.0,
        flood_threshold: int = 30,
        ewma_alpha: float = 0.2,
        ewma_z_threshold: float = 4.0,
        ewma_warmup: int = 3,
        ewma_min_count: int = 10,
        kinds: Tuple[str, ...] = (NOTIFICATION,),
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive: {window}")
        if flood_threshold < 2:
            raise ValueError(
                f"flood_threshold must be >= 2: {flood_threshold}"
            )
        self.window = window
        self.flood_threshold = flood_threshold
        self.ewma_alpha = ewma_alpha
        self.ewma_z_threshold = ewma_z_threshold
        self.ewma_warmup = ewma_warmup
        self.ewma_min_count = ewma_min_count
        self.kinds = kinds
        self._window_index: int = -1
        #: Current-window state per destination: count + contributing
        #: fingerprints in first-seen order.
        self._counts: Dict[str, int] = {}
        self._contributors: Dict[str, Dict[str, None]] = {}
        self._monitors: Dict[str, EwmaMonitor] = {}
        #: Destinations currently under surge; senders touching them
        #: are convicted on contact.
        self._surging: set = set()
        self._convicted: set = set()
        self.surge_events: List[SurgeEvent] = []
        self.records_seen = 0

    # -- record intake -------------------------------------------------------

    def observe(self, record: SmsRecord) -> List[Verdict]:
        """Ingest one gateway record (time order); returns any new
        entity convictions."""
        if record.kind not in self.kinds:
            return []
        self.records_seen += 1
        verdicts: List[Verdict] = []
        index = int(record.time // self.window)
        if index != self._window_index:
            verdicts.extend(self._close_window())
            self._window_index = index

        destination = record.number.e164
        fingerprint_id = record.client.fingerprint_id
        if destination in self._surging:
            verdicts.extend(
                self._convict(
                    [fingerprint_id], f"surging-destination:{destination}"
                )
            )
            return verdicts

        count = self._counts.get(destination, 0) + 1
        self._counts[destination] = count
        self._contributors.setdefault(destination, {})[
            fingerprint_id
        ] = None
        if count >= self.flood_threshold:
            # Mid-window flood: convict without waiting for the window
            # to close — this is the trigger fast enough for online
            # mitigation while the bomb is still falling.
            verdicts.extend(
                self._open_surge(record.time, destination, count, "flood")
            )
        return verdicts

    def finish(self) -> List[Verdict]:
        """End of records: evaluate the final (partial) window."""
        return self._close_window()

    # -- internals -----------------------------------------------------------

    def _close_window(self) -> List[Verdict]:
        """Feed the finished window's per-destination counts into their
        EWMA baselines and open surges on anomalous destinations."""
        verdicts: List[Verdict] = []
        window_end = (self._window_index + 1) * self.window
        for destination in sorted(self._counts):
            count = self._counts[destination]
            monitor = self._monitors.get(destination)
            if monitor is None:
                monitor = EwmaMonitor(
                    alpha=self.ewma_alpha,
                    z_threshold=self.ewma_z_threshold,
                    warmup=self.ewma_warmup,
                )
                self._monitors[destination] = monitor
            anomalous = monitor.update(float(count))
            if anomalous and count >= self.ewma_min_count:
                verdicts.extend(
                    self._open_surge(
                        window_end, destination, count, "ewma"
                    )
                )
        self._counts = {}
        self._contributors = {}
        return verdicts

    def _open_surge(
        self, time: float, destination: str, count: int, trigger: str
    ) -> List[Verdict]:
        self._surging.add(destination)
        self.surge_events.append(
            SurgeEvent(
                time=time,
                destination=destination,
                window_count=count,
                trigger=trigger,
            )
        )
        contributors = list(self._contributors.get(destination, {}))
        return self._convict(
            contributors,
            f"destination-surge:{trigger}:{count}-in-"
            f"{self.window:.0f}s:{destination}",
        )

    def _convict(
        self, fingerprint_ids: List[str], reason: str
    ) -> List[Verdict]:
        verdicts = []
        for fingerprint_id in fingerprint_ids:
            if fingerprint_id in self._convicted:
                continue
            self._convicted.add(fingerprint_id)
            verdicts.append(
                Verdict(
                    subject_id=entity_subject(fingerprint_id),
                    detector=self.name,
                    score=1.0,
                    is_bot=True,
                    reasons=(reason,),
                )
            )
        return verdicts

    # -- introspection -------------------------------------------------------

    @property
    def convicted_fingerprints(self) -> List[str]:
        return sorted(self._convicted)

    @property
    def surging_destinations(self) -> List[str]:
        return sorted(self._surging)
