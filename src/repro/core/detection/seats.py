"""Seat-level abuse heuristics.

On flights with seat maps, *which* seats a client keeps holding is a
behavioural signal of its own: genuine passengers want windows and
aisles; the middle-seat hoarding trick (paper citation [11]) produces
clients whose holds are overwhelmingly middle seats — the seats nobody
chooses voluntarily.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ...booking.holds import Hold
from ...booking.seatmap import MIDDLE
from .verdict import Verdict


@dataclass
class SeatHoardingConfig:
    """Thresholds for the middle-seat hoarding rule."""

    #: Minimum seats held (with assignments) before judging a client.
    min_seats: int = 6
    #: Minimum distinct holds: hoarding is a pattern *across bookings*;
    #: one unlucky family assigned leftover middle seats must not trip.
    min_holds: int = 3
    #: Middle-seat share above which the pattern is flagged (genuine
    #: random assignment gives ~1/3; voluntary choice gives far less).
    middle_share_threshold: float = 0.7

    def __post_init__(self) -> None:
        if self.min_seats < 1:
            raise ValueError(f"min_seats must be >= 1: {self.min_seats}")
        if self.min_holds < 1:
            raise ValueError(f"min_holds must be >= 1: {self.min_holds}")
        if not 0.0 < self.middle_share_threshold <= 1.0:
            raise ValueError(
                "middle_share_threshold must be in (0, 1]: "
                f"{self.middle_share_threshold}"
            )


class SeatHoardingDetector:
    """Flags clients whose seat holds concentrate on middle seats.

    Subjects are fingerprint ids (the stable identity across one
    manual attacker's bookings — Section IV-B notes they used only one
    or two personal devices).
    """

    name = "seat-hoarding"

    def __init__(
        self, config: SeatHoardingConfig = SeatHoardingConfig()
    ) -> None:
        self.config = config

    def judge_holds(self, holds: Sequence[Hold]) -> List[Verdict]:
        """One verdict per fingerprint id with enough seat data."""
        seats_by_client: Dict[str, List] = defaultdict(list)
        holds_by_client: Dict[str, int] = defaultdict(int)
        for hold in holds:
            if hold.seats:
                seats_by_client[hold.client.fingerprint_id].extend(
                    hold.seats
                )
                holds_by_client[hold.client.fingerprint_id] += 1
        verdicts = []
        for fingerprint_id in sorted(seats_by_client):
            seats = seats_by_client[fingerprint_id]
            if len(seats) < self.config.min_seats:
                continue
            if holds_by_client[fingerprint_id] < self.config.min_holds:
                continue
            middle_share = sum(
                1 for seat in seats if seat.position == MIDDLE
            ) / len(seats)
            is_bot = (
                middle_share >= self.config.middle_share_threshold
            )
            verdicts.append(
                Verdict(
                    subject_id=fingerprint_id,
                    detector=self.name,
                    score=min(middle_share, 1.0),
                    is_bot=is_bot,
                    reasons=(
                        (
                            f"middle-seat-share-{middle_share:.0%}"
                            f"-over-{len(seats)}-seats",
                        )
                        if is_bot
                        else ()
                    ),
                )
            )
        return verdicts

    def flagged_fingerprints(self, holds: Sequence[Hold]) -> List[str]:
        return [
            verdict.subject_id
            for verdict in self.judge_holds(holds)
            if verdict.is_bot
        ]
