"""Common detector output type.

Every detector in :mod:`repro.core.detection` — whatever signal family
it works on — emits :class:`Verdict` objects so downstream code
(mitigation controller, evaluation harness) can treat them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class Verdict:
    """One detector's judgement about one subject.

    ``subject_id`` identifies what was judged (a session id, a
    fingerprint id, a hold id, ...) — detectors document which.
    ``score`` is in [0, 1]; ``is_bot`` applies the detector's own
    threshold.  ``reasons`` are human-readable rule identifiers.
    """

    subject_id: str
    detector: str
    score: float
    is_bot: bool
    reasons: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise ValueError(f"score must be in [0, 1]: {self.score}")
