"""Fingerprint block-rule management and effectiveness measurement.

Wraps the application's edge block list with the bookkeeping the Case A
analysis needs: which rules were deployed when, when each stopped
matching (the attacker rotated past it), and the resulting
effectiveness-window statistics — the paper's measured "average of
5.3 hours" per rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ...identity.fingerprint import Fingerprint
from ...web.application import WebApplication
from ..detection.fingerprint_rules import (
    block_by_attribute_combo,
    block_by_fingerprint_id,
    block_by_ip,
)


@dataclass(frozen=True)
class RuleEffectiveness:
    """Lifetime summary of one block rule."""

    rule_id: str
    deployed_at: float
    last_matched_at: Optional[float]
    matches: int

    @property
    def effective_window(self) -> Optional[float]:
        """Seconds between deployment and the last observed match.

        ``None`` when the rule never matched (deployed too late or too
        narrow).  For a rotating attacker this window is the time the
        rule actually bit before rotation made it dead weight.
        """
        if self.last_matched_at is None:
            return None
        return self.last_matched_at - self.deployed_at


class BlockRuleManager:
    """Deploys and audits fingerprint/IP block rules on the edge."""

    def __init__(self, app: WebApplication) -> None:
        self.app = app
        self._blocked_fingerprints: Set[str] = set()
        self._blocked_ips: Set[str] = set()
        self._counter = 0

    # -- deployment -----------------------------------------------------------

    def block_fingerprint_id(self, fingerprint_id: str) -> Optional[str]:
        """Deploy an exact fingerprint-id block (None if already blocked)."""
        if fingerprint_id in self._blocked_fingerprints:
            return None
        self._blocked_fingerprints.add(fingerprint_id)
        self._counter += 1
        rule_id = f"fp-block-{self._counter:04d}"
        self.app.add_block_rule(
            rule_id, block_by_fingerprint_id(fingerprint_id)
        )
        return rule_id

    def block_attribute_combo(self, reference: Fingerprint) -> str:
        """Deploy a broader attribute-combination block."""
        self._counter += 1
        rule_id = f"combo-block-{self._counter:04d}"
        self.app.add_block_rule(rule_id, block_by_attribute_combo(reference))
        return rule_id

    def block_ip(self, ip_address: str) -> Optional[str]:
        if ip_address in self._blocked_ips:
            return None
        self._blocked_ips.add(ip_address)
        self._counter += 1
        rule_id = f"ip-block-{self._counter:04d}"
        self.app.add_block_rule(rule_id, block_by_ip(ip_address))
        return rule_id

    @property
    def rules_deployed(self) -> int:
        return self._counter

    def is_blocked(self, fingerprint_id: str) -> bool:
        return fingerprint_id in self._blocked_fingerprints

    # -- auditing -------------------------------------------------------------

    def effectiveness(self) -> List[RuleEffectiveness]:
        """Per-rule effectiveness windows from edge bookkeeping."""
        return [
            RuleEffectiveness(
                rule_id=rule.rule_id,
                deployed_at=rule.deployed_at,
                last_matched_at=rule.last_matched_at,
                matches=rule.matches,
            )
            for rule in self.app.block_rules()
        ]

    def mean_effective_window(self) -> Optional[float]:
        """Mean effectiveness window across rules that ever matched —
        directly comparable to the paper's 5.3 h figure."""
        windows = [
            summary.effective_window
            for summary in self.effectiveness()
            if summary.effective_window is not None
        ]
        if not windows:
            return None
        return sum(windows) / len(windows)
