"""Online verdict intake: mitigation while the attack is running.

The periodic :class:`~repro.core.mitigation.controller.MitigationController`
re-reads logs on a timer; this sink instead receives fused verdicts
from :class:`repro.stream.pipeline.StreamPipeline` the moment a subject
crosses the bot threshold, and deploys the block (or honeypot routing)
immediately — the paper's defenses all fired on live traffic, and
time-to-first-block is the metric the streaming scenario headline pins.

Only *entity* subjects (``fp:<fingerprint_id>``) are actionable: a
session verdict arrives after its client has gone idle, so it is
recorded but cannot be turned into a useful edge rule.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ...core.detection.verdict import Verdict
from ...web.application import WebApplication
from ..mitigation.blocking import BlockRuleManager
from ..mitigation.controller import MitigationAction
from ..mitigation.honeypot import HoneypotManager
from ...stream.adapters import FP_SUBJECT_PREFIX

if TYPE_CHECKING:  # typing only: keep core free of a runtime graph dep
    from ...graph.campaigns import Campaign


class OnlineVerdictSink:
    """Turns streaming convictions into immediate edge mitigations."""

    def __init__(
        self,
        app: WebApplication,
        honeypot_mode: bool = False,
        max_actions: Optional[int] = None,
    ) -> None:
        self.app = app
        self.honeypot_mode = honeypot_mode
        self.max_actions = max_actions
        self.blocks = BlockRuleManager(app)
        self.honeypot = HoneypotManager(app)
        if honeypot_mode:
            self.honeypot.install()
        self.timeline: List[MitigationAction] = []
        self.first_block_time: Optional[float] = None
        self.session_verdicts_ignored = 0

    def handle(self, verdict: Verdict, now: float) -> None:
        """One fused bot verdict from the stream pipeline."""
        if not verdict.subject_id.startswith(FP_SUBJECT_PREFIX):
            self.session_verdicts_ignored += 1
            return
        if (
            self.max_actions is not None
            and len(self.timeline) >= self.max_actions
        ):
            return
        fingerprint_id = verdict.subject_id[len(FP_SUBJECT_PREFIX):]
        if self.honeypot_mode:
            if fingerprint_id in self.honeypot._suspect_fingerprints:
                return
            self.honeypot.add_suspect_fingerprint(fingerprint_id)
            kind = "stream-honeypot-suspect"
        else:
            if self.blocks.block_fingerprint_id(fingerprint_id) is None:
                return
            kind = "stream-fingerprint-block"
        if self.first_block_time is None:
            self.first_block_time = now
        self.timeline.append(
            MitigationAction(
                time=now,
                kind=kind,
                detail=(
                    f"{fingerprint_id} fused score "
                    f"{verdict.score:.3f} ({', '.join(verdict.reasons)})"
                ),
            )
        )

    def handle_campaign(self, campaign: "Campaign", now: float) -> None:
        """Cluster-level mitigation: act on every member fingerprint.

        Campaign detection's whole advantage is convicting the
        identities a per-session view cannot tie together, so the
        response is cluster-wide — one action covering all member
        fingerprints at once, rather than waiting for each to earn an
        individual conviction.
        """
        if (
            self.max_actions is not None
            and len(self.timeline) >= self.max_actions
        ):
            return
        acted = []
        for fingerprint_id in campaign.fingerprint_ids:
            if self.honeypot_mode:
                if fingerprint_id in self.honeypot._suspect_fingerprints:
                    continue
                self.honeypot.add_suspect_fingerprint(fingerprint_id)
            else:
                if self.blocks.block_fingerprint_id(fingerprint_id) is None:
                    continue
            acted.append(fingerprint_id)
        if not acted:
            return
        if self.first_block_time is None:
            self.first_block_time = now
        kind = (
            "stream-campaign-honeypot"
            if self.honeypot_mode
            else "stream-campaign-block"
        )
        self.timeline.append(
            MitigationAction(
                time=now,
                kind=kind,
                detail=(
                    f"{campaign.campaign_id} risk {campaign.risk:.3f}: "
                    f"{len(acted)} fingerprint(s) "
                    f"({', '.join(sorted(acted))})"
                ),
            )
        )

    @property
    def actions_taken(self) -> int:
        return len(self.timeline)
