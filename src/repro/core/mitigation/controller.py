"""The closed-loop mitigation controller.

Automates the defender's side of the paper's arms race: every
``interval`` it re-reads the booking and SMS logs, runs the anomaly
monitors, and deploys mitigations from its playbook.

The Case A loop it reproduces: NiP-distribution alarm → cap NiP; holds
concentrating on a few fingerprints → deploy fingerprint blocks; the
attacker rotates; the next evaluation finds the new fingerprints and
blocks again — "each new countermeasure was only effective for a
limited period before attackers adapted."

The Case C loop: per-country SMS surge alarm → per-booking-reference
rate limit → if the surge persists, remove the SMS feature.

With ``honeypot_mode`` the controller routes suspects into the decoy
inventory instead of blocking them (the Section V economic deterrent).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Mapping, Optional

from ...sim.clock import HOUR, WEEK
from ...sim.events import EventLoop
from ...sms.gateway import BOARDING_PASS as BOARDING_PASS_KIND
from ...sim.process import Process
from ...web.application import WebApplication
from ...web.ratelimit import key_by_booking_ref, key_by_profile
from ...web.request import BOARDING_PASS_SMS
from ..detection.anomaly import NipDistributionMonitor, SmsSurgeMonitor
from ..detection.fingerprint_rules import (
    FingerprintDetector,
    block_by_booking_ref,
)
from ..detection.geo_velocity import GeoVelocityConfig, GeoVelocityDetector
from .blocking import BlockRuleManager
from .honeypot import HoneypotManager
from .policies import NipCapPolicy, RateLimitPolicy, SmsFeatureTogglePolicy


@dataclass(frozen=True)
class MitigationAction:
    """One timeline entry: what the controller did and why."""

    time: float
    kind: str
    detail: str


@dataclass
class ControllerConfig:
    """Playbook and cadence for the controller."""

    interval: float = 1.0 * HOUR
    window: float = 6.0 * HOUR

    # -- DoI playbook --
    baseline_nip: Optional[Mapping[int, float]] = None
    enable_nip_cap: bool = True
    nip_cap_value: int = 4
    enable_fingerprint_blocks: bool = True
    holds_per_fingerprint_threshold: int = 3
    max_blocks_per_step: int = 10
    enable_artifact_blocks: bool = True
    honeypot_mode: bool = False

    # -- SMS playbook --
    enable_sms_monitor: bool = False
    #: Expected *weekly* legitimate SMS counts per country.
    sms_weekly_baseline: Optional[Mapping[str, int]] = None
    sms_surge_alarm_percent: float = 500.0
    sms_min_window_count: int = 20
    #: Stage 1: per-booking-ref limit on boarding-pass SMS.
    sms_per_ref_limit: int = 5
    sms_per_ref_window: float = 24.0 * HOUR
    #: Stage 2: per-profile limit (the control the paper says was
    #: missing in Case C).
    enable_per_profile_limit: bool = False
    sms_per_profile_limit: int = 10
    #: Stage 3: consecutive alarming evaluations before removing the
    #: feature entirely.
    sms_disable_after_alarms: int = 3

    # -- geo-velocity playbook (baseline-free SMS pumping detection) --
    #: Block booking references exhibiting impossible travel.  Unlike
    #: the surge monitor this needs *no* per-country baseline — the
    #: physics violation is self-evident.
    enable_geo_velocity: bool = False
    geo_velocity: GeoVelocityConfig = field(
        default_factory=GeoVelocityConfig
    )


class MitigationController(Process):
    """Periodic detect-and-respond loop over one application."""

    def __init__(
        self,
        loop: EventLoop,
        app: WebApplication,
        config: ControllerConfig,
        name: str = "mitigation-controller",
    ) -> None:
        super().__init__(loop, name=name)
        self.app = app
        self.config = config
        self.blocks = BlockRuleManager(app)
        self.honeypot = HoneypotManager(app)
        if config.honeypot_mode:
            self.honeypot.install()
        self._fingerprint_detector = FingerprintDetector()
        self._nip_monitor = (
            NipDistributionMonitor(baseline=dict(config.baseline_nip))
            if config.baseline_nip is not None
            else None
        )
        self._sms_monitor = SmsSurgeMonitor(
            surge_alarm_percent=config.sms_surge_alarm_percent,
            min_window_count=config.sms_min_window_count,
        )
        self.timeline: List[MitigationAction] = []
        self._nip_cap_policy: Optional[NipCapPolicy] = None
        # Cursor into app.fingerprint_arrivals: everything before it has
        # been judged by the artifact rule already.
        self._artifact_cursor = 0
        self._sms_alarm_streak = 0
        self._sms_stage = 0  # 0=none, 1=rate limits, 2=feature disabled
        self._geo_detector = GeoVelocityDetector(config.geo_velocity)
        self._geo_blocked_refs: set = set()

    # -- helpers -----------------------------------------------------------

    def _act(self, kind: str, detail: str) -> None:
        self.timeline.append(
            MitigationAction(time=self.loop.now, kind=kind, detail=detail)
        )

    def actions(self, kind: Optional[str] = None) -> List[MitigationAction]:
        if kind is None:
            return list(self.timeline)
        return [action for action in self.timeline if action.kind == kind]

    # -- main loop ------------------------------------------------------------

    def step(self) -> Optional[float]:
        now = self.loop.now
        window_start = now - self.config.window
        self.app.reservations.expire_due()

        self._evaluate_nip(window_start)
        self._evaluate_fingerprints(window_start)
        if self.config.enable_sms_monitor:
            self._evaluate_sms(window_start)
        if self.config.enable_geo_velocity:
            self._evaluate_geo_velocity(window_start)
        return self.config.interval

    # -- DoI branch ---------------------------------------------------------------

    def _recent_holds(self, window_start: float):
        return [
            record
            for record in self.app.reservations.records_since(window_start)
            if record.outcome == "held"
        ]

    def _evaluate_nip(self, window_start: float) -> None:
        if self._nip_monitor is None or not self.config.enable_nip_cap:
            return
        if self._nip_cap_policy is not None:
            return  # cap already deployed
        counts = Counter(r.nip for r in self._recent_holds(window_start))
        anomaly = self._nip_monitor.evaluate(counts)
        if anomaly.alarm:
            self._nip_cap_policy = NipCapPolicy(self.config.nip_cap_value)
            self._nip_cap_policy.apply(self.app)
            self._act(
                "nip-cap",
                f"NiP anomaly (jsd={anomaly.jsd:.4f}, surging="
                f"{list(anomaly.surging_nips)}); capped at "
                f"{self.config.nip_cap_value}",
            )

    def _evaluate_fingerprints(self, window_start: float) -> None:
        if not self.config.enable_fingerprint_blocks:
            return
        deployed = 0

        # Frequency rule: one browser identity creating many holds in a
        # short window is not a human shopper.
        holds_by_fingerprint = Counter(
            record.client.fingerprint_id
            for record in self._recent_holds(window_start)
        )
        for fingerprint_id, count in holds_by_fingerprint.most_common():
            if deployed >= self.config.max_blocks_per_step:
                break
            if count < self.config.holds_per_fingerprint_threshold:
                break
            if self._handle_suspect(fingerprint_id):
                deployed += 1
                self._act(
                    "honeypot-suspect"
                    if self.config.honeypot_mode
                    else "fingerprint-block",
                    f"{fingerprint_id} made {count} holds in window",
                )

        # Artifact rule: anything tripping headless/inconsistency checks.
        # Each fingerprint is judged once, when first seen at the edge:
        # the cursor resumes where the previous evaluation stopped, so
        # each step only pays for fingerprints that arrived since.
        if self.config.enable_artifact_blocks:
            arrivals = self.app.fingerprint_arrivals
            judge = self._fingerprint_detector.judge
            for fingerprint_id, fingerprint in arrivals[
                self._artifact_cursor:
            ]:
                if not judge(fingerprint).is_bot:
                    continue
                if self._handle_suspect(fingerprint_id):
                    self._act(
                        "artifact-block",
                        f"{fingerprint_id} trips automation artifacts",
                    )
            self._artifact_cursor = len(arrivals)

    def _handle_suspect(self, fingerprint_id: str) -> bool:
        """Block or honeypot one fingerprint; False if already handled."""
        if self.config.honeypot_mode:
            if fingerprint_id in self.honeypot._suspect_fingerprints:
                return False
            self.honeypot.add_suspect_fingerprint(fingerprint_id)
            return True
        return self.blocks.block_fingerprint_id(fingerprint_id) is not None

    # -- SMS branch ------------------------------------------------------------------

    def _evaluate_sms(self, window_start: float) -> None:
        baseline_weekly = self.config.sms_weekly_baseline or {}
        window_length = self.loop.now - window_start
        scale = window_length / WEEK
        baseline_window = {
            country: max(int(round(count * scale)), 0)
            for country, count in baseline_weekly.items()
        }
        window_counts = Counter(
            record.country_code
            for record in self.app.sms.records_between(
                window_start, self.loop.now
            )
        )
        alarming = self._sms_monitor.alarming(baseline_window, window_counts)
        if not alarming:
            self._sms_alarm_streak = 0
            return
        self._sms_alarm_streak += 1
        top = alarming[0]
        detail = (
            f"{len(alarming)} countries surging; worst {top.country_code} "
            f"+{top.surge_percent:.0f}%"
        )

        if self._sms_stage == 0:
            RateLimitPolicy(
                rule_id="bp-sms-per-booking-ref",
                key_fn=key_by_booking_ref,
                limit=self.config.sms_per_ref_limit,
                window=self.config.sms_per_ref_window,
                paths=(BOARDING_PASS_SMS,),
            ).apply(self.app)
            if self.config.enable_per_profile_limit:
                RateLimitPolicy(
                    rule_id="bp-sms-per-profile",
                    key_fn=key_by_profile,
                    limit=self.config.sms_per_profile_limit,
                    window=self.config.sms_per_ref_window,
                    paths=(BOARDING_PASS_SMS,),
                ).apply(self.app)
            self._sms_stage = 1
            self._act("sms-rate-limit", detail)
            return

        if (
            self._sms_stage == 1
            and self._sms_alarm_streak >= self.config.sms_disable_after_alarms
        ):
            SmsFeatureTogglePolicy(BOARDING_PASS_KIND).apply(self.app)
            self._sms_stage = 2
            self._act("sms-feature-disabled", detail)

    def _evaluate_geo_velocity(self, window_start: float) -> None:
        """Baseline-free SMS pumping detection: block booking
        references whose request origins violate travel physics."""
        records = self.app.sms.records_between(window_start, self.loop.now)
        for key in self._geo_detector.flagged_keys(records):
            if key in self._geo_blocked_refs:
                continue
            self._geo_blocked_refs.add(key)
            rule_id = f"geo-ref-block-{len(self._geo_blocked_refs):04d}"
            self.app.add_block_rule(rule_id, block_by_booking_ref(key))
            self._act(
                "geo-velocity-block",
                f"booking ref {key} shows impossible travel",
            )
