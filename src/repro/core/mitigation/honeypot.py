"""Honeypot / decoy-inventory mitigation (Section V's proposal).

Instead of blocking a suspected Denial-of-Inventory client — which
teaches the attacker to rotate — the application silently serves their
hold requests from a *shadow* inventory: the response is
indistinguishable from success, no real seat moves, and legitimate
customers keep buying.  "Attackers waste resources believing to hold
items in a false environment while legitimate users remain unaffected
... their need to rotate fingerprints or adjust tactics diminishes."

:class:`HoneypotManager` owns the suspect lists and installs the
routing decision on the application.
"""

from __future__ import annotations

from typing import Set

from ...web.application import WebApplication
from ...web.request import Request


class HoneypotManager:
    """Routes suspect clients' holds into the shadow inventory."""

    def __init__(self, app: WebApplication) -> None:
        self.app = app
        self._suspect_fingerprints: Set[str] = set()
        self._suspect_ips: Set[str] = set()
        self.redirected_requests = 0
        self._installed = False

    # -- suspect management -------------------------------------------------

    def add_suspect_fingerprint(self, fingerprint_id: str) -> None:
        self._suspect_fingerprints.add(fingerprint_id)

    def add_suspect_ip(self, ip_address: str) -> None:
        self._suspect_ips.add(ip_address)

    def is_suspect(self, request: Request) -> bool:
        return (
            request.client.fingerprint_id in self._suspect_fingerprints
            or request.client.ip_address in self._suspect_ips
        )

    @property
    def suspect_count(self) -> int:
        return len(self._suspect_fingerprints) + len(self._suspect_ips)

    # -- installation ----------------------------------------------------------

    def install(self) -> None:
        """Install the honeypot router on the application."""
        if self._installed:
            raise RuntimeError("honeypot already installed")

        def router(request: Request) -> bool:
            if self.is_suspect(request):
                self.redirected_requests += 1
                return True
            return False

        self.app.honeypot_router = router
        self._installed = True

    def uninstall(self) -> None:
        if not self._installed:
            raise RuntimeError("honeypot is not installed")
        self.app.honeypot_router = None
        self._installed = False

    # -- audit -------------------------------------------------------------------

    def shadow_hold_count(self) -> int:
        """Holds currently recorded against the shadow inventory."""
        return sum(
            1
            for hold in self.app.reservations.holds.all_holds()
            if hold.shadow
        )

    def shadow_seats_absorbed(self) -> int:
        """Seat-count the honeypot absorbed instead of real inventory."""
        return sum(
            hold.nip
            for hold in self.app.reservations.holds.all_holds()
            if hold.shadow
        )
