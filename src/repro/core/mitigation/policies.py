"""Deployable mitigation policies (Section V's best-practice toolbox).

Each policy is a reversible change to the application or a substrate:

* :class:`NipCapPolicy` — cap passengers per reservation (the Fig. 1
  mitigation),
* :class:`RateLimitPolicy` — ad-hoc rate limiting on any key dimension,
* :class:`FeatureRestrictionPolicy` — limit high-risk features to
  trusted (e.g. loyalty) users,
* :class:`CaptchaPolicy` — extra anti-bot friction at critical points,
* :class:`SmsFeatureTogglePolicy` — remove an SMS feature outright
  (the Case C emergency response),
* :class:`HoldTtlPolicy` — shorten the seat-hold duration.

All policies share the tiny :class:`MitigationPolicy` interface so the
controller can deploy and roll back uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Optional, Tuple

from ...identity.captcha import CaptchaGateModel
from ...web.application import WebApplication
from ...web.ratelimit import KeyFunction, RateLimitRule
from ...web.request import Request


class MitigationPolicy(ABC):
    """A reversible defensive change."""

    def __init__(self, label: str) -> None:
        self.label = label
        self.applied = False

    @abstractmethod
    def apply(self, app: WebApplication) -> None:
        """Deploy the policy (idempotent: re-applying is an error)."""

    @abstractmethod
    def revert(self, app: WebApplication) -> None:
        """Roll the policy back."""

    def _mark_applied(self) -> None:
        if self.applied:
            raise RuntimeError(f"policy {self.label!r} already applied")
        self.applied = True

    def _mark_reverted(self) -> None:
        if not self.applied:
            raise RuntimeError(f"policy {self.label!r} is not applied")
        self.applied = False


class NipCapPolicy(MitigationPolicy):
    """Cap the maximum Number-in-Party."""

    def __init__(self, cap: int) -> None:
        super().__init__(label=f"nip-cap-{cap}")
        if cap < 1:
            raise ValueError(f"cap must be >= 1: {cap}")
        self.cap = cap
        self._previous: Optional[int] = None

    def apply(self, app: WebApplication) -> None:
        self._mark_applied()
        self._previous = app.reservations.max_nip
        app.reservations.set_max_nip(self.cap)

    def revert(self, app: WebApplication) -> None:
        self._mark_reverted()
        assert self._previous is not None
        app.reservations.set_max_nip(self._previous)


class RateLimitPolicy(MitigationPolicy):
    """Add one keyed sliding-window rate-limit rule."""

    def __init__(
        self,
        rule_id: str,
        key_fn: KeyFunction,
        limit: int,
        window: float,
        paths: Tuple[str, ...] = (),
    ) -> None:
        super().__init__(label=f"rate-limit:{rule_id}")
        self.rule = RateLimitRule(
            rule_id=rule_id,
            key_fn=key_fn,
            limit=limit,
            window=window,
            paths=paths,
        )

    def apply(self, app: WebApplication) -> None:
        self._mark_applied()
        app.ratelimits.add_rule(self.rule)

    def revert(self, app: WebApplication) -> None:
        self._mark_reverted()
        app.ratelimits.remove_rule(self.rule.rule_id)


def loyalty_members_only(request: Request) -> bool:
    """Access predicate: authenticated loyalty-programme members only."""
    return request.client.profile_id.startswith("loyal")


class FeatureRestrictionPolicy(MitigationPolicy):
    """Restrict a path to trusted users."""

    def __init__(
        self,
        path: str,
        allowed: Callable[[Request], bool] = loyalty_members_only,
    ) -> None:
        super().__init__(label=f"restrict:{path}")
        self.path = path
        self.allowed = allowed

    def apply(self, app: WebApplication) -> None:
        self._mark_applied()
        app.restrict_path(self.path, self.allowed)

    def revert(self, app: WebApplication) -> None:
        self._mark_reverted()
        app.unrestrict_path(self.path)


class CaptchaPolicy(MitigationPolicy):
    """Gate a path behind a CAPTCHA challenge."""

    def __init__(
        self, path: str, model: Optional[CaptchaGateModel] = None
    ) -> None:
        super().__init__(label=f"captcha:{path}")
        self.path = path
        self.model = model or CaptchaGateModel()

    def apply(self, app: WebApplication) -> None:
        self._mark_applied()
        app.add_captcha(self.path, self.model)

    def revert(self, app: WebApplication) -> None:
        self._mark_reverted()
        app.remove_captcha(self.path)


class SmsFeatureTogglePolicy(MitigationPolicy):
    """Disable an SMS feature kind at the gateway."""

    def __init__(self, kind: str) -> None:
        super().__init__(label=f"sms-off:{kind}")
        self.kind = kind

    def apply(self, app: WebApplication) -> None:
        self._mark_applied()
        app.sms.disable_kind(self.kind)

    def revert(self, app: WebApplication) -> None:
        self._mark_reverted()
        app.sms.enable_kind(self.kind)


class HoldTtlPolicy(MitigationPolicy):
    """Shorten (or otherwise change) the seat-hold TTL."""

    def __init__(self, ttl: float) -> None:
        super().__init__(label=f"hold-ttl-{ttl:.0f}s")
        if ttl <= 0:
            raise ValueError(f"ttl must be positive: {ttl}")
        self.ttl = ttl
        self._previous: Optional[float] = None

    def apply(self, app: WebApplication) -> None:
        self._mark_applied()
        self._previous = app.reservations.hold_ttl
        app.reservations.set_hold_ttl(self.ttl)

    def revert(self, app: WebApplication) -> None:
        self._mark_reverted()
        assert self._previous is not None
        app.reservations.set_hold_ttl(self._previous)
