"""Mitigation core: policies, block rules, honeypot, controller.

* :mod:`~repro.core.mitigation.policies` — reversible defensive
  changes (NiP cap, rate limits, restrictions, CAPTCHA, SMS toggles),
* :mod:`~repro.core.mitigation.blocking` — fingerprint/IP block rules
  with effectiveness auditing,
* :mod:`~repro.core.mitigation.honeypot` — decoy-inventory routing,
* :mod:`~repro.core.mitigation.controller` — the closed detect-and-
  respond loop driving the arms race scenarios,
* :mod:`~repro.core.mitigation.online` — streaming verdict intake that
  deploys mitigations mid-simulation.
"""

from .blocking import BlockRuleManager, RuleEffectiveness
from .controller import (
    ControllerConfig,
    MitigationAction,
    MitigationController,
)
from .honeypot import HoneypotManager
from .online import OnlineVerdictSink
from .policies import (
    CaptchaPolicy,
    FeatureRestrictionPolicy,
    HoldTtlPolicy,
    MitigationPolicy,
    NipCapPolicy,
    RateLimitPolicy,
    SmsFeatureTogglePolicy,
    loyalty_members_only,
)

__all__ = [
    "BlockRuleManager",
    "RuleEffectiveness",
    "ControllerConfig",
    "MitigationAction",
    "MitigationController",
    "HoneypotManager",
    "OnlineVerdictSink",
    "CaptchaPolicy",
    "FeatureRestrictionPolicy",
    "HoldTtlPolicy",
    "MitigationPolicy",
    "NipCapPolicy",
    "RateLimitPolicy",
    "SmsFeatureTogglePolicy",
    "loyalty_members_only",
]
