"""Run-scoped observability: one :class:`RunContext` per profiled run.

A ``RunContext`` owns an :class:`~repro.obs.core.ObsRegistry` plus run
identity (scenario, seed, wall-clock start/finish) and two hot-path
hooks the instrumented subsystems call:

* :meth:`RunContext.record_event` — the event-loop dispatch hook
  (``EventLoop.profiler`` duck type): per-label wall time of every
  simulation callback, i.e. the sim kernel's phase breakdown by actor
  (``sim.event.SeatSpinnerBot.step`` etc.);
* :meth:`RunContext.phase` — coarse hierarchical phases of the run
  itself (``setup`` / ``simulate`` / ``harvest``), nested phases
  joining with ``/`` (``phase.simulate/stream-finish``).

Contexts merge like recorders: :meth:`merge` folds another context's
registry in, which is how the parallel runner aggregates per-cell
profiles across worker processes.
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List, Optional

from .core import ObsRegistry, Timer

#: Registry name prefixes the context writes under.
EVENT_PREFIX = "sim.event."
PHASE_PREFIX = "phase."
#: Label recorded for events scheduled without a label.
UNLABELLED = "unlabelled"


class RunContext:
    """Identity + registry + profiling hooks for one observed run."""

    def __init__(
        self,
        scenario: str = "",
        seed: Optional[int] = None,
        run_id: Optional[str] = None,
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        self.scenario = scenario
        self.seed = seed
        self.run_id = run_id or (
            f"{scenario or 'run'}-s{seed}" if seed is not None
            else (scenario or "run")
        )
        self.meta: Dict[str, object] = dict(meta or {})
        self.registry = ObsRegistry()
        self.started_at = _time.time()
        self.finished_at: Optional[float] = None
        self._started_clock = perf_counter()
        self._wall_seconds: Optional[float] = None
        self._phase_stack: List[str] = []
        # Label -> bound Histogram.observe cache: the per-event hook is
        # the hottest call in a profiled run (once per simulation
        # event), so after the first observation of a label it pays one
        # dict lookup and one call — no f-string, no registry lookup,
        # no Timer indirection.
        self._event_observers: Dict[str, object] = {}

    # -- hot-path hooks ------------------------------------------------------

    def record_event(self, label: str, duration: float) -> None:
        """Per-event dispatch hook (see ``EventLoop.profiler``)."""
        observe = self._event_observers.get(label)
        if observe is None:
            timer = self.registry.timer(
                f"{EVENT_PREFIX}{label or UNLABELLED}"
            )
            observe = timer.histogram.observe
            self._event_observers[label] = observe
        observe(duration)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a coarse run phase; nesting joins names with ``/``."""
        self._phase_stack.append(name)
        key = f"{PHASE_PREFIX}{'/'.join(self._phase_stack)}"
        started = perf_counter()
        try:
            yield
        finally:
            self.registry.timer(key).observe(perf_counter() - started)
            self._phase_stack.pop()

    # -- lifecycle -----------------------------------------------------------

    def finish(self) -> None:
        """Mark the run finished and stamp the total wall time."""
        if self.finished_at is None:
            self.finished_at = _time.time()
            self._wall_seconds = perf_counter() - self._started_clock
            self.registry.set_gauge("run.wall_seconds", self._wall_seconds)

    @property
    def wall_seconds(self) -> float:
        """Total observed wall time (live value until :meth:`finish`)."""
        if self._wall_seconds is not None:
            return self._wall_seconds
        return perf_counter() - self._started_clock

    def merge(self, other: "RunContext") -> None:
        """Fold another context's registry into this one (worker merge)."""
        self.registry.merge(other.registry)

    # -- serialisation -------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Plain-data view: run identity + full registry snapshot."""
        return {
            "run": {
                "run_id": self.run_id,
                "scenario": self.scenario,
                "seed": self.seed,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "wall_seconds": self.wall_seconds,
                "meta": dict(self.meta),
            },
            "registry": self.registry.snapshot(),
        }

    @classmethod
    def from_snapshot(cls, data: Dict[str, object]) -> "RunContext":
        run = dict(data.get("run", {}))
        context = cls(
            scenario=str(run.get("scenario", "")),
            seed=run.get("seed"),
            run_id=run.get("run_id"),
            meta=dict(run.get("meta", {})),
        )
        context.started_at = float(run.get("started_at", 0.0))
        finished = run.get("finished_at")
        context.finished_at = None if finished is None else float(finished)
        wall = run.get("wall_seconds")
        context._wall_seconds = None if wall is None else float(wall)
        context.registry = ObsRegistry.from_snapshot(
            dict(data.get("registry", {}))
        )
        return context
