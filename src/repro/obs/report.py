"""Report rendering: canonical JSON and Prometheus-style text.

Two consumers, two formats:

* :func:`render_json` — the canonical machine-readable report
  (``schema: repro.obs/1``): run identity, flat counters/gauges, and a
  per-timer digest (count/total/mean/min/max/p50/p95/p99).  This is
  what ``repro profile --out report.json`` writes and what the CI
  profile-smoke job parses.
* :func:`render_prometheus` — a flat exposition-format dump
  (``repro_<name>_total``, ``_seconds_sum``/``_count``/``_bucket``)
  for anything that scrapes text metrics.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Union

from .context import RunContext
from .core import ObsRegistry

#: Bumped when the JSON report layout changes.
REPORT_SCHEMA = "repro.obs/1"

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_]+")


def registry_report(registry: ObsRegistry) -> Dict[str, object]:
    """The registry part of the report: counters, gauges, digests."""
    return {
        "counters": dict(sorted(registry.counters().items())),
        "gauges": dict(sorted(registry.gauges().items())),
        "timers": {
            name: timer.histogram.summary()
            for name, timer in sorted(registry.timers().items())
        },
        "histograms": {
            name: histogram.summary()
            for name, histogram in sorted(registry.histograms().items())
        },
    }


def build_report(
    source: Union[RunContext, ObsRegistry],
    run: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble the canonical report dict from a context or registry.

    ``run`` overrides/extends the run-identity block — the merged-sweep
    path has no single ``RunContext`` and supplies its own identity.
    """
    if isinstance(source, RunContext):
        registry = source.registry
        run_block: Dict[str, object] = dict(source.snapshot()["run"])
    else:
        registry = source
        run_block = {}
    if run:
        run_block.update(run)
    report: Dict[str, object] = {"schema": REPORT_SCHEMA, "run": run_block}
    report.update(registry_report(registry))
    return report


def render_json(
    source: Union[RunContext, ObsRegistry],
    run: Optional[Dict[str, object]] = None,
    indent: Optional[int] = 2,
) -> str:
    """Canonical JSON report (sorted keys, stable across runs of equal
    content — suitable for golden pinning)."""
    return json.dumps(
        build_report(source, run), indent=indent, sort_keys=True
    )


def _prom_name(prefix: str, name: str) -> str:
    return f"{prefix}_{_PROM_NAME.sub('_', name).strip('_')}"


def render_prometheus(
    source: Union[RunContext, ObsRegistry], prefix: str = "repro"
) -> str:
    """Flat Prometheus-style exposition text for the whole registry."""
    registry = (
        source.registry if isinstance(source, RunContext) else source
    )
    lines: List[str] = []
    for name, value in sorted(registry.counters().items()):
        lines.append(f"{_prom_name(prefix, name)}_total {value:g}")
    for name, value in sorted(registry.gauges().items()):
        lines.append(f"{_prom_name(prefix, name)} {value:g}")
    distributions = [
        (name, timer.histogram, "_seconds")
        for name, timer in registry.timers().items()
    ] + [
        (name, histogram, "")
        for name, histogram in registry.histograms().items()
    ]
    for name, histogram, unit in sorted(distributions):
        base = f"{_prom_name(prefix, name)}{unit}"
        cumulative = 0
        for bound, bucket_count in zip(
            histogram.bounds, histogram.bucket_counts
        ):
            cumulative += bucket_count
            lines.append(f'{base}_bucket{{le="{bound:g}"}} {cumulative}')
        lines.append(f'{base}_bucket{{le="+Inf"}} {histogram.count}')
        lines.append(f"{base}_sum {histogram.total:g}")
        lines.append(f"{base}_count {histogram.count}")
    return "\n".join(lines) + "\n"


def write_report(
    path: str,
    source: Union[RunContext, ObsRegistry],
    form: str = "json",
    run: Optional[Dict[str, object]] = None,
) -> None:
    """Write a report file in ``json`` or ``prom`` form."""
    if form == "json":
        text = render_json(source, run=run)
    elif form == "prom":
        text = render_prometheus(source)
    else:
        raise ValueError(f"unknown report form {form!r} (json|prom)")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")
