"""repro.obs — unified wall-clock observability.

The package the hot paths report into:

* :class:`~repro.obs.core.ObsRegistry` — hierarchical counters,
  gauges, timers and histograms with snapshot/merge semantics;
* :class:`~repro.obs.context.RunContext` — run-scoped registry plus
  the event-loop dispatch hook and coarse phase profiling;
* :mod:`~repro.obs.report` — canonical JSON and Prometheus-style
  renderings;
* :mod:`~repro.obs.profile` — the ``repro profile`` harness that runs
  a case study fully instrumented.

Instrumentation is opt-in everywhere: an un-attached hook costs one
``is None`` check, and the overhead benchmark pins the attached cost
below 5% of Case A wall-clock.
"""

from .context import RunContext
from .core import (
    DEFAULT_TIME_BOUNDS,
    Histogram,
    ObsRegistry,
    Timer,
    merge_snapshots,
)
from .report import (
    REPORT_SCHEMA,
    build_report,
    registry_report,
    render_json,
    render_prometheus,
    write_report,
)

__all__ = [
    "DEFAULT_TIME_BOUNDS",
    "Histogram",
    "ObsRegistry",
    "REPORT_SCHEMA",
    "RunContext",
    "Timer",
    "build_report",
    "merge_snapshots",
    "registry_report",
    "render_json",
    "render_prometheus",
    "write_report",
]
