"""Low-overhead observability primitives.

:class:`ObsRegistry` is the container every instrumented subsystem
writes into: flat counters and gauges plus :class:`Timer`/
:class:`Histogram` distributions under hierarchical dot-separated
names (``sim.event.SeatSpinnerBot.step``, ``web.request./hold``,
``stream.stage.sessionize``).

Unlike :class:`~repro.sim.metrics.MetricsRecorder` — which records
*simulated* quantities on the simulated clock — everything here is
measured in real wall-clock seconds (``perf_counter``) and exists to
answer "where does the run spend its time", not "what happened in the
world".  The two deliberately share the snapshot/merge design so the
parallel runner can fold worker registries exactly like it folds
metric recorders.

Cost model: an un-instrumented hot path pays one ``is None`` check;
an instrumented one pays two ``perf_counter`` calls and one histogram
insert (a ``bisect`` over ~20 bucket bounds) per observation.  The
overhead benchmark (``benchmarks/test_bench_obs_overhead.py``) pins
the total below 5% of Case A wall-clock.
"""

from __future__ import annotations

from bisect import bisect_left
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default histogram bounds for durations, in seconds: a 1-2.5-5
#: geometric ladder from 1 microsecond to 10 s.  Wide enough for any
#: single event callback or request; anything slower lands in the
#: overflow bucket and still counts toward ``total``.
DEFAULT_TIME_BOUNDS: Tuple[float, ...] = tuple(
    10.0**exponent * mantissa
    for exponent in range(-6, 1)
    for mantissa in (1.0, 2.5, 5.0)
) + (10.0,)


class Histogram:
    """Fixed-bound histogram with count/total/min/max side channels.

    Bounds are upper-inclusive bucket edges; one overflow bucket
    catches everything above the last bound.  Two histograms merge iff
    their bounds are identical (the registry guarantees this for
    same-named histograms).
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_TIME_BOUNDS) -> None:
        bounds = tuple(float(bound) for bound in bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"bounds must be non-empty and strictly increasing: {bounds}"
            )
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        # bisect_left: a value equal to a bound lands in that bound's
        # bucket — edges are upper-inclusive, matching Prometheus "le".
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bucket bound at quantile ``q`` (conservative estimate).

        The exact observed maximum is returned for the overflow bucket,
        so ``quantile(1.0)`` never understates the tail.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(self.bounds):
                    return self.bounds[index]
                break
        return self.max if self.max is not None else 0.0

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError(
                "cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for index, bucket_count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    # -- serialisation -------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_snapshot(cls, data: Dict[str, object]) -> "Histogram":
        histogram = cls(bounds=tuple(data["bounds"]))
        counts = [int(value) for value in data["bucket_counts"]]
        if len(counts) != len(histogram.bucket_counts):
            raise ValueError(
                f"bucket count mismatch: {len(counts)} vs "
                f"{len(histogram.bucket_counts)}"
            )
        histogram.bucket_counts = counts
        histogram.count = int(data["count"])
        histogram.total = float(data["total"])
        histogram.min = None if data["min"] is None else float(data["min"])
        histogram.max = None if data["max"] is None else float(data["max"])
        return histogram

    def summary(self) -> Dict[str, float]:
        """The report-facing digest (no raw buckets)."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class Timer:
    """A duration histogram with an explicit-observe and a with-block API."""

    __slots__ = ("histogram",)

    def __init__(self, bounds: Sequence[float] = DEFAULT_TIME_BOUNDS) -> None:
        self.histogram = Histogram(bounds)

    def observe(self, duration: float) -> None:
        self.histogram.observe(duration)

    def time(self) -> "_TimerSpan":
        """``with timer.time(): ...`` records the block's wall duration."""
        return _TimerSpan(self)

    @property
    def count(self) -> int:
        return self.histogram.count

    @property
    def total(self) -> float:
        return self.histogram.total

    @property
    def mean(self) -> float:
        return self.histogram.mean


class _TimerSpan:
    __slots__ = ("_timer", "_started")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._started = 0.0

    def __enter__(self) -> "_TimerSpan":
        self._started = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._timer.observe(perf_counter() - self._started)


class ObsRegistry:
    """Hierarchically named counters, gauges, timers and histograms.

    Names are plain dot-separated strings; the registry imposes no
    schema beyond "same name, same kind".  Merging follows the
    :meth:`~repro.sim.metrics.MetricsRecorder.merge` contract: counters
    and distributions sum (associative and commutative), gauges are
    last-write-wins.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, Timer] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- counters / gauges ---------------------------------------------------

    def increment(self, name: str, amount: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def counters(self, prefix: str = "") -> Dict[str, float]:
        return {
            name: value
            for name, value in self._counters.items()
            if name.startswith(prefix)
        }

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    def gauges(self, prefix: str = "") -> Dict[str, float]:
        return {
            name: value
            for name, value in self._gauges.items()
            if name.startswith(prefix)
        }

    # -- distributions -------------------------------------------------------

    def timer(self, name: str) -> Timer:
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = Timer()
        return timer

    def timers(self, prefix: str = "") -> Dict[str, Timer]:
        return {
            name: timer
            for name, timer in self._timers.items()
            if name.startswith(prefix)
        }

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(
                bounds if bounds is not None else DEFAULT_TIME_BOUNDS
            )
        return histogram

    def histograms(self, prefix: str = "") -> Dict[str, Histogram]:
        return {
            name: histogram
            for name, histogram in self._histograms.items()
            if name.startswith(prefix)
        }

    def names(self) -> List[str]:
        """Every metric name in the registry, sorted."""
        return sorted(
            set(self._counters)
            | set(self._gauges)
            | set(self._timers)
            | set(self._histograms)
        )

    # -- aggregation ---------------------------------------------------------

    def total_time(self, prefix: str) -> float:
        """Summed timer totals under ``prefix`` (e.g. ``"sim.event."``)."""
        return sum(
            timer.total
            for name, timer in self._timers.items()
            if name.startswith(prefix)
        )

    def merge(self, other: "ObsRegistry") -> None:
        """Fold ``other`` into this registry (worker-merge semantics)."""
        for name, value in other._counters.items():
            self.increment(name, value)
        for name, value in other._gauges.items():
            self._gauges[name] = value
        for name, timer in other._timers.items():
            mine = self._timers.get(name)
            if mine is None:
                # Adopt the incoming timer's bounds: ``self.timer(name)``
                # would create a default-bounds timer, and merging a
                # custom-bounds histogram into it raises — which made
                # merging into a fresh registry (the shard/worker fold's
                # starting point) crash on any non-default timer.
                mine = self._timers[name] = Timer(
                    bounds=timer.histogram.bounds
                )
            mine.histogram.merge(timer.histogram)
        for name, histogram in other._histograms.items():
            self.histogram(name, histogram.bounds).merge(histogram)

    # -- serialisation -------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Lossless plain-data view (JSON-able, picklable, mergeable)."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "timers": {
                name: timer.histogram.snapshot()
                for name, timer in self._timers.items()
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in self._histograms.items()
            },
        }

    @classmethod
    def from_snapshot(cls, data: Dict[str, object]) -> "ObsRegistry":
        registry = cls()
        for name, value in dict(data.get("counters", {})).items():
            registry._counters[name] = float(value)
        for name, value in dict(data.get("gauges", {})).items():
            registry._gauges[name] = float(value)
        for name, snap in dict(data.get("timers", {})).items():
            timer = Timer(bounds=tuple(snap["bounds"]))
            timer.histogram = Histogram.from_snapshot(snap)
            registry._timers[name] = timer
        for name, snap in dict(data.get("histograms", {})).items():
            registry._histograms[name] = Histogram.from_snapshot(snap)
        return registry


def merge_snapshots(snapshots: Iterable[Dict[str, object]]) -> ObsRegistry:
    """Fold many registry snapshots (e.g. one per worker) into one."""
    merged = ObsRegistry()
    for snapshot in snapshots:
        merged.merge(ObsRegistry.from_snapshot(snapshot))
    return merged
