"""Case-profiling harness: run a scenario with full instrumentation.

:func:`profile_case` stands up a case study with every observability
hook attached via the scenario's ``on_world`` callback —

* the event loop's dispatch profiler (per-label sim-kernel timings:
  one ``sim.event.<label>`` timer per actor/step kind),
* the web application's request instrumentation (per-endpoint
  latency, edge-pipeline time, per-status counters),
* an *observational* streaming tap: the standard adapter set attached
  to the live log with no verdict sink, so the per-stage stream
  timers/throughput gauges are populated without changing what the
  scenario does —

and wraps the run in coarse :meth:`~repro.obs.context.RunContext.phase`
blocks (``setup`` / ``simulate`` / ``stream-finish``).  The result is
one :class:`~repro.obs.context.RunContext` whose registry is the
canonical profile report for the run.

The module-level ``profile_*_cell`` functions are picklable sweep-cell
entry points (registered as ``profile-case-a`` etc.), so ``repro
profile <case> --reps N --workers W`` fans replications out through
:mod:`repro.runner` and merges the per-worker registries exactly like
metric recorders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..sim.clock import DAY, HOUR, WEEK
from .context import RunContext
from .core import ObsRegistry

#: Case names :func:`profile_case` accepts.
PROFILED_CASES: Tuple[str, ...] = ("case-a", "case-b", "case-c")

#: Compressed configs for smoke runs (``repro profile --ticks-short``):
#: the same code paths at a few seconds of wall clock.
_SHORT_OVERRIDES: Dict[str, Dict[str, object]] = {
    "case-a": {
        "visitor_rate_per_hour": 5.0,
        "attack_start": 1 * DAY,
        "cap_at": None,
        "departure_time": 3 * DAY,
        "target_capacity": 120,
        "attacker_target_seats": 60,
    },
    "case-b": {
        "duration": 3 * DAY,
        "visitor_rate_per_hour": 5.0,
        "automated_attack_start": 1 * DAY,
        "manual_attack_start": 1 * DAY,
        "automated_target_seats": 30,
    },
    "case-c": {
        "baseline_weekly_total": 4_800,
        "attack_start": 2 * DAY,
        "duration": 4 * DAY,
    },
}


def short_overrides(case: str) -> Dict[str, object]:
    """The ``--ticks-short`` config overrides for ``case`` (a copy)."""
    if case not in _SHORT_OVERRIDES:
        raise ValueError(
            f"unknown profiled case {case!r}; expected one of "
            f"{PROFILED_CASES}"
        )
    return dict(_SHORT_OVERRIDES[case])


@dataclass
class ProfileRun:
    """One profiled scenario run: the context plus the case result."""

    case: str
    context: RunContext
    #: The underlying scenario result (``CaseAResult`` etc.).
    result: object

    @property
    def registry(self) -> ObsRegistry:
        return self.context.registry


def instrument_world(
    world,
    context: RunContext,
    stream_tap: bool = True,
    idle_gap: Optional[float] = None,
):
    """Attach every obs hook to a built world.

    Returns the observational stream pipeline (or ``None`` when
    ``stream_tap`` is off — the overhead benchmark measures pure
    instrumentation cost, without the tap's real detection work).
    """
    world.loop.profiler = context
    world.app.obs = context.registry
    if not stream_tap:
        return None
    # Imported lazily: repro.stream pulls in the detector stack, which
    # the un-tapped path (and the overhead benchmark) never needs.
    from ..scenarios.streaming import build_stream_pipeline
    from ..web.logs import DEFAULT_IDLE_GAP

    pipeline = build_stream_pipeline(
        sink=None,
        idle_gap=idle_gap if idle_gap is not None else DEFAULT_IDLE_GAP,
    )
    pipeline.obs = context.registry
    pipeline.attach(world.app.log)
    return pipeline


def batch_analysis(world, context: RunContext) -> None:
    """Run the columnar batch-analysis fast path, instrumented.

    Builds the :class:`~repro.core.detection.session_index.
    SessionIndex` (populating the ``detect.features`` timer and the
    ``detect.sessions`` / ``detect.entries`` counters) and judges it
    with the matrix detector families under ``detect.family.<name>``
    timers — the per-stage breakdown ``repro profile`` reports next to
    the sim-kernel and stream tables.
    """
    # Imported lazily, like the stream tap: the detector stack is not
    # an :mod:`repro.obs` dependency.
    from ..core.detection.clustering import ClusteringDetector
    from ..core.detection.session_index import SessionIndex
    from ..core.detection.volume import VolumeDetector

    registry = context.registry
    index = SessionIndex.from_log(world.app.log, obs=registry)
    with registry.timer("detect.family.volume-threshold").time():
        VolumeDetector().judge_index(index)
    with registry.timer("detect.family.kmeans-behaviour").time():
        ClusteringDetector(
            world.rngs.numpy_stream("detector.kmeans")
        ).judge_index(index)


def _case_entry(case: str) -> Tuple[type, Callable]:
    """(config class, run function) for a profiled case, resolved lazily
    so importing :mod:`repro.obs` stays cheap."""
    if case == "case-a":
        from ..scenarios.case_a import CaseAConfig, run_case_a

        return CaseAConfig, run_case_a
    if case == "case-b":
        from ..scenarios.case_b import CaseBConfig, run_case_b

        return CaseBConfig, run_case_b
    if case == "case-c":
        from ..scenarios.case_c import CaseCConfig, run_case_c

        return CaseCConfig, run_case_c
    raise ValueError(
        f"unknown profiled case {case!r}; expected one of {PROFILED_CASES}"
    )


def profile_case(
    case: str,
    config: Optional[object] = None,
    seed: Optional[int] = None,
    ticks_short: bool = False,
    stream_tap: bool = True,
) -> ProfileRun:
    """Run ``case`` fully instrumented and return its profile.

    Either pass a ready ``config`` (its seed wins) or let the harness
    build one from ``seed``/``ticks_short``.
    """
    config_cls, run_fn = _case_entry(case)
    if config is None:
        params = short_overrides(case) if ticks_short else {}
        if seed is not None:
            params["seed"] = seed
        config = config_cls(**params)
    context = RunContext(
        scenario=case,
        seed=getattr(config, "seed", None),
        meta={"ticks_short": ticks_short, "stream_tap": stream_tap},
    )
    pipeline = None

    def wire(world) -> None:
        nonlocal pipeline
        pipeline = instrument_world(world, context, stream_tap=stream_tap)

    with context.phase("simulate"):
        result = run_fn(config, on_world=wire)
    if pipeline is not None:
        with context.phase("stream-finish"):
            pipeline.finish()
    registry = context.registry
    world = getattr(result, "world", None)
    if world is not None:
        with context.phase("batch-analysis"):
            batch_analysis(world, context)
        registry.set_gauge(
            "sim.events_processed", float(world.loop.events_processed)
        )
        registry.set_gauge(
            "web.requests", world.metrics.counter("web.requests")
        )
    context.finish()
    return ProfileRun(case=case, context=context, result=result)


# -- sweep-cell entry points (registered as profile-<case>) ------------------


def _profile_cell(case: str, config: object) -> Dict[str, object]:
    """Plain-data payload of one profiled cell, with the registry
    snapshot under ``"obs"`` so the runner can merge it across
    workers (see :meth:`repro.runner.core.SweepResult.merged_obs`)."""
    run = profile_case(case, config=config)
    registry = run.registry
    return {
        "metrics": {
            "wall_seconds": run.context.wall_seconds,
            "sim_events": registry.gauge("sim.events_processed"),
            "web_requests": registry.gauge("web.requests"),
            "sim_event_seconds": registry.total_time("sim.event."),
            "stream_entries": registry.counter("stream.entries"),
            "detect_seconds": registry.total_time("detect."),
        },
        "info": {"run_id": run.context.run_id},
        "recorder": {},
        "obs": registry.snapshot(),
    }


def profile_case_a_cell(config) -> Dict[str, object]:
    return _profile_cell("case-a", config)


def profile_case_b_cell(config) -> Dict[str, object]:
    return _profile_cell("case-b", config)


def profile_case_c_cell(config) -> Dict[str, object]:
    return _profile_cell("case-c", config)
