"""repro.adversary — the adaptive, economically rational attacker.

The case studies model one campaign each; Section V's closing argument
is that the *attacker* is a business that moves between features: when
one abuse channel's return collapses (a defense lands, a feature is
removed), the budget flows to the next one.  This package models that
portfolio behaviour:

* :mod:`~repro.adversary.channels` — one :class:`AbuseChannel` wrapper
  per monetisable feature (seat spinning, SMS pumping, OTP number
  cycling, notification amplification), each owning its bot, proxy
  pool and per-channel profit-and-loss accounting;
* :mod:`~repro.adversary.attacker` — :class:`AdaptiveAttacker`, a
  deterministic controller that re-estimates per-channel ROI on a
  cadence, abandons channels whose return falls below threshold, and
  retires once no channel clears it (at which point the fixed
  infrastructure burn has made the whole operation a loss).
"""

from .attacker import AdaptiveAttacker, AttackerDecision
from .channels import (
    AbuseChannel,
    AmplifyChannel,
    OtpAbuseChannel,
    SeatSpinChannel,
    SmsPumpChannel,
)

__all__ = [
    "AbuseChannel",
    "AdaptiveAttacker",
    "AmplifyChannel",
    "AttackerDecision",
    "OtpAbuseChannel",
    "SeatSpinChannel",
    "SmsPumpChannel",
]
