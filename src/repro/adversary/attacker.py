"""The adaptive attacker: a budgeted portfolio manager over channels.

Section V frames industrial fraud as a business: the attacker funds
whatever feature currently yields, and a defense "wins" not when it
blocks requests but when it pushes the channel's return below what the
attacker's capital could earn elsewhere.  :class:`AdaptiveAttacker`
implements the smallest faithful version of that behaviour:

* one channel active at a time, drawn from a fixed shared budget;
* on a reassessment cadence, the *windowed* ROI of the active channel
  (earnings delta over spend delta since the last look) is compared to
  ``roi_threshold``; a channel that stops clearing it is benched;
* untried channels are preferred (optimism under uncertainty, in
  declaration order); once all are tried, the best lifetime-ROI channel
  still above threshold gets a second run, bounded by
  ``max_activations``;
* when nothing clears the threshold the attacker **retires** — and the
  fixed infrastructure burn (panel rent, accounts, developers) that
  accrued per day of operation stays on the books, which is what turns
  "every channel suppressed" into "the operation lost money".

The controller draws no randomness at all: given the same channel
P&L trajectories it makes the same decisions at the same times, which
keeps serial and ProcessPool portfolio runs bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sim.clock import DAY, HOUR
from ..sim.events import EventLoop
from ..sim.process import Process
from .channels import AbuseChannel


@dataclass(frozen=True)
class AttackerDecision:
    """One entry in the attacker's decision journal."""

    time: float
    action: str  # "activate" | "bench" | "retire" | "budget-exhausted"
    channel: str
    #: Windowed ROI that triggered the decision (None for activations).
    window_roi: Optional[float] = None


class _ChannelBook:
    """Per-channel P&L bookkeeping between reassessments."""

    def __init__(self, channel: AbuseChannel) -> None:
        self.channel = channel
        self.last_spent = 0.0
        self.last_earned = 0.0

    def window(self) -> tuple:
        """(spend delta, earn delta) since the last call; advances the
        snapshot."""
        spent, earned = self.channel.spent(), self.channel.earned()
        d_spent = spent - self.last_spent
        d_earned = earned - self.last_earned
        self.last_spent, self.last_earned = spent, earned
        return d_spent, d_earned

    def lifetime_roi(self) -> float:
        spent = self.channel.spent()
        if spent <= 0.0:
            return 0.0
        return (self.channel.earned() - spent) / spent


class AdaptiveAttacker(Process):
    """Deterministic ROI-driven channel switching over a shared budget."""

    def __init__(
        self,
        loop: EventLoop,
        channels: Sequence[AbuseChannel],
        budget: float = 500.0,
        roi_threshold: float = 0.0,
        reassess_interval: float = 2 * HOUR,
        infrastructure_per_day: float = 5.0,
        max_activations: int = 2,
        name: str = "adaptive-attacker",
    ) -> None:
        if not channels:
            raise ValueError("adaptive attacker needs at least one channel")
        if budget <= 0:
            raise ValueError(f"budget must be positive: {budget}")
        if reassess_interval <= 0:
            raise ValueError(
                f"reassess_interval must be positive: {reassess_interval}"
            )
        super().__init__(loop, name=name)
        self.channels = list(channels)
        self.budget = budget
        self.roi_threshold = roi_threshold
        self.reassess_interval = reassess_interval
        self.infrastructure_per_day = infrastructure_per_day
        self.max_activations = max_activations
        self._books: Dict[str, _ChannelBook] = {
            c.name: _ChannelBook(c) for c in self.channels
        }
        self._active: Optional[AbuseChannel] = None
        self._last_accrual: Optional[float] = None
        self.infrastructure_cost = 0.0
        self.decisions: List[AttackerDecision] = []
        self.retired = False

    # -- accounting ---------------------------------------------------

    def total_spent(self) -> float:
        return (
            sum(c.spent() for c in self.channels)
            + self.infrastructure_cost
        )

    def total_earned(self) -> float:
        return sum(c.earned() for c in self.channels)

    @property
    def net(self) -> float:
        return self.total_earned() - self.total_spent()

    def roi(self) -> float:
        spent = self.total_spent()
        if spent <= 0.0:
            return 0.0
        return self.net / spent

    @property
    def active_channel(self) -> Optional[str]:
        return self._active.name if self._active is not None else None

    def _accrue_infrastructure(self, now: float) -> None:
        if self._last_accrual is not None:
            elapsed = now - self._last_accrual
            self.infrastructure_cost += (
                self.infrastructure_per_day * elapsed / DAY
            )
        self._last_accrual = now

    # -- channel selection --------------------------------------------

    def _activate(self, channel: AbuseChannel, now: float) -> None:
        self._active = channel
        # Snapshot so the first reassessment window starts here, not at
        # whatever the channel spent in an earlier activation.
        book = self._books[channel.name]
        book.last_spent = channel.spent()
        book.last_earned = channel.earned()
        channel.activate()
        self.decisions.append(
            AttackerDecision(
                time=now, action="activate", channel=channel.name
            )
        )

    def _next_channel(self) -> Optional[AbuseChannel]:
        for channel in self.channels:  # optimism: untried first
            if channel.activations == 0:
                return channel
        candidates = [
            c
            for c in self.channels
            if c.activations < self.max_activations
            and self._books[c.name].lifetime_roi() > self.roi_threshold
        ]
        if not candidates:
            return None
        return max(
            candidates, key=lambda c: self._books[c.name].lifetime_roi()
        )

    # -- main loop ----------------------------------------------------

    def step(self) -> Optional[float]:
        now = self.loop.now
        self._accrue_infrastructure(now)

        if self.total_spent() >= self.budget:
            if self._active is not None:
                self._active.deactivate()
                self.decisions.append(
                    AttackerDecision(
                        time=now,
                        action="budget-exhausted",
                        channel=self._active.name,
                    )
                )
                self._active = None
            self.retired = True
            return None

        if self._active is None:
            channel = self._next_channel()
            if channel is None:
                self.retired = True
                self.decisions.append(
                    AttackerDecision(time=now, action="retire", channel="")
                )
                return None
            self._activate(channel, now)
            return self.reassess_interval

        d_spent, d_earned = self._books[self._active.name].window()
        if d_spent <= 0.0:
            # No marginal spend: either the channel earns for free
            # (keep it forever) or its bot has gone quiet — gave up,
            # permanently absorbed — and earns nothing (dead, bench it).
            window_roi = (
                float("inf") if d_earned > 0.0 else float("-inf")
            )
        else:
            window_roi = (d_earned - d_spent) / d_spent

        if window_roi < self.roi_threshold:
            self._active.deactivate()
            self.decisions.append(
                AttackerDecision(
                    time=now,
                    action="bench",
                    channel=self._active.name,
                    window_roi=window_roi,
                )
            )
            self._active = None
            # Pick the replacement immediately (same step) so the
            # budget never idles while infrastructure burns.
            replacement = self._next_channel()
            if replacement is None:
                self.retired = True
                self.decisions.append(
                    AttackerDecision(time=now, action="retire", channel="")
                )
                return None
            self._activate(replacement, now)
        return self.reassess_interval
