"""Abuse channels: one monetisable feature each, with its own P&L.

An :class:`AbuseChannel` wraps a bot, the resources it consumes (proxy
pool, rented numbers, stolen cards) and the revenue model it earns
under, exposing exactly the two numbers the adaptive attacker's
channel-switching policy needs — cumulative ``spent()`` and
``earned()`` — plus ``activate()``/``deactivate()`` built on the
restartable :class:`~repro.sim.process.Process` contract.

Revenue attribution is per-channel by construction: settlements are
read off the gateway record stream filtered by the channel bot's actor
name, seat displacement off the channel's own target flight, so four
channels sharing one world never double-count each other's income.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from ..economics.reports import attacker_seat_seconds
from ..identity.forge import (
    BotIdentity,
    FingerprintForge,
    MIMICRY,
    RotationPolicy,
)
from ..identity.ip import ResidentialProxyPool
from ..sim.clock import HOUR
from ..sms.numbers import PhoneNumber
from ..sms.rental import NumberRentalService
from ..traffic.amplifier import AmplifierBot, AmplifierConfig
from ..traffic.otp_abuser import OtpAbuseBot, OtpAbuserConfig
from ..traffic.seat_spinner import SeatSpinnerBot, SeatSpinnerConfig
from ..traffic.sms_pumper import SmsPumperBot, SmsPumperConfig

if TYPE_CHECKING:  # typing only: scenarios imports this package
    from ..scenarios.world import World

#: Default cost of one stolen card used for a setup ticket.
STOLEN_CARD_COST = 15.0


def _settlement_revenue(world: World, actor: str) -> float:
    """Carrier kickbacks attributable to one actor's messages."""
    return sum(
        r.settlement.attacker_revenue
        for r in world.sms.records
        if r.settlement is not None and r.client.actor == actor
    )


def _identity(world: World, stream: str) -> BotIdentity:
    return BotIdentity(
        FingerprintForge(MIMICRY),
        RotationPolicy(mean_interval=5.3 * HOUR, rotate_on_block=True),
        world.rngs.stream(stream),
    )


class AbuseChannel:
    """Base: lifecycle + P&L interface over one bot."""

    def __init__(self, name: str, world: World) -> None:
        self.name = name
        self.world = world
        self.proxy_pool = ResidentialProxyPool()
        self.bot = None  # subclasses construct it
        self.activations = 0

    # -- lifecycle ----------------------------------------------------

    def activate(self, at: Optional[float] = None) -> None:
        self.activations += 1
        self.bot.start(at=at)

    def deactivate(self) -> None:
        self.bot.stop()

    @property
    def active(self) -> bool:
        return self.bot.running

    # -- P&L ----------------------------------------------------------

    def spent(self) -> float:
        """Cumulative channel expenses (proxies + CAPTCHA solving; the
        subclasses add their channel-specific costs)."""
        return (
            self.proxy_pool.total_cost
            + self.world.app.captcha_costs_by_actor.get(self.name, 0.0)
        )

    def earned(self) -> float:
        raise NotImplementedError


class SeatSpinChannel(AbuseChannel):
    """Denial of Inventory sold as a service: a rival pays per
    seat-hour the target flight's inventory is kept out of sale."""

    def __init__(
        self,
        world: World,
        target_flight: str,
        value_per_seat_hour: float = 0.05,
        target_seats: Optional[int] = 60,
        name: str = "adv-seat-spinner",
    ) -> None:
        super().__init__(name, world)
        self.target_flight = target_flight
        self.value_per_seat_hour = value_per_seat_hour
        self.bot = SeatSpinnerBot(
            world.loop,
            world.app,
            _identity(world, f"adversary.{name}.identity"),
            self.proxy_pool,
            world.rngs.stream(f"adversary.{name}"),
            SeatSpinnerConfig(
                target_flight=target_flight,
                target_seats=target_seats,
                stop_before_departure=0.0,
            ),
            name=name,
        )

    def earned(self) -> float:
        displacement = attacker_seat_seconds(
            self.world.reservations, self.target_flight
        )
        return displacement.attacker_seat_hours * self.value_per_seat_hour


class SmsPumpChannel(AbuseChannel):
    """Case C economics: boarding-pass SMS to attacker-controlled
    numbers, monetised through colluding carriers' revenue share."""

    def __init__(
        self,
        world: World,
        setup_flight: str,
        sms_per_hour: float = 80.0,
        tickets_to_buy: int = 2,
        name: str = "adv-sms-pumper",
    ) -> None:
        super().__init__(name, world)
        self.bot = SmsPumperBot(
            world.loop,
            world.app,
            _identity(world, f"adversary.{name}.identity"),
            self.proxy_pool,
            world.rngs.stream(f"adversary.{name}"),
            SmsPumperConfig(
                setup_flight=setup_flight,
                tickets_to_buy=tickets_to_buy,
                sms_per_hour=sms_per_hour,
            ),
            name=name,
        )

    def spent(self) -> float:
        return (
            super().spent()
            + len(self.bot.booking_refs) * STOLEN_CARD_COST
        )

    def earned(self) -> float:
        return _settlement_revenue(self.world, self.name)


class OtpAbuseChannel(AbuseChannel):
    """Case D economics: rented disposable numbers cycled against the
    OTP endpoint, monetised through the same carrier kickbacks."""

    def __init__(
        self,
        world: World,
        otp_per_hour: float = 120.0,
        otps_per_number: int = 16,
        rental_cost_per_number: float = 0.40,
        name: str = "adv-otp-abuser",
    ) -> None:
        super().__init__(name, world)
        self.rental = NumberRentalService(
            cost_per_number=rental_cost_per_number
        )
        self.bot = OtpAbuseBot(
            world.loop,
            world.app,
            _identity(world, f"adversary.{name}.identity"),
            self.proxy_pool,
            self.rental,
            world.rngs.stream(f"adversary.{name}"),
            OtpAbuserConfig(
                otps_per_number=otps_per_number,
                otp_per_hour=otp_per_hour,
            ),
            name=name,
        )

    def spent(self) -> float:
        return super().spent() + self.rental.total_cost

    def earned(self) -> float:
        return _settlement_revenue(self.world, self.name)


class AmplifyChannel(AbuseChannel):
    """Case E economics: a sponsor pays per notification landed on the
    victim destination."""

    def __init__(
        self,
        world: World,
        victims: Sequence[PhoneNumber],
        notifications_per_hour: float = 600.0,
        value_per_delivered: float = 0.01,
        name: str = "adv-amplifier",
    ) -> None:
        super().__init__(name, world)
        self.victims = list(victims)
        self.value_per_delivered = value_per_delivered
        self.bot = AmplifierBot(
            world.loop,
            world.app,
            _identity(world, f"adversary.{name}.identity"),
            self.proxy_pool,
            self.victims,
            world.rngs.stream(f"adversary.{name}"),
            AmplifierConfig(
                notifications_per_hour=notifications_per_hour,
            ),
            name=name,
        )
        self._victim_e164s = {v.e164 for v in self.victims}

    def earned(self) -> float:
        landed = sum(
            1
            for r in self.world.sms.records
            if r.delivered
            and r.client.actor == self.name
            and r.number.e164 in self._victim_e164s
        )
        return landed * self.value_per_delivered
