"""Discrete-event simulation kernel.

Provides the deterministic foundations every other subpackage builds on:

* :class:`~repro.sim.clock.Clock` and duration constants,
* :class:`~repro.sim.events.EventLoop` (the discrete-event scheduler),
* :class:`~repro.sim.rng.RngRegistry` (named reproducible random streams),
* :class:`~repro.sim.metrics.MetricsRecorder`,
* :class:`~repro.sim.process.Process` (actor base class).
"""

from .clock import Clock, DAY, HOUR, MINUTE, SECOND, WEEK, format_duration
from .events import EventHandle, EventLoop
from .metrics import MetricsRecorder, TimePoint, summarise
from .process import Process
from .rng import RngRegistry, derive_seed

__all__ = [
    "Clock",
    "DAY",
    "HOUR",
    "MINUTE",
    "SECOND",
    "WEEK",
    "format_duration",
    "EventHandle",
    "EventLoop",
    "MetricsRecorder",
    "TimePoint",
    "summarise",
    "Process",
    "RngRegistry",
    "derive_seed",
]
