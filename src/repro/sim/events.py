"""Discrete-event simulation loop.

A minimal but complete discrete-event kernel: callbacks are scheduled at
absolute simulated times on a binary heap; :meth:`EventLoop.run_until`
pops them in time order, advances the shared :class:`~repro.sim.clock.Clock`
and invokes them.  Ties are broken by insertion order (FIFO), which keeps
runs deterministic even when many events share a timestamp.

Callbacks may schedule further events, cancel pending ones, and stop the
loop.  This is the only piece of control-flow machinery in the library;
every actor (legitimate users, attacker bots, the mitigation controller,
hold-expiry sweeps) is driven by it.

Hot-path layout: the heap stores plain ``(when, seq, event)`` tuples so
heap sifting compares floats and ints directly instead of calling a
generated dataclass ``__lt__``; ``seq`` is unique, so comparisons never
reach the event object.  The event itself is a ``__slots__`` record.
Live/cancelled events are counted as they change state, which makes
:attr:`EventLoop.pending` O(1), and the heap is compacted in place once
cancelled entries outnumber live ones — long schedule-and-cancel sweeps
(hold timers, rotation timers) no longer carry dead weight to the pop.
"""

from __future__ import annotations

import heapq
from heapq import heapify as _heapify, heappop as _heappop, heappush as _heappush
from time import perf_counter
from typing import Callable, Iterable, List, Optional, Tuple

from .clock import Clock

#: Heaps smaller than this are never compacted — rebuilding a tiny heap
#: costs more than skipping its cancelled entries at pop time.
_COMPACT_MIN_HEAP = 512

#: Effectively-unbounded event budget for ``run_until`` (which bounds
#: work by the time horizon, not by a count).
_UNLIMITED = 1 << 62


class EventHandle:
    """One scheduled callback; also the handle callers use to cancel it.

    Handle and event record are the same object: one allocation per
    scheduled event instead of two, which is a measurable share of
    schedule cost.  Instances are built with ``__new__`` + direct slot
    stores on the scheduling hot path (see
    :meth:`EventLoop.schedule_at`) rather than through ``__init__``.
    ``when``/``label``/``cancelled`` are plain readable slots; treat
    them as read-only and cancel only via :meth:`cancel`.
    """

    __slots__ = ("when", "callback", "cancelled", "in_heap", "label", "_loop")

    def __init__(
        self,
        loop: "EventLoop",
        when: float,
        callback: Callable[[], None],
        label: str = "",
    ) -> None:
        self._loop = loop
        self.when = when
        self.callback = callback
        self.cancelled = False
        self.in_heap = False
        self.label = label

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.in_heap:
            self._loop._note_cancel()


#: A heap entry; ``seq`` is unique so ordering never compares the event.
_HeapEntry = Tuple[float, int, EventHandle]


class EventLoop:
    """Deterministic discrete-event scheduler bound to a :class:`Clock`.

    ``__slots__`` on the loop itself turns the handful of attribute
    reads every ``schedule_at`` performs (clock, heap, seq, live
    counter) from dict lookups into index loads — small per call,
    large across hundreds of thousands of events.
    """

    __slots__ = (
        "clock",
        "_heap",
        "_seq",
        "_live",
        "_dead",
        "_stopped",
        "events_processed",
        "compactions",
        "profiler",
    )

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock if clock is not None else Clock()
        self._heap: List[_HeapEntry] = []
        self._seq = 0
        self._live = 0       # scheduled, not cancelled, not yet popped
        self._dead = 0       # cancelled entries still sitting in the heap
        self._stopped = False
        self.events_processed = 0
        #: Heap compactions performed (cancelled-entry purges).
        self.compactions = 0
        #: Optional dispatch profiler (duck-typed:
        #: ``record_event(label: str, duration: float)`` — e.g.
        #: :class:`repro.obs.RunContext`).  ``None`` keeps dispatch on
        #: the zero-overhead path; attach before running, typically in
        #: a scenario's ``on_world`` hook.
        self.profiler: Optional[object] = None

    @property
    def now(self) -> float:
        """Current simulated time (delegates to the clock)."""
        return self.clock.now

    def schedule_at(
        self,
        when: float,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at absolute time ``when``.

        Scheduling in the past raises :class:`ValueError` — that is
        always a bug in the caller, never something to silently clamp.
        """
        now = self.clock._now
        if when < now:
            raise ValueError(
                f"cannot schedule event at {when}, now is {now}"
            )
        event = EventHandle.__new__(EventHandle)
        event._loop = self
        event.when = when
        event.callback = callback
        event.cancelled = False
        event.in_heap = True
        event.label = label
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._heap, (when, seq, event))
        self._live += 1
        return event

    def schedule_in(
        self,
        delay: float,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(
            self.clock._now + delay, callback, label=label
        )

    def schedule_many(
        self,
        whens: Iterable[float],
        callback: Callable[[], None],
        label: str = "",
    ) -> List[EventHandle]:
        """Bulk-schedule ``callback`` at every time in ``whens``.

        Equivalent to calling :meth:`schedule_at` once per time, in
        iteration order (so FIFO tie-breaking is preserved), but paid
        for once: when the batch rivals the queue in size the heap is
        rebuilt with a single ``heapify`` instead of per-push sifting.
        This is what the vectorized traffic generators feed with a
        block of pre-drawn arrival times.
        """
        now = self.clock._now
        seq = self._seq
        new_event = EventHandle.__new__
        entries: List[_HeapEntry] = []
        handles: List[EventHandle] = []
        for when in whens:
            if when < now:
                raise ValueError(
                    f"cannot schedule event at {when}, now is {now}"
                )
            event = new_event(EventHandle)
            event._loop = self
            event.when = when
            event.callback = callback
            event.cancelled = False
            event.in_heap = True
            event.label = label
            entries.append((when, seq, event))
            handles.append(event)
            seq += 1
        self._seq = seq
        if not entries:
            return handles
        heap = self._heap
        if 4 * len(entries) >= len(heap):
            # The batch dominates: one O(n + k) heapify beats k sifts.
            heap.extend(entries)
            _heapify(heap)
        else:
            push = _heappush
            for entry in entries:
                push(heap, entry)
        self._live += len(entries)
        return handles

    def stop(self) -> None:
        """Stop the loop after the currently executing callback returns."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events still in the queue.

        O(1): maintained as a live-event counter rather than a heap scan.
        """
        return self._live

    @property
    def heap_size(self) -> int:
        """Physical heap length, cancelled entries included (monitoring)."""
        return len(self._heap)

    # -- cancellation bookkeeping -------------------------------------------

    def _note_cancel(self) -> None:
        """Account one in-heap cancellation; compact when dead dominates."""
        self._live -= 1
        self._dead += 1
        if (
            self._dead > self._live
            and len(self._heap) >= _COMPACT_MIN_HEAP
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In place matters: dispatch and bulk-insert bind the heap list
        once, so the list object's identity must survive compaction
        even when a callback cancels events mid-run.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        _heapify(heap)
        self._dead = 0
        self.compactions += 1

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, until: float, limit: int) -> None:
        """The single dispatch loop behind run_until/run_all.

        ``until`` is ``inf`` to drain the queue; ``limit`` bounds the
        number of non-cancelled callbacks invoked (run_all's runaway
        guard; run_until passes an effectively unbounded limit).

        The loop advances the clock by writing ``Clock._now`` directly:
        heap pops are nondecreasing in time and nothing may schedule in
        the past, so every popped ``when`` is ``>= clock._now`` by
        construction and the monotonicity ``advance_to`` would
        re-validate per event already holds.

        Entries are popped before the horizon check (pop-first beats
        peek-then-pop by one heap access per event); at most one entry
        per call is pushed back when it lies beyond ``until``.  The
        stop flag is checked after each callback rather than at the
        loop top: dispatch clears it on entry, so only a callback can
        raise it, and "stop after the currently executing callback
        returns" is exactly the documented contract.
        """
        self._stopped = False
        heap = self._heap
        heappop = _heappop
        clock = self.clock
        profiler = self.profiler
        record = None if profiler is None else profiler.record_event
        processed = 0
        try:
            while heap:
                entry = heappop(heap)
                when = entry[0]
                if when > until:
                    _heappush(heap, entry)
                    break
                event = entry[2]
                event.in_heap = False
                if event.cancelled:
                    self._dead -= 1
                    continue
                self._live -= 1
                clock._now = when
                processed += 1
                if record is None:
                    event.callback()
                else:
                    started = perf_counter()
                    event.callback()
                    record(event.label, perf_counter() - started)
                if processed >= limit:
                    raise RuntimeError(
                        f"event loop exceeded {limit} events; "
                        "likely a runaway self-rescheduling actor"
                    )
                if self._stopped:
                    break
        finally:
            # Flushed once instead of per event; every reader of
            # events_processed inspects it between runs, not mid-run.
            self.events_processed += processed

    def run_until(self, until: float) -> None:
        """Run events in time order up to and including time ``until``.

        The clock finishes at exactly ``until`` even if the queue drains
        earlier, so post-run bookkeeping (e.g. expiring holds) sees the
        intended horizon.
        """
        self._dispatch(until, _UNLIMITED)
        if not self._stopped and until > self.clock.now:
            self.clock.advance_to(until)

    def run_all(self, limit: int = 10_000_000) -> None:
        """Run until the queue is empty (bounded by ``limit`` events)."""
        self._dispatch(float("inf"), limit)
