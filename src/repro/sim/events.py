"""Discrete-event simulation loop.

A minimal but complete discrete-event kernel: callbacks are scheduled at
absolute simulated times on a binary heap; :meth:`EventLoop.run_until`
pops them in time order, advances the shared :class:`~repro.sim.clock.Clock`
and invokes them.  Ties are broken by insertion order (FIFO), which keeps
runs deterministic even when many events share a timestamp.

Callbacks may schedule further events, cancel pending ones, and stop the
loop.  This is the only piece of control-flow machinery in the library;
every actor (legitimate users, attacker bots, the mitigation controller,
hold-expiry sweeps) is driven by it.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, List, Optional

from .clock import Clock


@dataclass(order=True)
class _ScheduledEvent:
    when: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)


class EventHandle:
    """Handle returned by :meth:`EventLoop.schedule_at`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def when(self) -> float:
        return self._event.when

    @property
    def label(self) -> str:
        return self._event.label


class EventLoop:
    """Deterministic discrete-event scheduler bound to a :class:`Clock`."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock if clock is not None else Clock()
        self._heap: List[_ScheduledEvent] = []
        self._seq = itertools.count()
        self._stopped = False
        self.events_processed = 0
        #: Optional dispatch profiler (duck-typed:
        #: ``record_event(label: str, duration: float)`` — e.g.
        #: :class:`repro.obs.RunContext`).  ``None`` keeps dispatch on
        #: the zero-overhead path; attach before running, typically in
        #: a scenario's ``on_world`` hook.
        self.profiler: Optional[object] = None

    @property
    def now(self) -> float:
        """Current simulated time (delegates to the clock)."""
        return self.clock.now

    def schedule_at(
        self,
        when: float,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at absolute time ``when``.

        Scheduling in the past raises :class:`ValueError` — that is
        always a bug in the caller, never something to silently clamp.
        """
        if when < self.clock.now:
            raise ValueError(
                f"cannot schedule event at {when}, now is {self.clock.now}"
            )
        event = _ScheduledEvent(when, next(self._seq), callback, label=label)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_in(
        self,
        delay: float,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self.clock.now + delay, callback, label=label)

    def stop(self) -> None:
        """Stop the loop after the currently executing callback returns."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events still in the queue."""
        return sum(1 for e in self._heap if not e.cancelled)

    def run_until(self, until: float) -> None:
        """Run events in time order up to and including time ``until``.

        The clock finishes at exactly ``until`` even if the queue drains
        earlier, so post-run bookkeeping (e.g. expiring holds) sees the
        intended horizon.
        """
        self._stopped = False
        profiler = self.profiler
        record = None if profiler is None else profiler.record_event
        while self._heap and not self._stopped:
            event = self._heap[0]
            if event.when > until:
                break
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.when)
            self.events_processed += 1
            if record is None:
                event.callback()
            else:
                started = perf_counter()
                event.callback()
                record(event.label, perf_counter() - started)
        if not self._stopped and until > self.clock.now:
            self.clock.advance_to(until)

    def run_all(self, limit: int = 10_000_000) -> None:
        """Run until the queue is empty (bounded by ``limit`` events)."""
        self._stopped = False
        profiler = self.profiler
        record = None if profiler is None else profiler.record_event
        processed = 0
        while self._heap and not self._stopped:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.when)
            self.events_processed += 1
            if record is None:
                event.callback()
            else:
                started = perf_counter()
                event.callback()
                record(event.label, perf_counter() - started)
            processed += 1
            if processed >= limit:
                raise RuntimeError(
                    f"event loop exceeded {limit} events; "
                    "likely a runaway self-rescheduling actor"
                )
