"""Lightweight metrics recording for simulations.

Substrates and detectors report what happened through a shared
:class:`MetricsRecorder`: monotonically increasing counters, gauges,
and timestamped time series.  Benchmarks and analysis code read the
recorder after a run instead of scraping internal state.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple


@dataclass(frozen=True)
class TimePoint:
    """One timestamped observation in a time series."""

    time: float
    value: float


class MetricsRecorder:
    """Collects counters, gauges and time series during a run."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(float)
        self._gauges: Dict[str, float] = {}
        self._series: Dict[str, List[TimePoint]] = defaultdict(list)

    # -- counters ---------------------------------------------------------

    def increment(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (created at 0 on first use)."""
        self._counters[name] += amount

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0.0)

    def counters(self, prefix: str = "") -> Dict[str, float]:
        """All counters whose name starts with ``prefix``."""
        return {
            name: value
            for name, value in self._counters.items()
            if name.startswith(prefix)
        }

    # -- gauges -----------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = value

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    # -- time series -------------------------------------------------------

    def record(self, name: str, time: float, value: float) -> None:
        """Append a timestamped observation to series ``name``.

        Timestamps must be non-decreasing within a series; violations
        indicate the caller mixed up clocks and raise ``ValueError``.
        """
        series = self._series[name]
        if series and time < series[-1].time:
            raise ValueError(
                f"series {name!r}: time {time} precedes last point "
                f"{series[-1].time}"
            )
        series.append(TimePoint(time, value))

    def series(self, name: str) -> List[TimePoint]:
        """The recorded series (empty list if nothing was recorded)."""
        return list(self._series.get(name, []))

    def series_values(self, name: str) -> List[float]:
        return [point.value for point in self._series.get(name, [])]

    def series_names(self, prefix: str = "") -> List[str]:
        return sorted(
            name for name in self._series if name.startswith(prefix)
        )

    # -- aggregation --------------------------------------------------------

    def series_sum_between(
        self, name: str, start: float, end: float
    ) -> float:
        """Sum of series values with ``start <= time < end``."""
        return sum(
            point.value
            for point in self._series.get(name, [])
            if start <= point.time < end
        )

    def bucket_series(
        self, name: str, bucket: float, start: float, end: float
    ) -> List[Tuple[float, float]]:
        """Aggregate a series into fixed-width time buckets.

        Returns ``(bucket_start, sum_of_values)`` pairs covering
        ``[start, end)``; empty buckets are included with a 0 sum so the
        output always has ``ceil((end - start) / bucket)`` entries.
        """
        if bucket <= 0:
            raise ValueError(f"bucket width must be positive: {bucket}")
        count = int((end - start + bucket - 1e-9) // bucket)
        sums = [0.0] * max(count, 0)
        for point in self._series.get(name, []):
            if start <= point.time < end:
                index = int((point.time - start) // bucket)
                if 0 <= index < len(sums):
                    sums[index] += point.value
        return [(start + i * bucket, total) for i, total in enumerate(sums)]

    def merge(self, other: "MetricsRecorder") -> None:
        """Fold another recorder's counters and series into this one.

        Counter merging is associative and commutative (plain sums);
        series merging is associative and *order-independent*: merged
        points are sorted by ``(time, value)``, so folding worker or
        shard pieces in any order yields the identical sequence.  (An
        earlier version broke ties by fold order, which made a shard
        merge depend on shard completion order; see
        ``tests/test_shard_merge.py`` for the regression.)  Gauges are
        last-write-wins and therefore only order-independent when no
        two pieces set the same gauge.

        Merging an empty recorder — or one rebuilt from a snapshot that
        carries empty series lists — is an identity: it must not create
        empty series entries on this recorder (a second regression; an
        empty merge used to perturb ``snapshot()`` equality).
        """
        for name, value in other._counters.items():
            self._counters[name] += value
        for name, value in other._gauges.items():
            self._gauges[name] = value
        for name, points in other._series.items():
            if not points:
                continue
            merged = sorted(
                self._series[name] + points,
                key=lambda p: (p.time, p.value),
            )
            self._series[name] = merged

    # -- serialisation -------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A plain-data view of the recorder.

        The result contains only dicts/lists/floats/strings, so it can
        cross process boundaries (pickling worker results) and be
        serialised to JSON (the sweep result cache) without loss.
        """
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "series": {
                name: [[point.time, point.value] for point in points]
                for name, points in self._series.items()
            },
        }

    @classmethod
    def from_snapshot(cls, data: Dict[str, object]) -> "MetricsRecorder":
        """Rebuild a recorder from :meth:`snapshot` output.

        Round-trips exactly: ``MetricsRecorder.from_snapshot(r.snapshot())``
        has the same counters, gauges and series as ``r``.
        """
        recorder = cls()
        for name, value in dict(data.get("counters", {})).items():
            recorder._counters[name] = float(value)
        for name, value in dict(data.get("gauges", {})).items():
            recorder._gauges[name] = float(value)
        for name, points in dict(data.get("series", {})).items():
            recorder._series[name] = [
                TimePoint(float(time), float(value))
                for time, value in points
            ]
        return recorder


def summarise(values: Iterable[float]) -> Dict[str, float]:
    """Small numeric summary used in reports: count/mean/min/max."""
    data = list(values)
    if not data:
        return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0}
    return {
        "count": len(data),
        "mean": sum(data) / len(data),
        "min": min(data),
        "max": max(data),
    }
