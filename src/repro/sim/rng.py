"""Named, reproducible random streams.

Every stochastic component in the library receives its randomness from a
:class:`RngRegistry`.  Each component asks for a *named* stream; the
stream's seed is derived deterministically from the registry's master
seed and the stream name, so:

* two runs with the same master seed are bit-for-bit identical, and
* adding a new component (a new stream name) does not perturb the
  randomness of existing components — streams are independent.

The registry hands out both :class:`random.Random` instances (for simple
choices) and :class:`numpy.random.Generator` instances (for vectorised
sampling).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

import numpy as np


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit stream seed from a master seed and a stream name.

    Uses SHA-256 rather than ``hash()`` because the latter is salted per
    interpreter process and would destroy reproducibility.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_replication_seed(
    master_seed: int, config_hash: str, replication: int
) -> int:
    """Seed for one replication of one sweep cell.

    Every ``(master_seed, config_hash, replication)`` triple maps to an
    independent 64-bit seed, so sweep cells and their replications get
    disjoint RNG streams regardless of which worker process runs them —
    the property the parallel runner's determinism rests on.
    """
    return derive_seed(master_seed, f"cell:{config_hash}:rep:{replication}")


def derive_shard_seed(
    master_seed: int,
    config_hash: str,
    shard_id: int,
    shard_count: int,
    replication: int = 0,
) -> int:
    """Seed for one shard of one (possibly replicated) sweep cell.

    Every ``(master_seed, config_hash, shard_id)`` triple maps to an
    independent 64-bit substream, so a sharded world's populations are
    statistically independent of each other *and* of every other cell,
    no matter which worker process simulates which shard.  The shard
    count is folded in as well: re-partitioning the same cell into a
    different number of shards (whose per-shard configs differ — e.g.
    ``visitor_rate / K``) must not silently reuse RNG streams or
    result-cache entries recorded under another partitioning.
    """
    if not 0 <= shard_id < shard_count:
        raise ValueError(
            f"shard_id must be in [0, {shard_count}): {shard_id}"
        )
    return derive_seed(
        master_seed,
        f"cell:{config_hash}:rep:{replication}"
        f":shard:{shard_id}/{shard_count}",
    )


class RngRegistry:
    """Factory for independent, named, reproducible random streams.

    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.stream("traffic.legit")
    >>> b = rngs.stream("traffic.legit")
    >>> a is b  # same name -> same stream object
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._py_streams: Dict[str, random.Random] = {}
        self._np_streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> random.Random:
        """Return the :class:`random.Random` stream for ``name``."""
        if name not in self._py_streams:
            self._py_streams[name] = random.Random(derive_seed(self.seed, name))
        return self._py_streams[name]

    def numpy_stream(self, name: str) -> np.random.Generator:
        """Return the :class:`numpy.random.Generator` stream for ``name``."""
        if name not in self._np_streams:
            self._np_streams[name] = np.random.default_rng(
                derive_seed(self.seed, name)
            )
        return self._np_streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Create a child registry whose master seed depends on ``name``.

        Useful for parameter sweeps: each sweep point forks the parent
        registry so points are independent but the sweep is reproducible.
        """
        return RngRegistry(derive_seed(self.seed, f"fork:{name}"))
