"""Simulated time primitives.

All of :mod:`repro` runs on simulated time expressed as ``float`` seconds
from the scenario epoch (t = 0).  Nothing in the library ever reads the
wall clock, which keeps every run exactly reproducible.

This module provides the :class:`Clock` used by every substrate and a set
of readable duration constants (``MINUTE``, ``HOUR``, ``DAY``, ``WEEK``).
"""

from __future__ import annotations

#: One second of simulated time (the base unit).
SECOND = 1.0
#: Sixty seconds.
MINUTE = 60.0
#: Sixty minutes.
HOUR = 3600.0
#: Twenty-four hours.
DAY = 24 * HOUR
#: Seven days.
WEEK = 7 * DAY


class Clock:
    """A monotonically advancing simulated clock.

    The clock only moves forward; attempts to rewind raise
    :class:`ValueError`.  A single clock instance is shared by the event
    loop and every substrate in a scenario so that all components agree
    on "now".

    >>> clock = Clock()
    >>> clock.now
    0.0
    >>> clock.advance_to(10.0)
    >>> clock.now
    10.0
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before the epoch: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds from the epoch."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises :class:`ValueError` if ``when`` is in the past: simulated
        time, like real time, never runs backwards.
        """
        if when < self._now:
            raise ValueError(
                f"cannot rewind clock from {self._now} to {when}"
            )
        self._now = float(when)

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by ``delta`` seconds (must be >= 0)."""
        if delta < 0:
            raise ValueError(f"cannot advance by a negative delta: {delta}")
        self._now += delta


def format_duration(seconds: float) -> str:
    """Render a duration in a compact human-readable form.

    >>> format_duration(5.3 * HOUR)
    '5h18m'
    >>> format_duration(90)
    '1m30s'
    """
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < MINUTE:
        return f"{seconds:.0f}s"
    if seconds < HOUR:
        minutes, secs = divmod(int(round(seconds)), 60)
        return f"{minutes}m{secs}s" if secs else f"{minutes}m"
    if seconds < DAY:
        hours, rem = divmod(int(round(seconds)), int(HOUR))
        minutes = rem // 60
        return f"{hours}h{minutes}m" if minutes else f"{hours}h"
    days, rem = divmod(int(round(seconds)), int(DAY))
    hours = rem // int(HOUR)
    return f"{days}d{hours}h" if hours else f"{days}d"
