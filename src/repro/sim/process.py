"""Actor base class for event-loop-driven processes.

A :class:`Process` is anything that repeatedly acts on the simulation:
a legitimate user population, an attacker bot, the mitigation
controller, the hold-expiry sweeper.  Subclasses implement
:meth:`Process.step` and return the delay until their next step; the
base class handles (re)scheduling, stopping and bookkeeping.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from .events import EventHandle, EventLoop


class Process(ABC):
    """A repeating actor on the event loop.

    Lifecycle::

        process = MyBot(loop, ...)
        process.start(at=0.0)    # schedules the first step
        loop.run_until(horizon)
        process.stop()           # cancels any pending step

    ``step()`` returns the delay (seconds) until the next step, or
    ``None`` to finish.  Exceptions propagate — a crashing actor should
    crash the run, not be silently dropped.
    """

    def __init__(self, loop: EventLoop, name: str = "") -> None:
        self.loop = loop
        self.name = name or type(self).__name__
        self.steps_taken = 0
        self._handle: Optional[EventHandle] = None
        self._running = False
        # Precomputed once: rebuilding this f-string on every reschedule
        # shows up in dispatch profiles of long runs.
        self._step_label = f"{self.name}.step"

    @property
    def running(self) -> bool:
        return self._running

    def start(self, at: Optional[float] = None) -> None:
        """Schedule the first step (at ``at``, default: now)."""
        if self._running:
            raise RuntimeError(f"process {self.name!r} already started")
        self._running = True
        when = self.loop.now if at is None else at
        self._handle = self.loop.schedule_at(
            when, self._run_step, label=self._step_label
        )
        self.on_start()

    def stop(self) -> None:
        """Cancel any pending step and mark the process finished."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        if self._running:
            self._running = False
            self.on_stop()

    def _run_step(self) -> None:
        self._handle = None
        if not self._running:
            return
        self.steps_taken += 1
        delay = self.step()
        if delay is None:
            self.stop()
            return
        if delay < 0:
            raise ValueError(
                f"process {self.name!r} returned a negative delay: {delay}"
            )
        if self._running:
            self._handle = self.loop.schedule_in(
                delay, self._run_step, label=self._step_label
            )

    @abstractmethod
    def step(self) -> Optional[float]:
        """Perform one action; return delay to next step or None to stop."""

    def on_start(self) -> None:
        """Hook invoked when the process starts (default: nothing)."""

    def on_stop(self) -> None:
        """Hook invoked when the process stops (default: nothing)."""
