"""On-disk result cache for sweep cells.

One JSON file per cell, keyed by ``(scenario, config_hash, seed)`` —
the code-irrelevant identity of a cell.  Re-running a sweep therefore
only computes missing cells; changing any config field or the master
seed changes the key and naturally invalidates exactly the affected
cells.

Files are written atomically (tmp + rename) and carry a payload
checksum; a truncated, hand-edited or bit-rotted file fails
verification and is treated as a miss (recomputed and rewritten), never
as a crash.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from typing import Dict, Optional

from .spec import canonical_json

#: Bump when the payload layout changes; old files become misses.
CACHE_VERSION = 1

#: Filename-hostile characters in scenario names (path separators,
#: whitespace, and the ``_`` the filename layout uses as its own
#: field separator) are all flattened to ``-``.
_UNSAFE_CHARS = re.compile(r"[^A-Za-z0-9.-]+")


def _payload_checksum(payload: Dict[str, object]) -> str:
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()


def _identity_digest(scenario: str, config_hash: str, seed: int) -> str:
    """Digest of the *full* cell identity, used to keep filenames
    collision-free even after the readable fields are truncated or
    sanitised."""
    joined = f"{scenario}\x00{config_hash}\x00{seed}"
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory of per-cell JSON results with integrity checking."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def path_for(self, scenario: str, config_hash: str, seed: int) -> str:
        """Filename for a cell: readable prefix + full-identity digest.

        The readable fields are lossy (the scenario is sanitised for
        the filesystem, the config hash truncated), so the digest of
        the *untruncated* identity is appended — two distinct cells
        can only share a file via a SHA-256 collision, and even then
        :meth:`load` re-verifies the envelope.
        """
        safe_scenario = _UNSAFE_CHARS.sub("-", scenario) or "scenario"
        digest = _identity_digest(scenario, config_hash, seed)[:12]
        return os.path.join(
            self.directory,
            f"{safe_scenario}_{config_hash[:16]}_{seed}_{digest}.json",
        )

    def load(
        self, scenario: str, config_hash: str, seed: int
    ) -> Optional[Dict[str, object]]:
        """The cached payload, or None on miss/corruption.

        The envelope's own identity fields are verified against the
        request — a file that somehow answers to the wrong key (hash
        prefix collision, renamed or copied cache files) is treated as
        corrupt, never silently served as another cell's result.
        """
        path = self.path_for(scenario, config_hash, seed)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            self.corrupt += 1
            self.misses += 1
            return None
        payload = envelope.get("payload")
        if (
            not isinstance(payload, dict)
            or envelope.get("version") != CACHE_VERSION
            or envelope.get("scenario") != scenario
            or envelope.get("config_hash") != config_hash
            or envelope.get("seed") != seed
            or envelope.get("checksum") != _payload_checksum(payload)
        ):
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store(
        self,
        scenario: str,
        config_hash: str,
        seed: int,
        payload: Dict[str, object],
    ) -> None:
        """Atomically persist one cell's payload."""
        os.makedirs(self.directory, exist_ok=True)
        path = self.path_for(scenario, config_hash, seed)
        envelope = {
            "version": CACHE_VERSION,
            "scenario": scenario,
            "config_hash": config_hash,
            "seed": seed,
            "checksum": _payload_checksum(payload),
            "payload": payload,
        }
        tmp_path = f"{path}.tmp.{os.getpid()}"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(envelope, handle)
        os.replace(tmp_path, path)
