"""The sweep/replication orchestrator.

:func:`run_sweep` expands a :class:`~repro.runner.spec.SweepSpec` into
cells, satisfies as many as possible from the on-disk
:class:`~repro.runner.cache.ResultCache`, and fans the misses out over
a backend:

* ``"serial"`` — run every cell in this process (the reference
  implementation, and the fallback where multiprocessing is unwanted);
* ``"process"`` — a ``concurrent.futures.ProcessPoolExecutor``.

Determinism does not depend on the backend: each cell's RNG seed is a
pure function of ``(master_seed, config_hash, replication)``, the cell
function is a pure function of its config, and results are reassembled
in spec order (``executor.map`` preserves input order), so a serial run
and an N-worker run produce bit-identical merged metrics.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.aggregate import SummaryStats, aggregate_metrics
from ..obs import ObsRegistry
from ..sim.metrics import MetricsRecorder
from .cache import ResultCache
from .registry import get_scenario
from .spec import CellSpec, SweepSpec

SERIAL = "serial"
PROCESS = "process"


def execute_cell(cell: CellSpec) -> Dict[str, object]:
    """Run one sweep cell and return its plain-data payload.

    Module-level (hence picklable) so it can be the entry point of a
    worker process; also the serial backend's unit of work, so both
    backends share one code path.
    """
    entry = get_scenario(cell.scenario)
    config = entry.build_config(cell.params_dict(), cell.seed)
    return entry.cell_fn(config)


@dataclass(frozen=True)
class CellResult:
    """One completed cell: its identity plus the payload it produced."""

    scenario: str
    params: Tuple[Tuple[str, object], ...]
    replication: int
    config_hash: str
    seed: int
    metrics: Dict[str, float]
    info: Dict[str, object]
    recorder_snapshot: Dict[str, object]
    from_cache: bool
    #: Wall-clock observability snapshot (``repro.obs``); empty for
    #: cells whose scenario does not profile itself.
    obs_snapshot: Dict[str, object] = field(default_factory=dict)
    #: Entity-graph snapshot (``EntityGraph.snapshot``); empty for
    #: scenarios that build no graph.  For sharded cells this is the
    #: cross-shard union.
    graph_snapshot: Dict[str, object] = field(default_factory=dict)
    #: How many shards produced this cell (1 = unsharded).
    shards: int = 1

    def params_dict(self) -> Dict[str, object]:
        return dict(self.params)

    def recorder(self) -> MetricsRecorder:
        return MetricsRecorder.from_snapshot(self.recorder_snapshot)

    def obs(self) -> ObsRegistry:
        return ObsRegistry.from_snapshot(self.obs_snapshot)


@dataclass
class SweepResult:
    """All cell results of one sweep, in spec order."""

    spec: SweepSpec
    cells: List[CellResult]
    elapsed: float
    cache_hits: int = 0
    cache_misses: int = 0
    cache_corrupt: int = 0
    workers: int = 1
    backend: str = SERIAL
    shards: int = 1

    def points(self) -> List[Dict[str, object]]:
        return self.spec.points()

    def results_for(
        self, params: Dict[str, object]
    ) -> List[CellResult]:
        """This point's replications, in replication order."""
        key = tuple(sorted(params.items()))
        return [cell for cell in self.cells if cell.params == key]

    def merged_recorder(self, params: Dict[str, object]) -> MetricsRecorder:
        """All replications' recorders folded in replication order.

        Counter merging is commutative and series merging order-stable,
        so this is identical however the cells were scheduled.
        """
        merged = MetricsRecorder()
        for cell in self.results_for(params):
            merged.merge(cell.recorder())
        return merged

    def merged_obs(
        self, params: Optional[Dict[str, object]] = None
    ) -> ObsRegistry:
        """All cells' obs registries folded into one (worker merge).

        Counter/timer merging is commutative, so the fold is identical
        whichever worker process produced each cell.  ``params``
        restricts the fold to one grid point; default is every cell.
        """
        cells = self.cells if params is None else self.results_for(params)
        merged = ObsRegistry()
        for cell in cells:
            if cell.obs_snapshot:
                merged.merge(ObsRegistry.from_snapshot(cell.obs_snapshot))
        return merged

    def aggregate(
        self, params: Dict[str, object], confidence: float = 0.95
    ) -> Dict[str, SummaryStats]:
        """Mean +/- CI of every scalar metric at one grid point."""
        return aggregate_metrics(
            [cell.metrics for cell in self.results_for(params)],
            confidence,
        )

    def aggregate_all(
        self, confidence: float = 0.95
    ) -> List[Tuple[Dict[str, object], Dict[str, SummaryStats]]]:
        """``(point params, per-metric stats)`` for every grid point."""
        return [
            (params, self.aggregate(params, confidence))
            for params in self.points()
        ]


def default_workers() -> int:
    """Worker count when the caller does not choose: all cores, max 4."""
    return min(4, os.cpu_count() or 1)


def run_sweep(
    spec: SweepSpec,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    cache_dir: Optional[str] = None,
    shards: int = 1,
) -> SweepResult:
    """Run (or complete, via the cache) every cell of a sweep.

    ``workers=1`` or ``backend="serial"`` runs in-process; otherwise a
    process pool of ``workers`` (default :func:`default_workers`) is
    used.  With ``cache_dir`` set, cached cells are loaded instead of
    recomputed and fresh cells are persisted for next time.

    ``shards=K`` splits every cell into K independent sub-worlds (see
    :mod:`repro.shard`), runs them as ordinary work units on the same
    backend/cache machinery, and merges each cell's K payloads back
    into one :class:`CellResult`.  ``shards=1`` is a strict
    pass-through — same cells, same seeds, bit-identical results to
    not passing the argument at all.
    """
    started = time.perf_counter()
    cells = spec.cells()
    if shards < 1:
        raise ValueError(f"shards must be >= 1: {shards}")
    if workers is None:
        workers = default_workers() if backend == PROCESS else 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    if backend is None:
        backend = PROCESS if workers > 1 else SERIAL
    if backend not in (SERIAL, PROCESS):
        raise ValueError(f"unknown backend {backend!r}")
    if backend == SERIAL:
        workers = 1

    # Expand cells into work units: each cell's shards are contiguous
    # in the work list, so spec order (and hence result order) is
    # preserved however the pool schedules them.
    if shards > 1:
        from ..shard.plan import shard_cell

        work: List[CellSpec] = []
        groups: List[Tuple[int, int]] = []
        for cell in cells:
            pieces = shard_cell(cell, spec.master_seed, shards)
            groups.append((len(work), len(work) + len(pieces)))
            work.extend(pieces)
    else:
        work = cells
        groups = [(index, index + 1) for index in range(len(cells))]

    cache = ResultCache(cache_dir) if cache_dir else None
    payloads: List[Optional[Dict[str, object]]] = [None] * len(work)
    pending: List[int] = []
    for index, unit in enumerate(work):
        if cache is not None:
            payloads[index] = cache.load(
                unit.scenario, unit.config_hash, unit.seed
            )
        if payloads[index] is None:
            pending.append(index)

    if pending:
        todo = [work[index] for index in pending]
        if backend == PROCESS and workers > 1:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                fresh = list(pool.map(execute_cell, todo))
        else:
            fresh = [execute_cell(unit) for unit in todo]
        for index, payload in zip(pending, fresh):
            payloads[index] = payload
            if cache is not None:
                unit = work[index]
                cache.store(
                    unit.scenario, unit.config_hash, unit.seed, payload
                )

    results = []
    pending_set = set(pending)
    for cell, (start, end) in zip(cells, groups):
        group = payloads[start:end]
        assert all(payload is not None for payload in group)
        if end - start > 1:
            from ..shard.merge import merge_payloads

            payload = merge_payloads(cell.scenario, group)
        else:
            payload = group[0]
        results.append(
            CellResult(
                scenario=cell.scenario,
                params=cell.params,
                replication=cell.replication,
                config_hash=cell.config_hash,
                seed=cell.seed,
                metrics={
                    name: float(value)
                    for name, value in dict(payload["metrics"]).items()
                },
                info=dict(payload.get("info", {})),
                recorder_snapshot=dict(payload.get("recorder", {})),
                from_cache=all(
                    index not in pending_set for index in range(start, end)
                ),
                obs_snapshot=dict(payload.get("obs", {})),
                graph_snapshot=dict(payload.get("graph", {})),
                shards=end - start,
            )
        )
    return SweepResult(
        spec=spec,
        cells=results,
        elapsed=time.perf_counter() - started,
        cache_hits=cache.hits if cache else 0,
        cache_misses=cache.misses if cache else 0,
        cache_corrupt=cache.corrupt if cache else 0,
        workers=workers,
        backend=backend,
        shards=shards,
    )
