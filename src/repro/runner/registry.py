"""Registry of sweepable scenarios.

The parallel runner refers to scenarios by *name* rather than by
function object so that a work item — ``(scenario name, params, seed)``
— is trivially picklable and cache-keyable.  Each entry binds the name
to the scenario's config dataclass and its *cell function*: a
module-level pure function of a config that returns only plain data
(see :func:`repro.scenarios.case_a.case_a_cell`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Mapping

from ..obs.profile import (
    profile_case_a_cell,
    profile_case_b_cell,
    profile_case_c_cell,
)
from ..scenarios.case_a import CaseAConfig, case_a_cell
from ..scenarios.case_b import CaseBConfig, case_b_cell
from ..scenarios.case_c import CaseCConfig, case_c_cell
from ..scenarios.case_d import CaseDConfig, case_d_cell
from ..scenarios.case_e import CaseEConfig, case_e_cell
from ..scenarios.graph_case import (
    GraphCaseConfig,
    graph_case_a_cell,
    graph_case_c_cell,
)
from ..scenarios.learned import LearnedCaseConfig, learned_case_cell
from ..scenarios.portfolio import PortfolioConfig, portfolio_cell
from ..scenarios.scale import ScaleConfig, scale_cell
from ..scenarios.streaming import StreamCaseAConfig, stream_case_a_cell


@dataclass(frozen=True)
class ScenarioEntry:
    """One sweepable scenario: its config type and cell function."""

    name: str
    config_cls: type
    cell_fn: Callable[[object], Dict[str, object]]

    def build_config(self, params: Mapping[str, object], seed: int):
        """Instantiate the config from sweep params plus a derived seed.

        Unknown parameter names raise ``TypeError`` from the dataclass
        constructor — a sweep over a misspelled field fails loudly
        instead of silently running defaults.
        """
        config = self.config_cls(**dict(params))
        return replace(config, seed=seed)


_REGISTRY: Dict[str, ScenarioEntry] = {}


def register_scenario(
    name: str,
    config_cls: type,
    cell_fn: Callable[[object], Dict[str, object]],
) -> None:
    """Register (or re-register) a scenario under ``name``."""
    _REGISTRY[name] = ScenarioEntry(name, config_cls, cell_fn)


def get_scenario(name: str) -> ScenarioEntry:
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        )
    return _REGISTRY[name]


def scenario_names() -> List[str]:
    return sorted(_REGISTRY)


register_scenario("case-a", CaseAConfig, case_a_cell)
register_scenario("case-b", CaseBConfig, case_b_cell)
register_scenario("case-c", CaseCConfig, case_c_cell)
# The repro.adversary additions: the two SMS-record detector families'
# end-to-end cases plus the adaptive whole-portfolio harness.
register_scenario("case-d", CaseDConfig, case_d_cell)
register_scenario("case-e", CaseEConfig, case_e_cell)
register_scenario("portfolio-adaptive", PortfolioConfig, portfolio_cell)
register_scenario("stream-case-a", StreamCaseAConfig, stream_case_a_cell)
# Graph-vs-session fusion arms on the rotated campaigns; the cells pin
# the case field so sweep params cannot cross-wire the two entries.
register_scenario("graph-case-a", GraphCaseConfig, graph_case_a_cell)
register_scenario("graph-case-c", GraphCaseConfig, graph_case_c_cell)
# Learned-vs-hand-tuned arms on the evasive Case A variants (repro.ml).
register_scenario("learned-case-a", LearnedCaseConfig, learned_case_cell)
# Instrumented variants: same configs, cells also carry an "obs"
# registry snapshot (merged across workers by SweepResult.merged_obs).
register_scenario("profile-case-a", CaseAConfig, profile_case_a_cell)
# The bench_scale population-only world (repro.scenarios.scale).
register_scenario("scale-world", ScaleConfig, scale_cell)
register_scenario("profile-case-b", CaseBConfig, profile_case_b_cell)
register_scenario("profile-case-c", CaseCConfig, profile_case_c_cell)
