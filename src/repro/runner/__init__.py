"""Parallel sweep/replication runner.

Fan scenario replications out across worker processes without giving up
bit-for-bit determinism:

>>> from repro.runner import SweepSpec, run_sweep
>>> spec = SweepSpec(
...     scenario="case-a",
...     base={"departure_time": 4 * 86400.0, "attack_start": 86400.0},
...     grid={"hold_ttl": (1800.0, 18000.0)},
...     replications=4,
...     master_seed=7,
... )
>>> result = run_sweep(spec, workers=4)        # doctest: +SKIP
>>> result.aggregate({"hold_ttl": 1800.0})     # doctest: +SKIP

See :mod:`repro.runner.spec` for the seeding/caching contract and
:mod:`repro.runner.core` for the backends.
"""

from .cache import CACHE_VERSION, ResultCache
from .core import (
    CellResult,
    PROCESS,
    SERIAL,
    SweepResult,
    default_workers,
    execute_cell,
    run_sweep,
)
from .registry import (
    ScenarioEntry,
    get_scenario,
    register_scenario,
    scenario_names,
)
from .spec import CellSpec, SweepSpec, canonical_json, config_hash

__all__ = [
    "CACHE_VERSION",
    "ResultCache",
    "CellResult",
    "PROCESS",
    "SERIAL",
    "SweepResult",
    "default_workers",
    "execute_cell",
    "run_sweep",
    "ScenarioEntry",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "CellSpec",
    "SweepSpec",
    "canonical_json",
    "config_hash",
]
