"""Declarative sweep specifications.

A :class:`SweepSpec` names a registered scenario, a parameter grid and
a replication count; expanding it yields one :class:`CellSpec` per
``(grid point, replication)`` pair.  Each cell carries

* a *config hash* — a stable digest of the cell's scenario parameters
  (seed excluded), independent of dict insertion order and of the code
  that produced the dict, and
* a *derived seed* — ``derive_replication_seed(master_seed,
  config_hash, replication)`` — so cells are statistically independent
  but the whole sweep is a pure function of the master seed.

The ``(config_hash, seed)`` pair is also the result-cache key: editing
any parameter or the master seed invalidates exactly the affected
cells.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from ..sim.rng import derive_replication_seed


def canonical_json(value: object) -> str:
    """Deterministic JSON: sorted keys, tuples as lists, no whitespace.

    >>> canonical_json({"b": 2, "a": (1, None)})
    '{"a":[1,null],"b":2}'
    """

    def normalise(node: object) -> object:
        if isinstance(node, Mapping):
            return {str(key): normalise(node[key]) for key in node}
        if isinstance(node, (list, tuple)):
            return [normalise(item) for item in node]
        if isinstance(node, bool) or node is None:
            return node
        if isinstance(node, (int, float, str)):
            return node
        raise TypeError(
            f"sweep parameters must be JSON-representable; got "
            f"{type(node).__name__}: {node!r}"
        )

    return json.dumps(
        normalise(value), sort_keys=True, separators=(",", ":")
    )


def config_hash(params: Mapping[str, object]) -> str:
    """Stable hex digest of a cell's parameters, ignoring any ``seed``.

    The seed is excluded because the runner *assigns* seeds (derived
    from the master seed); two cells that differ only in seed are the
    same configuration, just different replications.
    """
    relevant = {key: value for key, value in params.items() if key != "seed"}
    return hashlib.sha256(
        canonical_json(relevant).encode("utf-8")
    ).hexdigest()


@dataclass(frozen=True)
class CellSpec:
    """One unit of work: a scenario config plus a replication index."""

    scenario: str
    params: Tuple[Tuple[str, object], ...]
    replication: int
    config_hash: str
    seed: int

    def params_dict(self) -> Dict[str, object]:
        return dict(self.params)


@dataclass(frozen=True)
class SweepSpec:
    """A parameter grid x replications over one registered scenario.

    ``base`` holds overrides applied to every cell; ``grid`` maps
    parameter names to the values to sweep (full cross product).  The
    ``seed`` field of the scenario config must not appear in either —
    seeding is the runner's job.

    >>> spec = SweepSpec(
    ...     scenario="case-a",
    ...     grid={"hold_ttl": (1800.0, 7200.0)},
    ...     replications=2,
    ... )
    >>> [cell.replication for cell in spec.cells()]
    [0, 1, 0, 1]
    >>> len({cell.seed for cell in spec.cells()})
    4
    """

    scenario: str
    base: Mapping[str, object] = field(default_factory=dict)
    grid: Mapping[str, Sequence[object]] = field(default_factory=dict)
    replications: int = 1
    master_seed: int = 0

    def __post_init__(self) -> None:
        if self.replications < 1:
            raise ValueError(
                f"replications must be >= 1: {self.replications}"
            )
        for source in (self.base, self.grid):
            if "seed" in source:
                raise ValueError(
                    "'seed' cannot be swept or fixed: the runner derives "
                    "each cell's seed from (master_seed, config_hash, "
                    "replication)"
                )
        for name, values in self.grid.items():
            if not values:
                raise ValueError(f"grid axis {name!r} has no values")

    def points(self) -> List[Dict[str, object]]:
        """All grid points (base merged in), in deterministic order."""
        axes = sorted(self.grid)
        combos = itertools.product(*(self.grid[axis] for axis in axes))
        points = []
        for combo in combos:
            params = dict(self.base)
            params.update(zip(axes, combo))
            points.append(params)
        return points

    def cells(self) -> List[CellSpec]:
        """Expand the grid x replications into cell specs."""
        cells = []
        for params in self.points():
            digest = config_hash(params)
            for replication in range(self.replications):
                cells.append(
                    CellSpec(
                        scenario=self.scenario,
                        params=tuple(sorted(params.items())),
                        replication=replication,
                        config_hash=digest,
                        seed=derive_replication_seed(
                            self.master_seed, digest, replication
                        ),
                    )
                )
        return cells
