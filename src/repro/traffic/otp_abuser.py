"""The OTP-abuse / number-cycling bot (Case D).

Reproduces the disposable-number ecosystem attack ("Your Code is
0000"): the attacker rents virtual numbers in high-termination-fee
countries whose carriers collude, then pumps the *login OTP* endpoint
— which sends an SMS to any number you type, before any account exists
— cycling each rental for a handful of deliveries and discarding it.

The evasion profile is the inverse of Case C's pumper: instead of one
long-lived identity hammering one path, the bot **rotates its browser
fingerprint with every fresh number**, so no single fingerprint ever
crosses a per-fingerprint velocity threshold.  What it cannot hide is
the destination side — the same rented number absorbing
``otps_per_number`` deliveries inside minutes — which is exactly the
signal the number-reputation family convicts on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..common import OTP_ABUSER
from ..identity.forge import BotIdentity
from ..identity.ip import ResidentialProxyPool
from ..sim.clock import HOUR
from ..sim.events import EventLoop
from ..sim.process import Process
from ..sms.gateway import (
    REJECT_FEATURE_DISABLED,
    REJECT_QUOTA_EXHAUSTED,
)
from ..sms.numbers import PhoneNumber
from ..sms.rental import NumberRentalService
from ..web.application import WebApplication
from ..web.request import (
    BLOCKED,
    CAPTCHA_SOLVER,
    OTP_LOGIN,
    RATE_LIMITED,
    Request,
)
from .clients import make_client

#: Default rental-country mix: the colluding high-cost destinations,
#: weighted toward the highest termination fees (the rental services'
#: own catalogues price these markets at a premium for a reason).
DEFAULT_RENTAL_WEIGHTS: Dict[str, float] = {
    "UZ": 0.30, "KG": 0.22, "IR": 0.18, "KH": 0.12, "JO": 0.10,
    "NG": 0.08,
}


@dataclass
class OtpAbuserConfig:
    """Campaign parameters for one number-cycling operation."""

    #: OTP deliveries to collect per rented number before discarding.
    otps_per_number: int = 8
    otp_per_hour: float = 60.0
    rental_weights: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_RENTAL_WEIGHTS)
    )
    #: Consecutive gateway rejections (feature off / quota gone) before
    #: the attacker concludes the channel is dead and stops.
    give_up_after_rejected: int = 20
    #: Consecutive edge blocks before giving up (0 = never) — with the
    #: reputation defense convicting every fresh face on contact, the
    #: bot's rotations stop buying anything and it eventually walks.
    give_up_after_blocked: int = 0

    def __post_init__(self) -> None:
        if self.otps_per_number < 1:
            raise ValueError(
                f"otps_per_number must be >= 1: {self.otps_per_number}"
            )
        if self.otp_per_hour <= 0:
            raise ValueError(
                f"otp_per_hour must be positive: {self.otp_per_hour}"
            )
        if not self.rental_weights:
            raise ValueError("rental_weights must not be empty")


class OtpAbuseBot(Process):
    """Disposable-number OTP pump with per-number identity rotation."""

    def __init__(
        self,
        loop: EventLoop,
        app: WebApplication,
        identity: BotIdentity,
        proxy_pool: ResidentialProxyPool,
        rental: NumberRentalService,
        rng: random.Random,
        config: Optional[OtpAbuserConfig] = None,
        name: str = "otp-abuser",
    ) -> None:
        super().__init__(loop, name=name)
        self.app = app
        self.identity = identity
        self.proxy_pool = proxy_pool
        self.rental = rental
        self.config = config or OtpAbuserConfig()
        self._rng = rng
        self._countries = sorted(self.config.rental_weights)
        self._weights = [
            self.config.rental_weights[c] for c in self._countries
        ]
        self._number: Optional[PhoneNumber] = None
        self._uses = 0
        self.otps_received = 0
        self.blocks_encountered = 0
        self.rate_limits_encountered = 0
        self._rejected_streak = 0
        self._blocked_streak = 0

    def _fresh_number(self) -> PhoneNumber:
        """Rent the next disposable number — and take a fresh face:
        one fingerprint per number keeps every identity below any
        per-fingerprint velocity threshold."""
        country = self._rng.choices(
            self._countries, weights=self._weights
        )[0]
        self.identity.rotate(self.loop.now)
        self._uses = 0
        return self.rental.rent(self._rng, country)

    def step(self) -> Optional[float]:
        now = self.loop.now
        if (
            self._number is None
            or self._uses >= self.config.otps_per_number
        ):
            self._number = self._fresh_number()
        number = self._number
        ip = self.proxy_pool.lease(self._rng, country=number.country_code)

        response = self.app.handle(
            Request(
                method="POST",
                path=OTP_LOGIN,
                client=make_client(
                    ip,
                    self.identity.fingerprint,
                    actor=self.name,
                    actor_class=OTP_ABUSER,
                ),
                params={"phone": number},
                fingerprint=self.identity.fingerprint,
                captcha_ability=CAPTCHA_SOLVER,
            )
        )

        if response.ok:
            self.otps_received += 1
            self._uses += 1
            self._rejected_streak = 0
            self._blocked_streak = 0
        elif response.status == BLOCKED:
            self.blocks_encountered += 1
            self._blocked_streak += 1
            # The fingerprint is burned; so (in the attacker's mind) is
            # the number it was just seen feeding.
            self.identity.maybe_rotate(now, was_blocked=True)
            self._number = None
            give_up = self.config.give_up_after_blocked
            if give_up and self._blocked_streak >= give_up:
                return None
        elif response.status == RATE_LIMITED:
            self.rate_limits_encountered += 1
            self.identity.maybe_rotate(now, was_blocked=True)
        elif response.outcome in (
            REJECT_FEATURE_DISABLED,
            REJECT_QUOTA_EXHAUSTED,
        ):
            self._rejected_streak += 1
            if self._rejected_streak >= self.config.give_up_after_rejected:
                return None  # the channel is dead; the attack ceases

        return self._rng.expovariate(self.config.otp_per_hour / HOUR)
