"""The *manual* Seat Spinning attacker (Section IV-B, Airline C).

A human — not a bot — repeatedly holding seats on an upcoming flight to
manipulate seating.  The signature the paper describes:

* "the same fixed set of passenger names was being used repeatedly,
  though in different orders across bookings",
* "few entries contained slight misspellings of names and surnames,
  suggesting manual input rather than automation",
* "a broad range of IP addresses to hide their location",

while *not* exhibiting bot behaviour: human think times, a genuine
browser fingerprint from one or two personal devices, human CAPTCHA
solving, and low request volume.  This is the attacker that traditional
anti-bot alerts never fire on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..booking.passengers import (
    Passenger,
    misspell,
    sample_birthdate,
    sample_genuine_passenger,
)
from ..common import MANUAL_SPINNER
from ..identity.fingerprint import Fingerprint, FingerprintPopulation
from ..identity.ip import IpAddress, ResidentialProxyPool
from ..sim.clock import DAY, HOUR, MINUTE
from ..sim.events import EventLoop
from ..sim.process import Process
from ..web.application import WebApplication
from ..web.request import CAPTCHA_HUMAN, HOLD, Request
from .clients import make_client


@dataclass
class ManualSpinnerConfig:
    """Parameters of the manual campaign."""

    target_flight: str
    name_pool_size: int = 6
    misspell_probability: float = 0.12
    max_nip: int = 3
    #: Mean pause between bookings while active.
    mean_gap: float = 6 * MINUTE
    #: Length of one active sitting.
    session_length: float = 1 * HOUR
    #: Pause between sittings.
    mean_rest: float = 7 * HOUR
    stop_before_departure: float = 0.5 * DAY
    #: Seat preference sent with each hold.  The default reproduces the
    #: middle-seat hoarding trick (paper citation [11]): on flights
    #: with seat maps, the attacker blocks middle seats specifically.
    seat_preference: str = "middle-block"

    def __post_init__(self) -> None:
        if self.name_pool_size < 2:
            raise ValueError(
                f"name_pool_size must be >= 2: {self.name_pool_size}"
            )
        if not 0.0 <= self.misspell_probability <= 1.0:
            raise ValueError(
                f"misspell_probability must be in [0, 1]: "
                f"{self.misspell_probability}"
            )


class ManualSeatSpinner(Process):
    """Human attacker re-holding seats with a fixed name set."""

    def __init__(
        self,
        loop: EventLoop,
        app: WebApplication,
        rng: random.Random,
        config: ManualSpinnerConfig,
        ip_pool: Optional[ResidentialProxyPool] = None,
        name: str = "manual-spinner",
    ) -> None:
        super().__init__(loop, name=name)
        self.app = app
        self.config = config
        self._rng = rng
        self.ip_pool = ip_pool or ResidentialProxyPool()
        population = FingerprintPopulation()
        # One or two personal devices, used for the whole campaign.
        self._devices: List[Fingerprint] = [
            population.sample(rng) for _ in range(rng.choice([1, 2]))
        ]
        # The fixed name set, with stable birthdates per person — it is
        # the *order* and the occasional typo that vary.
        self._people: List[Tuple[str, str, str]] = []
        for _ in range(config.name_pool_size):
            person = sample_genuine_passenger(rng)
            self._people.append(
                (person.first_name, person.last_name, person.birthdate)
            )
        self._session_deadline = 0.0
        self.holds_created = 0
        self.attempts = 0

    def _make_party(self) -> List[Passenger]:
        nip = self._rng.randint(1, self.config.max_nip)
        chosen = self._rng.sample(self._people, nip)
        party = []
        for first, last, birthdate in chosen:
            if self._rng.random() < self.config.misspell_probability:
                if self._rng.random() < 0.5:
                    first = misspell(first, self._rng)
                else:
                    last = misspell(last, self._rng)
            party.append(
                Passenger(
                    first_name=first,
                    last_name=last,
                    birthdate=birthdate,
                    email=f"{first.lower()}{last.lower()}@webmail.example",
                )
            )
        return party

    def step(self) -> Optional[float]:
        now = self.loop.now
        try:
            flight = self.app.reservations.flight(self.config.target_flight)
        except KeyError:
            return None
        if now >= flight.departure_time - self.config.stop_before_departure:
            return None

        if now >= self._session_deadline:
            # Start a new sitting: fresh VPN exit, maybe the other device.
            self._session_deadline = now + self.config.session_length
            self.ip: IpAddress = self.ip_pool.lease(self._rng)

        self.attempts += 1
        fingerprint = self._rng.choice(self._devices)
        request = Request(
            method="POST",
            path=HOLD,
            client=make_client(
                self.ip,
                fingerprint,
                actor=self.name,
                actor_class=MANUAL_SPINNER,
            ),
            params={
                "flight_id": self.config.target_flight,
                "passengers": self._make_party(),
                "seat_preference": self.config.seat_preference,
            },
            fingerprint=fingerprint,
            captcha_ability=CAPTCHA_HUMAN,
        )
        response = self.app.handle(request)
        if response.ok:
            self.holds_created += 1

        gap = self._rng.expovariate(1.0 / self.config.mean_gap)
        if now + gap >= self._session_deadline:
            # Done for now; come back after a rest.
            return gap + self._rng.expovariate(1.0 / self.config.mean_rest)
        return gap
