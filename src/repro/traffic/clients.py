"""Client construction helpers shared by every traffic generator."""

from __future__ import annotations

from ..common import ClientRef, LEGIT
from ..identity.fingerprint import Fingerprint
from ..identity.ip import IpAddress


def make_client(
    ip: IpAddress,
    fingerprint: Fingerprint,
    profile_id: str = "",
    actor: str = "",
    actor_class: str = LEGIT,
) -> ClientRef:
    """Bundle an IP and fingerprint into the :class:`ClientRef` the
    server attributes requests to."""
    return ClientRef(
        ip_address=ip.address,
        ip_country=ip.country,
        ip_residential=ip.residential,
        fingerprint_id=fingerprint.fingerprint_id,
        user_agent=fingerprint.user_agent,
        profile_id=profile_id,
        actor=actor,
        actor_class=actor_class,
    )
