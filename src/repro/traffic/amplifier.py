"""The agent-based amplification bot (Case E).

Jakobsson & Menczer's "cluster bomb" generalised: any open endpoint
that sends a message to a user-supplied destination is a free
amplification node.  Here the abused feature is the airline's
``/notify`` flight-status endpoint — the attacker's agents feed it the
*victim's* phone number, turning the airline's SMS budget into a
harassment / denial-of-service cannon pointed at someone who never
visited the site.

The bot is paid per message landed (an "amplification contract"), so
its economics are the mirror of Case C/D: revenue does not flow
through colluding carriers — the victim's number is **not**
attacker-controlled — it flows from whoever hired the flood.  The
defense consequently cannot rely on settlement-side signals at all;
it has to see the *destination surge* itself
(:class:`~repro.core.detection.surge.DestinationSurgeScorer`), and the
scenario accounts for collateral damage to legitimate notifications
while the defense is active.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..common import AMPLIFIER
from ..identity.forge import BotIdentity
from ..identity.ip import ResidentialProxyPool
from ..sim.clock import HOUR
from ..sim.events import EventLoop
from ..sim.process import Process
from ..sms.numbers import PhoneNumber
from ..web.application import WebApplication
from ..web.request import (
    BLOCKED,
    CAPTCHA_SOLVER,
    NOTIFY,
    RATE_LIMITED,
    Request,
)
from .clients import make_client


@dataclass
class AmplifierConfig:
    """Flood parameters for one amplification contract."""

    notifications_per_hour: float = 600.0
    #: Rotate the browser fingerprint every N sends even without a
    #: block — the flood is distributed across "agents", so no single
    #: identity accounts for enough volume to trip per-entity velocity.
    rotate_every: int = 25
    #: Consecutive edge blocks before abandoning the contract
    #: (0 = keep hammering for the full run).
    give_up_after_blocked: int = 0

    def __post_init__(self) -> None:
        if self.notifications_per_hour <= 0:
            raise ValueError(
                "notifications_per_hour must be positive: "
                f"{self.notifications_per_hour}"
            )
        if self.rotate_every < 1:
            raise ValueError(
                f"rotate_every must be >= 1: {self.rotate_every}"
            )


class AmplifierBot(Process):
    """Floods ``/notify`` toward fixed victim destinations."""

    def __init__(
        self,
        loop: EventLoop,
        app: WebApplication,
        identity: BotIdentity,
        proxy_pool: ResidentialProxyPool,
        victims: Sequence[PhoneNumber],
        rng: random.Random,
        config: Optional[AmplifierConfig] = None,
        name: str = "amplifier",
    ) -> None:
        if not victims:
            raise ValueError("amplifier needs at least one victim number")
        super().__init__(loop, name=name)
        self.app = app
        self.identity = identity
        self.proxy_pool = proxy_pool
        self.victims: List[PhoneNumber] = list(victims)
        self.config = config or AmplifierConfig()
        self._rng = rng
        self._victim_index = 0
        self._since_rotation = 0
        self.notifications_delivered = 0
        self.blocks_encountered = 0
        self.rate_limits_encountered = 0
        self._blocked_streak = 0

    def step(self) -> Optional[float]:
        now = self.loop.now
        if self._since_rotation >= self.config.rotate_every:
            self.identity.rotate(now)
            self._since_rotation = 0
        victim = self.victims[self._victim_index % len(self.victims)]
        self._victim_index += 1
        ip = self.proxy_pool.lease(self._rng)

        response = self.app.handle(
            Request(
                method="POST",
                path=NOTIFY,
                client=make_client(
                    ip,
                    self.identity.fingerprint,
                    actor=self.name,
                    actor_class=AMPLIFIER,
                ),
                params={"phone": victim},
                fingerprint=self.identity.fingerprint,
                captcha_ability=CAPTCHA_SOLVER,
            )
        )
        self._since_rotation += 1

        if response.ok:
            self.notifications_delivered += 1
            self._blocked_streak = 0
        elif response.status == BLOCKED:
            self.blocks_encountered += 1
            self._blocked_streak += 1
            self.identity.maybe_rotate(now, was_blocked=True)
            self._since_rotation = 0
            give_up = self.config.give_up_after_blocked
            if give_up and self._blocked_streak >= give_up:
                return None
        elif response.status == RATE_LIMITED:
            self.rate_limits_encountered += 1
            self.identity.maybe_rotate(now, was_blocked=True)
            self._since_rotation = 0

        return self._rng.expovariate(
            self.config.notifications_per_hour / HOUR
        )
