"""Legitimate traffic: the booking-funnel user population.

Generates the background an attack has to be found against.  Visitors
arrive as a Poisson process; each runs a realistic funnel (search →
details → hold → pay) with think times, a Number-in-Party drawn from a
calibrated mixture, abandonment (holds that simply expire — legitimate
users cause expiries too), OTP logins, and boarding-pass-via-SMS
requests to the visitor's own home country.

The NiP mixture defaults reproduce the paper's Fig. 1 "average week":
dominated by one- and two-passenger reservations with a thin tail of
larger groups.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..booking.passengers import Passenger, sample_genuine_party
from ..booking.reservation import REJECT_NIP_CAP
from ..common import LEGIT
from ..identity.fingerprint import Fingerprint, FingerprintPopulation
from ..identity.ip import HomeIpAssigner, IpAddress
from ..sim.clock import HOUR, MINUTE
from ..sim.events import EventLoop
from ..sim.process import Process
from ..sms.numbers import PhoneNumber, sample_number
from ..web.application import WebApplication
from ..web.request import (
    BOARDING_PASS_SMS,
    CAPTCHA_HUMAN,
    FLIGHT_DETAILS,
    HOLD,
    OTP_LOGIN,
    PAY,
    Request,
    SEARCH,
)
from .clients import make_client

#: Fig. 1 "average week" NiP shares (index = party size).
AVERAGE_WEEK_NIP_MIXTURE: Dict[int, float] = {
    1: 0.500,
    2: 0.310,
    3: 0.080,
    4: 0.050,
    5: 0.025,
    6: 0.013,
    7: 0.012,
    8: 0.006,
    9: 0.004,
}


@dataclass
class LegitimateConfig:
    """Tunable behaviour of the legitimate population."""

    visitor_rate_per_hour: float = 30.0
    nip_mixture: Dict[int, float] = field(
        default_factory=lambda: dict(AVERAGE_WEEK_NIP_MIXTURE)
    )
    hold_probability: float = 0.65
    pay_probability: float = 0.72
    pay_delay_mean: float = 25 * MINUTE
    otp_probability: float = 0.15
    boarding_pass_probability: float = 0.40
    #: Probability a group rejected by a NiP cap re-books at the cap
    #: (Fig. 1: "legitimate group bookings adjust as well").
    retry_at_cap_probability: float = 0.75
    loyalty_share: float = 0.25
    home_country_weights: Optional[Dict[str, float]] = None
    #: Interarrival times are drawn from the arrival RNG stream in
    #: blocks of this size and bulk-scheduled (``schedule_many``).  The
    #: drawn sequence — hence the whole simulation — is bit-identical
    #: for any block size; 1 is the scalar reference path the
    #: equivalence tests compare against.
    arrival_block_size: int = 256

    def __post_init__(self) -> None:
        if self.visitor_rate_per_hour <= 0:
            raise ValueError(
                f"visitor_rate_per_hour must be positive: "
                f"{self.visitor_rate_per_hour}"
            )
        total = sum(self.nip_mixture.values())
        if total <= 0:
            raise ValueError("nip_mixture weights must sum to > 0")
        if self.arrival_block_size < 1:
            raise ValueError(
                f"arrival_block_size must be >= 1: {self.arrival_block_size}"
            )

    def sample_nip(self, rng: random.Random) -> int:
        sizes = sorted(self.nip_mixture)
        weights = [self.nip_mixture[size] for size in sizes]
        return rng.choices(sizes, weights=weights)[0]


class LegitimatePopulation(Process):
    """Poisson arrivals of legitimate booking funnels.

    Arrivals are a Poisson process: interarrival gaps are drawn from a
    dedicated ``arrival_rng`` stream in blocks (vectorized NumPy
    exponentials) and bulk-scheduled on the event loop, one event per
    visitor, so the web log still interleaves visitors realistically.
    Each visitor's funnel actions (think times, party sizes, choices)
    stay on the scalar ``rng`` stream, drawn in event order exactly as
    before — only the arrival clock is vectorized.
    """

    def __init__(
        self,
        loop: EventLoop,
        app: WebApplication,
        rng: random.Random,
        config: Optional[LegitimateConfig] = None,
        name: str = "legit-population",
        arrival_rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(loop, name=name)
        self.app = app
        self.config = config or LegitimateConfig()
        self._rng = rng
        #: Arrival gaps come from their own stream (pass the registry's
        #: ``numpy_stream("traffic.legit.arrivals")``); the fallback
        #: derives one from ``rng`` so standalone construction stays
        #: seed-reproducible.
        self._arrival_rng = (
            arrival_rng
            if arrival_rng is not None
            else np.random.default_rng(rng.getrandbits(64))
        )
        self._fingerprints = FingerprintPopulation()
        if self.config.home_country_weights:
            mix = tuple(sorted(self.config.home_country_weights.items()))
        else:
            mix = None
        self._homes = (
            HomeIpAssigner(mix) if mix is not None else HomeIpAssigner()
        )
        self._visitor_counter = 0
        self.visitors_spawned = 0
        #: Exact time of the last scheduled arrival (the head of the
        #: gap chain); ``None`` until the first block of a run.
        self._arrival_clock: Optional[float] = None

    def step(self) -> Optional[float]:
        """Draw one block of interarrival gaps and bulk-schedule it.

        Arrival times are accumulated *sequentially* from the last
        scheduled arrival (``t += gap``, one float add per arrival) —
        not via ``np.cumsum`` — because block-size invariance must be
        bit-exact: cumsum associates the additions differently
        (``start + (g1 + g2)`` vs ``(start + g1) + g2``) and drifts
        from the scalar reference path by a few ulp per block.  The
        next step fires when the block is exhausted; the chain itself
        never passes through ``loop.now``, so rescheduling round-off
        cannot perturb it.
        """
        mean_gap = HOUR / self.config.visitor_rate_per_hour
        gaps = self._arrival_rng.exponential(
            mean_gap, size=self.config.arrival_block_size
        )
        now = self.loop.now
        t = self._arrival_clock if self._arrival_clock is not None else now
        whens = []
        for gap in gaps.tolist():
            t += gap
            whens.append(t)
        self._arrival_clock = t
        self.loop.schedule_many(
            whens, self._spawn_visitor, label="legit-arrival"
        )
        return max(t - now, 0.0)

    def on_stop(self) -> None:
        # A restart must not chain arrivals off a stale (past) clock.
        self._arrival_clock = None

    def _spawn_visitor(self) -> None:
        if not self._running:
            return  # stopped with arrivals still queued from the block
        self._visitor_counter += 1
        self.visitors_spawned += 1
        visitor = _Visitor(
            index=self._visitor_counter,
            population=self,
            rng=self._rng,
        )
        visitor.begin()


class _Visitor:
    """One legitimate booking funnel, scheduled step by step."""

    __slots__ = (
        "_pop",
        "_rng",
        "fingerprint",
        "ip",
        "profile_id",
        "actor",
        "phone",
        "hold_id",
        "flight_id",
        "_browse_budget",
        "_client_ref",
    )

    def __init__(
        self,
        index: int,
        population: LegitimatePopulation,
        rng: random.Random,
    ) -> None:
        self._pop = population
        self._rng = rng
        config = population.config
        self.fingerprint: Fingerprint = population._fingerprints.sample(rng)
        self.ip: IpAddress = population._homes.assign(rng)
        loyal = rng.random() < config.loyalty_share
        prefix = "loyal" if loyal else "user"
        self.profile_id = f"{prefix}-{index:06d}"
        self.actor = f"legit-{index:06d}"
        self.phone: PhoneNumber = sample_number(rng, self.ip.country)
        self.hold_id = ""
        self.flight_id = ""
        # Fare browsing: how many extra compare-the-fares loops this
        # visitor runs before committing (real shoppers loop; a funnel
        # that never revisits search would make any looping client look
        # anomalous to navigation models).
        self._browse_budget = rng.choices(
            [0, 1, 2, 3], weights=[0.35, 0.35, 0.2, 0.1]
        )[0]
        # A visitor's identity never changes mid-funnel, so the frozen
        # ClientRef is built once instead of per request.
        self._client_ref = make_client(
            self.ip,
            self.fingerprint,
            profile_id=self.profile_id,
            actor=self.actor,
            actor_class=LEGIT,
        )

    # -- plumbing ---------------------------------------------------------

    @property
    def _loop(self) -> EventLoop:
        return self._pop.loop

    def _client(self):
        return self._client_ref

    def _send(self, method: str, path: str, params: dict):
        request = Request(
            method=method,
            path=path,
            client=self._client_ref,
            params=params,
            fingerprint=self.fingerprint,
            captcha_ability=CAPTCHA_HUMAN,
        )
        return self._pop.app.handle(request)

    def _later(self, delay: float, action) -> None:
        self._loop.schedule_in(delay, action, label="visitor")

    def _think(self, low: float = 5.0, high: float = 45.0) -> float:
        return self._rng.uniform(low, high)

    # -- funnel steps -----------------------------------------------------

    def begin(self) -> None:
        if self._rng.random() < self._pop.config.otp_probability:
            self._later(self._think(), self._do_otp_login)
        else:
            self._later(self._think(1.0, 10.0), self._do_search)

    def _do_otp_login(self) -> None:
        self._send("POST", OTP_LOGIN, {"phone": self.phone})
        self._later(self._think(10.0, 60.0), self._do_search)

    def _do_search(self) -> None:
        response = self._send("GET", SEARCH, {})
        open_flights = []
        if response.ok and response.data:
            open_flights = [
                entry["flight_id"]
                for entry in response.data
                if entry["available"] > 0
            ]
        if not open_flights:
            return  # nothing bookable; abandon
        self.flight_id = self._rng.choice(open_flights)
        self._later(self._think(), self._do_details)

    def _do_details(self) -> None:
        self._send("GET", FLIGHT_DETAILS, {"flight_id": self.flight_id})
        if self._browse_budget > 0:
            self._browse_budget -= 1
            if self._rng.random() < 0.5:
                self._later(self._think(), self._do_search)
            else:
                self._later(self._think(), self._do_details_other)
            return
        if self._rng.random() < self._pop.config.hold_probability:
            self._later(self._think(20.0, 120.0), self._do_hold)

    def _do_details_other(self) -> None:
        """Compare another flight's fare, then resume the funnel."""
        flights = self._pop.app.reservations.flights()
        if flights:
            other = self._rng.choice(flights)
            self._send(
                "GET", FLIGHT_DETAILS, {"flight_id": other.flight_id}
            )
        self._later(self._think(), self._do_details)

    def _do_hold(self, forced_nip: Optional[int] = None) -> None:
        config = self._pop.config
        nip = forced_nip or config.sample_nip(self._rng)
        party: List[Passenger] = sample_genuine_party(self._rng, nip)
        response = self._send(
            "POST", HOLD, {"flight_id": self.flight_id, "passengers": party}
        )
        if response.ok:
            self.hold_id = response.data.hold_id
            if self._rng.random() < config.pay_probability:
                delay = self._rng.expovariate(1.0 / config.pay_delay_mean)
                self._later(delay, self._do_pay)
            return
        if (
            response.outcome == REJECT_NIP_CAP
            and forced_nip is None
            and self._rng.random() < config.retry_at_cap_probability
        ):
            # The group splits / trims itself to fit under the new cap.
            cap = self._pop.app.reservations.max_nip
            self._later(
                self._think(30.0, 180.0),
                lambda: self._do_hold(forced_nip=cap),
            )

    def _do_pay(self) -> None:
        response = self._send("POST", PAY, {"hold_id": self.hold_id})
        if not response.ok:
            return  # hold expired while the visitor dithered
        config = self._pop.config
        if self._rng.random() < config.boarding_pass_probability:
            self._later(self._think(60.0, 600.0), self._do_boarding_pass)

    def _do_boarding_pass(self) -> None:
        self._send(
            "POST",
            BOARDING_PASS_SMS,
            {"booking_ref": self.hold_id, "phone": self.phone},
        )
