"""The evasive scraper: behaviour-based detection's counterexample.

Section III-A cites work showing bots that "adjusted page visiting time
according to page content", "statistically modeled the time between
subsequent requests", and used reinforcement learning to "dynamically
adjust [their] behavior and bypass detection".  This bot implements the
resulting playbook:

* **human-paced** — log-normal think times instead of a Poisson firehose;
* **session-budgeted** — after a handful of requests it rotates
  fingerprint *and* IP, so every reconstructed session stays small;
* **funnel-shaped** — walks search → details like a shopper, never
  touches the hidden trap link (it scrapes from a known sitemap);
* **adaptive** — when a request is blocked or challenged it backs off
  multiplicatively before resuming, starving rate-based detectors.

Its throughput is a fraction of the naive scraper's — that is the cost
of evasion — but every conventional session-level detector in this
library scores it as human.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from ..common import SCRAPER
from ..identity.forge import BotIdentity
from ..identity.ip import IpAddress, ResidentialProxyPool
from ..sim.clock import HOUR, MINUTE
from ..sim.events import EventLoop
from ..sim.process import Process
from ..web.application import WebApplication
from ..web.request import (
    BLOCKED,
    CAPTCHA_FAILED,
    CAPTCHA_SOLVER,
    FLIGHT_DETAILS,
    RATE_LIMITED,
    Request,
    SEARCH,
)
from .clients import make_client


@dataclass
class EvasiveScraperConfig:
    """Evasive-campaign parameters."""

    #: Median think time between requests (log-normal).
    median_think_time: float = 20.0
    think_time_sigma: float = 0.8
    #: Requests per identity before rotating (keeps sessions tiny).
    session_budget: int = 12
    #: Pause between identity rotations (a "new visitor" arriving).
    inter_session_pause: float = 3 * MINUTE
    duration: float = 12 * HOUR
    #: Multiplicative backoff factor after a block/limit/challenge.
    backoff_factor: float = 3.0
    max_backoff: float = 30 * MINUTE

    def __post_init__(self) -> None:
        if self.median_think_time <= 0:
            raise ValueError(
                f"median_think_time must be positive: "
                f"{self.median_think_time}"
            )
        if self.session_budget < 1:
            raise ValueError(
                f"session_budget must be >= 1: {self.session_budget}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1: {self.backoff_factor}"
            )


class EvasiveScraperBot(Process):
    """Low-and-slow scraper that mimics shopper behaviour."""

    def __init__(
        self,
        loop: EventLoop,
        app: WebApplication,
        identity: BotIdentity,
        rng: random.Random,
        config: Optional[EvasiveScraperConfig] = None,
        ip_pool: Optional[ResidentialProxyPool] = None,
        name: str = "evasive-scraper",
    ) -> None:
        super().__init__(loop, name=name)
        self.app = app
        self.identity = identity
        self.config = config or EvasiveScraperConfig()
        self._rng = rng
        self.ip_pool = ip_pool or ResidentialProxyPool()
        self.ip: IpAddress = self.ip_pool.lease(rng)
        self._deadline: Optional[float] = None
        self._session_requests = 0
        self._in_funnel = False  # whether the next request is "details"
        self._current_backoff = 0.0
        self.requests_made = 0
        self.pages_scraped = 0
        self.blocks_encountered = 0
        self.sessions_used = 1

    def _rotate_session(self) -> None:
        """Become a brand-new visitor: fresh fingerprint, fresh exit."""
        self.identity.rotate(self.loop.now)
        self.ip = self.ip_pool.lease(self._rng)
        self._session_requests = 0
        self._in_funnel = False
        self.sessions_used += 1

    def _think_time(self) -> float:
        # ln(median) is the mu parameter of a log-normal's median.
        return self._rng.lognormvariate(
            math.log(self.config.median_think_time),
            self.config.think_time_sigma,
        )

    def step(self) -> Optional[float]:
        now = self.loop.now
        if self._deadline is None:
            self._deadline = now + self.config.duration
        if now >= self._deadline:
            return None

        if self._session_requests >= self.config.session_budget:
            self._rotate_session()
            return self.config.inter_session_pause * self._rng.uniform(
                0.7, 1.6
            )

        # Walk the funnel the way a shopper does: a search page, then a
        # couple of fare-details pages for specific flights.
        flights = self.app.reservations.flights()
        if not self._in_funnel or not flights:
            path, params = SEARCH, {}
            self._in_funnel = True
        else:
            flight = self._rng.choice(flights)
            path, params = FLIGHT_DETAILS, {"flight_id": flight.flight_id}
            if self._rng.random() < 0.3:
                self._in_funnel = False  # back to a fresh search

        response = self.app.handle(
            Request(
                method="GET",
                path=path,
                client=make_client(
                    self.ip,
                    self.identity.fingerprint,
                    actor=self.name,
                    actor_class=SCRAPER,
                ),
                params=params,
                fingerprint=self.identity.fingerprint,
                captcha_ability=CAPTCHA_SOLVER,
            )
        )
        self.requests_made += 1
        self._session_requests += 1

        if response.status in (BLOCKED, RATE_LIMITED, CAPTCHA_FAILED):
            self.blocks_encountered += 1
            self._rotate_session()
            self._current_backoff = min(
                max(self._current_backoff, 30.0) * self.config.backoff_factor,
                self.config.max_backoff,
            )
            return self._current_backoff * self._rng.uniform(0.8, 1.3)

        if response.ok and path == FLIGHT_DETAILS:
            self.pages_scraped += 1
        self._current_backoff = 0.0
        return self._think_time()
