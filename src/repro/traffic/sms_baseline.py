"""Lightweight global baseline of legitimate SMS traffic.

The Case C evaluation (Table I) needs a *global* baseline of
boarding-pass and OTP messages across ~50 destination countries.
Simulating every one of those users' full booking funnels would add
nothing to the SMS analysis, so this generator issues the SMS-bearing
requests directly: each event is one genuine traveller asking for a
boarding pass (or OTP) to a phone in their home country, from their own
device and home connection.

The per-country mix follows :func:`repro.sms.countries.legit_weights`,
which is what makes the Table I surge denominators realistic: large
markets receive thousands of messages a week, Uzbekistan a handful.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..common import LEGIT
from ..identity.fingerprint import FingerprintPopulation
from ..identity.ip import HomeIpAssigner
from ..sim.clock import HOUR
from ..sim.events import EventLoop
from ..sim.process import Process
from ..sms.countries import legit_weights
from ..sms.numbers import sample_number
from ..web.application import WebApplication
from ..web.request import (
    BOARDING_PASS_SMS,
    CAPTCHA_HUMAN,
    OTP_LOGIN,
    Request,
)
from .clients import make_client


@dataclass
class BaselineSmsConfig:
    """Volume and mix of the global SMS baseline."""

    sms_per_hour: float = 300.0
    otp_fraction: float = 0.25
    country_weights: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        if self.sms_per_hour <= 0:
            raise ValueError(
                f"sms_per_hour must be positive: {self.sms_per_hour}"
            )
        if not 0.0 <= self.otp_fraction <= 1.0:
            raise ValueError(
                f"otp_fraction must be in [0, 1]: {self.otp_fraction}"
            )


class BaselineSmsTraffic(Process):
    """Poisson stream of legitimate SMS-bearing requests."""

    def __init__(
        self,
        loop: EventLoop,
        app: WebApplication,
        rng: random.Random,
        config: Optional[BaselineSmsConfig] = None,
        name: str = "sms-baseline",
    ) -> None:
        super().__init__(loop, name=name)
        self.app = app
        self.config = config or BaselineSmsConfig()
        self._rng = rng
        weights = self.config.country_weights or legit_weights()
        self._countries = sorted(weights)
        self._weights = [weights[c] for c in self._countries]
        self._fingerprints = FingerprintPopulation()
        self._user_counter = 0
        self.requests_made = 0

    def step(self) -> Optional[float]:
        self._user_counter += 1
        country = self._rng.choices(self._countries, weights=self._weights)[0]
        fingerprint = self._fingerprints.sample(self._rng)
        ip = HomeIpAssigner(((country, 1.0),)).assign(self._rng)
        phone = sample_number(self._rng, country)
        client = make_client(
            ip,
            fingerprint,
            profile_id=f"user-sms-{self._user_counter:07d}",
            actor=f"legit-sms-{self._user_counter:07d}",
            actor_class=LEGIT,
        )
        if self._rng.random() < self.config.otp_fraction:
            request = Request(
                method="POST",
                path=OTP_LOGIN,
                client=client,
                params={"phone": phone},
                fingerprint=fingerprint,
                captcha_ability=CAPTCHA_HUMAN,
            )
        else:
            request = Request(
                method="POST",
                path=BOARDING_PASS_SMS,
                client=client,
                params={
                    "booking_ref": f"LEGIT{self._user_counter:07d}",
                    "phone": phone,
                },
                fingerprint=fingerprint,
                captcha_ability=CAPTCHA_HUMAN,
            )
        self.app.handle(request)
        self.requests_made += 1
        return self._rng.expovariate(self.config.sms_per_hour / HOUR)
