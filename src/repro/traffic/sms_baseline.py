"""Lightweight global baseline of legitimate SMS traffic.

The Case C evaluation (Table I) needs a *global* baseline of
boarding-pass and OTP messages across ~50 destination countries.
Simulating every one of those users' full booking funnels would add
nothing to the SMS analysis, so this generator issues the SMS-bearing
requests directly: each event is one genuine traveller asking for a
boarding pass (or OTP) to a phone in their home country, from their own
device and home connection.

The per-country mix follows :func:`repro.sms.countries.legit_weights`,
which is what makes the Table I surge denominators realistic: large
markets receive thousands of messages a week, Uzbekistan a handful.

Arrival times are vectorized: interarrival gaps come off a dedicated
NumPy stream in blocks and are bulk-scheduled (one event per message),
bit-identically for any block size; the per-message identity draws stay
on the scalar ``rng`` stream in event order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..common import LEGIT
from ..identity.fingerprint import FingerprintPopulation
from ..identity.ip import HomeIpAssigner
from ..sim.clock import HOUR
from ..sim.events import EventLoop
from ..sim.process import Process
from ..sms.countries import legit_weights
from ..sms.numbers import sample_number
from ..web.application import WebApplication
from ..web.request import (
    BOARDING_PASS_SMS,
    CAPTCHA_HUMAN,
    NOTIFY,
    OTP_LOGIN,
    Request,
)
from .clients import make_client


@dataclass
class BaselineSmsConfig:
    """Volume and mix of the global SMS baseline."""

    sms_per_hour: float = 300.0
    otp_fraction: float = 0.25
    #: Fraction of the stream that is flight-status notifications
    #: (Case E's legitimate background on ``/notify``).  The default 0
    #: keeps the pre-Case-E scenarios draw-for-draw identical: kind
    #: selection reuses the single ``otp_fraction`` draw with cascading
    #: thresholds, so enabling notifications adds no RNG draws.
    notification_fraction: float = 0.0
    country_weights: Optional[Dict[str, float]] = None
    #: Interarrival gaps per bulk-scheduled block (1 = scalar reference
    #: path; any value yields a bit-identical simulation).
    arrival_block_size: int = 256

    def __post_init__(self) -> None:
        if self.sms_per_hour <= 0:
            raise ValueError(
                f"sms_per_hour must be positive: {self.sms_per_hour}"
            )
        if not 0.0 <= self.otp_fraction <= 1.0:
            raise ValueError(
                f"otp_fraction must be in [0, 1]: {self.otp_fraction}"
            )
        if not 0.0 <= self.notification_fraction <= 1.0:
            raise ValueError(
                "notification_fraction must be in [0, 1]: "
                f"{self.notification_fraction}"
            )
        if self.otp_fraction + self.notification_fraction > 1.0:
            raise ValueError(
                "otp_fraction + notification_fraction must be <= 1: "
                f"{self.otp_fraction} + {self.notification_fraction}"
            )
        if self.arrival_block_size < 1:
            raise ValueError(
                f"arrival_block_size must be >= 1: {self.arrival_block_size}"
            )


class BaselineSmsTraffic(Process):
    """Poisson stream of legitimate SMS-bearing requests."""

    def __init__(
        self,
        loop: EventLoop,
        app: WebApplication,
        rng: random.Random,
        config: Optional[BaselineSmsConfig] = None,
        name: str = "sms-baseline",
        arrival_rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(loop, name=name)
        self.app = app
        self.config = config or BaselineSmsConfig()
        self._rng = rng
        self._arrival_rng = (
            arrival_rng
            if arrival_rng is not None
            else np.random.default_rng(rng.getrandbits(64))
        )
        weights = self.config.country_weights or legit_weights()
        self._countries = sorted(weights)
        self._weights = [weights[c] for c in self._countries]
        self._fingerprints = FingerprintPopulation()
        # One stable assigner per country: construction is pure (no RNG
        # draws), so caching is draw-for-draw identical to rebuilding.
        self._home_assigners: Dict[str, HomeIpAssigner] = {}
        self._user_counter = 0
        self.requests_made = 0
        self._arrival_clock: Optional[float] = None

    def step(self) -> Optional[float]:
        """Bulk-schedule one block of message arrivals.

        Gaps are accumulated sequentially off the last arrival, never
        via cumsum — see
        :meth:`repro.traffic.legitimate.LegitimatePopulation.step` for
        why that is what makes block-size invariance bit-exact.
        """
        mean_gap = HOUR / self.config.sms_per_hour
        gaps = self._arrival_rng.exponential(
            mean_gap, size=self.config.arrival_block_size
        )
        now = self.loop.now
        t = self._arrival_clock if self._arrival_clock is not None else now
        whens = []
        for gap in gaps.tolist():
            t += gap
            whens.append(t)
        self._arrival_clock = t
        self.loop.schedule_many(
            whens, self._send_one, label="sms-baseline-arrival"
        )
        return max(t - now, 0.0)

    def on_stop(self) -> None:
        # A restart must not chain arrivals off a stale (past) clock.
        self._arrival_clock = None

    def _send_one(self) -> None:
        if not self._running:
            return  # stopped with arrivals still queued from the block
        rng = self._rng
        self._user_counter += 1
        country = rng.choices(self._countries, weights=self._weights)[0]
        fingerprint = self._fingerprints.sample(rng)
        assigner = self._home_assigners.get(country)
        if assigner is None:
            assigner = HomeIpAssigner(((country, 1.0),))
            self._home_assigners[country] = assigner
        ip = assigner.assign(rng)
        phone = sample_number(rng, country)
        client = make_client(
            ip,
            fingerprint,
            profile_id=f"user-sms-{self._user_counter:07d}",
            actor=f"legit-sms-{self._user_counter:07d}",
            actor_class=LEGIT,
        )
        # One draw decides the message kind via cascading thresholds:
        # with notification_fraction == 0 the second band is empty and
        # the RNG sequence is identical to the historical two-way split.
        draw = rng.random()
        if draw < self.config.otp_fraction:
            request = Request(
                method="POST",
                path=OTP_LOGIN,
                client=client,
                params={"phone": phone},
                fingerprint=fingerprint,
                captcha_ability=CAPTCHA_HUMAN,
            )
        elif draw < self.config.otp_fraction + self.config.notification_fraction:
            request = Request(
                method="POST",
                path=NOTIFY,
                client=client,
                params={"phone": phone},
                fingerprint=fingerprint,
                captcha_ability=CAPTCHA_HUMAN,
            )
        else:
            request = Request(
                method="POST",
                path=BOARDING_PASS_SMS,
                client=client,
                params={
                    "booking_ref": f"LEGIT{self._user_counter:07d}",
                    "phone": phone,
                },
                fingerprint=fingerprint,
                captcha_ability=CAPTCHA_HUMAN,
            )
        self.app.handle(request)
        self.requests_made += 1
