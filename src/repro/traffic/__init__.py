"""Traffic generation: legitimate population and attacker automata.

* :mod:`repro.traffic.legitimate` — booking-funnel visitor population,
* :mod:`repro.traffic.sms_baseline` — global legitimate SMS stream,
* :mod:`repro.traffic.seat_spinner` — automated DoI bot (Case A/B),
* :mod:`repro.traffic.manual_spinner` — human seat spinner (Case B),
* :mod:`repro.traffic.sms_pumper` — advanced SMS Pumping bot (Case C),
* :mod:`repro.traffic.scraper` — classic scraping baseline.
"""

from .clients import make_client
from .evasive_scraper import EvasiveScraperBot, EvasiveScraperConfig
from .legitimate import (
    AVERAGE_WEEK_NIP_MIXTURE,
    LegitimateConfig,
    LegitimatePopulation,
)
from .manual_spinner import ManualSeatSpinner, ManualSpinnerConfig
from .scraper import ScraperBot, ScraperConfig
from .seat_spinner import (
    FIXED_NAME_ROTATING_DOB,
    GIBBERISH,
    PLAUSIBLE,
    SeatSpinnerBot,
    SeatSpinnerConfig,
)
from .sms_baseline import BaselineSmsConfig, BaselineSmsTraffic
from .sms_pumper import DEFAULT_TARGET_WEIGHTS, SmsPumperBot, SmsPumperConfig

__all__ = [
    "make_client",
    "EvasiveScraperBot",
    "EvasiveScraperConfig",
    "AVERAGE_WEEK_NIP_MIXTURE",
    "LegitimateConfig",
    "LegitimatePopulation",
    "ManualSeatSpinner",
    "ManualSpinnerConfig",
    "ScraperBot",
    "ScraperConfig",
    "FIXED_NAME_ROTATING_DOB",
    "GIBBERISH",
    "PLAUSIBLE",
    "SeatSpinnerBot",
    "SeatSpinnerConfig",
    "BaselineSmsConfig",
    "BaselineSmsTraffic",
    "DEFAULT_TARGET_WEIGHTS",
    "SmsPumperBot",
    "SmsPumperConfig",
]
