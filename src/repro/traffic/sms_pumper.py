"""The advanced SMS Pumping bot (Section IV-C, Airline D).

Reproduces the paper's most sophisticated attacker:

1. **Setup phase** — buys a handful of real tickets with fake passenger
   data and stolen cards, obtaining valid booking references behind the
   login/payment gateway.
2. **Pumping phase** — repeatedly requests boarding passes *via SMS*
   for those few references, directing messages to mobile numbers in
   high-revenue countries, while

   * leasing residential proxy exits **geo-matched to the destination
     number's country**,
   * rotating browser fingerprints to defeat fingerprint rules, and
   * paying a CAPTCHA solver where challenges appear.

The destination mix defaults to weights calibrated against Table I; the
numbers are attacker-controlled so colluding carriers kick back part of
each termination fee.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..booking.passengers import sample_gibberish_passenger
from ..common import SMS_PUMPER
from ..identity.forge import BotIdentity
from ..identity.ip import IpAddress, ResidentialProxyPool
from ..sim.clock import HOUR
from ..sim.events import EventLoop
from ..sim.process import Process
from ..sms.gateway import REJECT_FEATURE_DISABLED
from ..sms.numbers import sample_number
from ..web.application import WebApplication
from ..web.request import (
    BLOCKED,
    BOARDING_PASS_SMS,
    CAPTCHA_SOLVER,
    HOLD,
    PAY,
    RATE_LIMITED,
    Request,
)
from .clients import make_client

#: Default destination-country weights, calibrated so that a one-week
#: pumping campaign over the synthetic baseline reproduces Table I's
#: surge ordering (six high-cost destinations dwarfing four large
#: markets) and the ~25% global SMS increase.
DEFAULT_TARGET_WEIGHTS: Dict[str, float] = {
    "UZ": 0.364, "IR": 0.200, "KG": 0.085, "JO": 0.056, "NG": 0.083,
    "KH": 0.030, "SG": 0.023, "GB": 0.050, "CN": 0.041, "TH": 0.009,
    # Long tail: the other destinations that bring the campaign to the
    # paper's 42 distinct countries.
    "TJ": 0.002, "TM": 0.002, "AZ": 0.002, "IQ": 0.002, "YE": 0.002,
    "SD": 0.002, "SO": 0.002, "AF": 0.002, "LY": 0.002, "ML": 0.002,
    "BJ": 0.002, "GN": 0.002, "LK": 0.002, "BD": 0.002, "NP": 0.002,
    "MM": 0.002, "US": 0.002, "FR": 0.002, "DE": 0.002, "ES": 0.002,
    "IT": 0.002, "IN": 0.002, "BR": 0.002, "JP": 0.002, "AU": 0.002,
    "CA": 0.002, "MX": 0.002, "NL": 0.002, "AE": 0.002, "SA": 0.002,
    "TR": 0.002, "KR": 0.002,
}


@dataclass
class SmsPumperConfig:
    """Campaign parameters."""

    #: Flight used to obtain booking references in the setup phase.
    setup_flight: str
    tickets_to_buy: int = 5
    sms_per_hour: float = 80.0
    target_weights: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_TARGET_WEIGHTS)
    )
    #: Consecutive feature-disabled rejections before the attacker
    #: concludes the feature is gone and stops ("the attack ceased").
    give_up_after_disabled: int = 20

    def __post_init__(self) -> None:
        if self.tickets_to_buy < 1:
            raise ValueError(
                f"tickets_to_buy must be >= 1: {self.tickets_to_buy}"
            )
        if self.sms_per_hour <= 0:
            raise ValueError(
                f"sms_per_hour must be positive: {self.sms_per_hour}"
            )
        if not self.target_weights:
            raise ValueError("target_weights must not be empty")


class SmsPumperBot(Process):
    """Boarding-pass SMS pumping bot with geo-matched proxies."""

    def __init__(
        self,
        loop: EventLoop,
        app: WebApplication,
        identity: BotIdentity,
        proxy_pool: ResidentialProxyPool,
        rng: random.Random,
        config: SmsPumperConfig,
        name: str = "sms-pumper",
    ) -> None:
        super().__init__(loop, name=name)
        self.app = app
        self.identity = identity
        self.proxy_pool = proxy_pool
        self.config = config
        self._rng = rng
        self._countries = sorted(config.target_weights)
        self._weights = [config.target_weights[c] for c in self._countries]
        self.booking_refs: List[str] = []
        self.sms_sent = 0
        self.blocks_encountered = 0
        self.rate_limits_encountered = 0
        self._disabled_streak = 0
        self._setup_done = False

    # -- setup phase -------------------------------------------------------

    def _buy_tickets(self) -> None:
        """Hold + pay a few bookings with fake data and stolen cards."""
        for _ in range(self.config.tickets_to_buy):
            ip: IpAddress = self.proxy_pool.lease(self._rng)
            party = [sample_gibberish_passenger(self._rng)]
            hold_response = self.app.handle(
                Request(
                    method="POST",
                    path=HOLD,
                    client=make_client(
                        ip,
                        self.identity.fingerprint,
                        actor=self.name,
                        actor_class=SMS_PUMPER,
                    ),
                    params={
                        "flight_id": self.config.setup_flight,
                        "passengers": party,
                    },
                    fingerprint=self.identity.fingerprint,
                    captcha_ability=CAPTCHA_SOLVER,
                )
            )
            if not hold_response.ok:
                continue
            hold = hold_response.data
            pay_response = self.app.handle(
                Request(
                    method="POST",
                    path=PAY,
                    client=make_client(
                        ip,
                        self.identity.fingerprint,
                        actor=self.name,
                        actor_class=SMS_PUMPER,
                    ),
                    params={"hold_id": hold.hold_id},
                    fingerprint=self.identity.fingerprint,
                    captcha_ability=CAPTCHA_SOLVER,
                )
            )
            if pay_response.ok:
                self.booking_refs.append(hold.hold_id)

    # -- pumping phase ------------------------------------------------------

    def step(self) -> Optional[float]:
        now = self.loop.now
        if not self._setup_done:
            self._buy_tickets()
            self._setup_done = True
            if not self.booking_refs:
                return None  # could not obtain any ticket; abort
        self.identity.maybe_rotate(now, was_blocked=False)

        country = self._rng.choices(self._countries, weights=self._weights)[0]
        number = sample_number(self._rng, country, controlled_by_attacker=True)
        # Geo-matched residential exit: the proxy country follows the
        # destination number's country.
        ip = self.proxy_pool.lease(self._rng, country=country)
        booking_ref = self._rng.choice(self.booking_refs)

        response = self.app.handle(
            Request(
                method="POST",
                path=BOARDING_PASS_SMS,
                client=make_client(
                    ip,
                    self.identity.fingerprint,
                    actor=self.name,
                    actor_class=SMS_PUMPER,
                ),
                params={"booking_ref": booking_ref, "phone": number},
                fingerprint=self.identity.fingerprint,
                captcha_ability=CAPTCHA_SOLVER,
            )
        )

        if response.ok:
            self.sms_sent += 1
            self._disabled_streak = 0
        elif response.status == BLOCKED:
            self.blocks_encountered += 1
            self.identity.maybe_rotate(now, was_blocked=True)
        elif response.status == RATE_LIMITED:
            self.rate_limits_encountered += 1
            self.identity.maybe_rotate(now, was_blocked=True)
        elif response.outcome == REJECT_FEATURE_DISABLED:
            self._disabled_streak += 1
            if self._disabled_streak >= self.config.give_up_after_disabled:
                return None  # feature removed; the attack ceases

        return self._rng.expovariate(self.config.sms_per_hour / HOUR)
