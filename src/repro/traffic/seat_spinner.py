"""The automated Seat Spinning (Denial of Inventory) bot.

Implements the attacker of Sections IV-A and IV-B:

* keeps as many of the target flight's seats as possible under hold,
  re-holding "as soon as the temporary hold on the previous one
  expired";
* chooses a preferred NiP below the maximum "possibly to avoid
  triggering an immediate anomaly detection alert", and *adapts* when a
  NiP cap rejects it;
* rotates fingerprint and IP on a timer and reactively after blocks
  (the 5.3 h arms race);
* fills passenger details in one of the styles observed in the wild:
  gibberish, fixed-name-with-rotating-birthdate, or plausible mimicry;
* ceases activity a configurable margin before departure (the paper's
  attack stopped two days out).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..booking.passengers import (
    Passenger,
    sample_birthdate,
    sample_genuine_passenger,
    sample_gibberish_passenger,
)
from ..booking.reservation import (
    REJECT_DEPARTED,
    REJECT_NIP_CAP,
    REJECT_NO_INVENTORY,
)
from ..common import SEAT_SPINNER
from ..identity.forge import BotIdentity
from ..identity.ip import IpAddress
from ..sim.clock import DAY, MINUTE
from ..sim.events import EventLoop
from ..sim.process import Process
from ..web.application import WebApplication
from ..web.request import (
    BLOCKED,
    CAPTCHA_FAILED,
    CAPTCHA_SOLVER,
    HOLD,
    RATE_LIMITED,
    Request,
)
from .clients import make_client

# Passenger-detail styles (Section IV-B).
GIBBERISH = "gibberish"
FIXED_NAME_ROTATING_DOB = "fixed-name-rotating-dob"
PLAUSIBLE = "plausible"

_STYLES = (GIBBERISH, FIXED_NAME_ROTATING_DOB, PLAUSIBLE)


@dataclass
class SeatSpinnerConfig:
    """Attack parameters for one Seat Spinning campaign."""

    target_flight: str
    preferred_nip: int = 6
    #: Seats the bot tries to keep held (None = the whole flight).
    target_seats: Optional[int] = None
    passenger_style: str = GIBBERISH
    poll_interval: float = 5 * MINUTE
    #: Maximum hold attempts per step (burst control).
    burst: int = 8
    stop_before_departure: float = 2 * DAY
    #: Consecutive fully-blocked steps before giving up entirely.
    give_up_after_blocked_steps: int = 0  # 0 = never give up

    def __post_init__(self) -> None:
        if self.preferred_nip < 1:
            raise ValueError(
                f"preferred_nip must be >= 1: {self.preferred_nip}"
            )
        if self.passenger_style not in _STYLES:
            raise ValueError(
                f"unknown passenger style {self.passenger_style!r}; "
                f"expected one of {_STYLES}"
            )
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1: {self.burst}")


class SeatSpinnerBot(Process):
    """Automated inventory-hoarding bot against one flight."""

    def __init__(
        self,
        loop: EventLoop,
        app: WebApplication,
        identity: BotIdentity,
        ip_pool,
        rng: random.Random,
        config: SeatSpinnerConfig,
        name: str = "seat-spinner",
    ) -> None:
        super().__init__(loop, name=name)
        self.app = app
        self.identity = identity
        self.ip_pool = ip_pool
        self.config = config
        self._rng = rng
        self.ip: IpAddress = ip_pool.lease(rng)
        self.current_nip = config.preferred_nip
        #: (hold_id, nip, expires_at) for holds the bot believes it owns.
        self._owned: List[Tuple[str, int, float]] = []
        self.holds_created = 0
        self.blocks_encountered = 0
        self.rate_limits_encountered = 0
        self.nip_adaptations: List[Tuple[float, int]] = []
        self._blocked_steps = 0
        # Fixed lead passenger for the rotating-birthdate style.
        lead = sample_genuine_passenger(rng)
        self._fixed_lead_name = (lead.first_name, lead.last_name)
        self._companion_pool = [
            (p.first_name, p.last_name)
            for p in (sample_genuine_passenger(rng) for _ in range(4))
        ]

    # -- identity -----------------------------------------------------------

    def _rotate(self) -> None:
        self.identity.rotate(self.loop.now)
        self.ip = self.ip_pool.lease(self._rng)

    def _client(self):
        return make_client(
            self.ip,
            self.identity.fingerprint,
            actor=self.name,
            actor_class=SEAT_SPINNER,
        )

    # -- passenger fabrication -------------------------------------------------

    def _make_party(self, nip: int) -> List[Passenger]:
        style = self.config.passenger_style
        if style == GIBBERISH:
            return [sample_gibberish_passenger(self._rng) for _ in range(nip)]
        if style == PLAUSIBLE:
            return [sample_genuine_passenger(self._rng) for _ in range(nip)]
        # Fixed lead name, systematically rotated birthdate; companions
        # reuse a small overlapping name pool (the Case B pattern).
        first, last = self._fixed_lead_name
        party = [
            Passenger(
                first_name=first,
                last_name=last,
                birthdate=sample_birthdate(self._rng),
                email=f"{first.lower()}.{last.lower()}@mailbox.example",
            )
        ]
        for _ in range(nip - 1):
            c_first, c_last = self._rng.choice(self._companion_pool)
            party.append(
                Passenger(
                    first_name=c_first,
                    last_name=c_last,
                    birthdate=sample_birthdate(self._rng),
                    email=f"{c_first.lower()}.{c_last.lower()}@mailbox.example",
                )
            )
        return party

    # -- main loop ----------------------------------------------------------------

    def step(self) -> Optional[float]:
        now = self.loop.now
        try:
            flight = self.app.reservations.flight(self.config.target_flight)
        except KeyError:
            return None
        if now >= flight.departure_time - self.config.stop_before_departure:
            return None  # attack window closed

        # Timed rotation, independent of blocks.
        if self.identity.maybe_rotate(now, was_blocked=False):
            self.ip = self.ip_pool.lease(self._rng)

        self._owned = [
            entry for entry in self._owned if entry[2] > now
        ]
        held = sum(nip for _, nip, _ in self._owned)
        target = self.config.target_seats
        if target is None:
            target = flight.capacity

        step_fully_blocked = True
        attempts = 0
        while held < target and attempts < self.config.burst:
            attempts += 1
            outcome, gained = self._attempt_hold()
            if outcome == "held":
                held += gained
                step_fully_blocked = False
            elif outcome == REJECT_NO_INVENTORY:
                step_fully_blocked = False
                break  # flight is fully committed; wait for expiries
            elif outcome == REJECT_NIP_CAP:
                continue  # adapted NiP; retry immediately
            elif outcome == REJECT_DEPARTED:
                return None
            elif outcome in ("blocked", "rate-limited", "captcha-failed"):
                continue  # rotated (or not); retry within the burst
            else:
                step_fully_blocked = False
                break
        if attempts == 0:
            step_fully_blocked = False

        if step_fully_blocked:
            self._blocked_steps += 1
            give_up = self.config.give_up_after_blocked_steps
            if give_up and self._blocked_steps >= give_up:
                return None
        else:
            self._blocked_steps = 0

        return self._next_delay(now)

    def _next_delay(self, now: float) -> float:
        """Wake at the next owned-hold expiry (plus jitter) or the poll
        interval, whichever comes first."""
        delay = self.config.poll_interval
        if self._owned:
            next_expiry = min(expires for _, _, expires in self._owned)
            delay = min(delay, max(next_expiry - now, 1.0))
        return delay + self._rng.uniform(0.5, 5.0)

    def _attempt_hold(self) -> Tuple[str, int]:
        """One hold attempt; returns (outcome, seats gained)."""
        nip = self.current_nip
        party = self._make_party(nip)
        request = Request(
            method="POST",
            path=HOLD,
            client=self._client(),
            params={
                "flight_id": self.config.target_flight,
                "passengers": party,
            },
            fingerprint=self.identity.fingerprint,
            captcha_ability=CAPTCHA_SOLVER,
        )
        response = self.app.handle(request)
        now = self.loop.now

        if response.ok:
            hold = response.data
            self._owned.append((hold.hold_id, hold.nip, hold.expires_at))
            self.holds_created += 1
            return "held", hold.nip

        if response.status == BLOCKED:
            self.blocks_encountered += 1
            if self.identity.maybe_rotate(now, was_blocked=True):
                self.ip = self.ip_pool.lease(self._rng)
            return "blocked", 0
        if response.status == RATE_LIMITED:
            self.rate_limits_encountered += 1
            if self.identity.maybe_rotate(now, was_blocked=True):
                self.ip = self.ip_pool.lease(self._rng)
            return "rate-limited", 0
        if response.status == CAPTCHA_FAILED:
            return "captcha-failed", 0

        if response.outcome == REJECT_NIP_CAP:
            # Reconnaissance: fall back to the largest accepted party.
            self.current_nip = max(self.current_nip - 1, 1)
            self.nip_adaptations.append((now, self.current_nip))
            return REJECT_NIP_CAP, 0
        return response.outcome, 0

    @property
    def seats_currently_held(self) -> int:
        now = self.loop.now
        return sum(nip for _, nip, expires in self._owned if expires > now)
