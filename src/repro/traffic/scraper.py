"""A classic web-scraping bot — the baseline functional abuse.

The paper's Section III argues that conventional behaviour-based
detection was designed for *this* attacker: high request volume within
a session, exploratory fare-search patterns, datacenter infrastructure
and crude automation fingerprints.  The detector-comparison benchmark
(E6) uses it to show that session-volume features catch scrapers but
miss low-volume Seat Spinning and SMS Pumping.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..common import SCRAPER
from ..identity.forge import BotIdentity
from ..identity.ip import DatacenterPool
from ..sim.clock import HOUR
from ..sim.events import EventLoop
from ..sim.process import Process
from ..web.application import WebApplication
from ..web.request import (
    BLOCKED,
    CAPTCHA_NONE,
    FLIGHT_DETAILS,
    Request,
    SEARCH,
    TRAP,
)
from .clients import make_client


@dataclass
class ScraperConfig:
    """Scraping campaign parameters."""

    requests_per_hour: float = 2000.0
    #: Fraction of requests hitting flight-details vs search.
    details_fraction: float = 0.8
    duration: float = 12 * HOUR
    #: Probability per request of following the hidden trap link —
    #: link-following crawlers cannot tell it from a real page.
    trap_probability: float = 0.02

    def __post_init__(self) -> None:
        if self.requests_per_hour <= 0:
            raise ValueError(
                f"requests_per_hour must be positive: "
                f"{self.requests_per_hour}"
            )
        if not 0.0 <= self.details_fraction <= 1.0:
            raise ValueError(
                f"details_fraction must be in [0, 1]: "
                f"{self.details_fraction}"
            )
        if not 0.0 <= self.trap_probability <= 1.0:
            raise ValueError(
                f"trap_probability must be in [0, 1]: "
                f"{self.trap_probability}"
            )


class ScraperBot(Process):
    """High-volume fare scraper on datacenter IPs."""

    def __init__(
        self,
        loop: EventLoop,
        app: WebApplication,
        identity: BotIdentity,
        rng: random.Random,
        config: Optional[ScraperConfig] = None,
        ip_pool: Optional[DatacenterPool] = None,
        name: str = "scraper",
    ) -> None:
        super().__init__(loop, name=name)
        self.app = app
        self.identity = identity
        self.config = config or ScraperConfig()
        self._rng = rng
        self.ip_pool = ip_pool or DatacenterPool()
        self.ip = self.ip_pool.lease(rng)
        self._deadline: Optional[float] = None
        self.requests_made = 0
        self.blocks_encountered = 0

    def step(self) -> Optional[float]:
        now = self.loop.now
        if self._deadline is None:
            self._deadline = now + self.config.duration
        if now >= self._deadline:
            return None
        self.identity.maybe_rotate(now, was_blocked=False)

        flights = self.app.reservations.flights()
        if self._rng.random() < self.config.trap_probability:
            path, params = TRAP, {}
        elif flights and self._rng.random() < self.config.details_fraction:
            flight = self._rng.choice(flights)
            path, params = FLIGHT_DETAILS, {"flight_id": flight.flight_id}
        else:
            path, params = SEARCH, {}

        response = self.app.handle(
            Request(
                method="GET",
                path=path,
                client=make_client(
                    self.ip,
                    self.identity.fingerprint,
                    actor=self.name,
                    actor_class=SCRAPER,
                ),
                params=params,
                fingerprint=self.identity.fingerprint,
                captcha_ability=CAPTCHA_NONE,
            )
        )
        self.requests_made += 1
        if response.status == BLOCKED:
            self.blocks_encountered += 1
            if self.identity.maybe_rotate(now, was_blocked=True):
                self.ip = self.ip_pool.lease(self._rng)

        return self._rng.expovariate(self.config.requests_per_hour / HOUR)
