"""Double-entry-lite ledgers for attacker and defender economics.

Section V's strongest deterrent is economic: "making them economically
unviable".  To reason about that quantitatively the simulation keeps
money on both sides:

* the attacker pays for residential proxy leases, CAPTCHA solves and
  setup tickets, and earns carrier revenue-share kickbacks;
* the defender pays per delivered SMS and loses revenue to seats an
  attacker keeps out of circulation.

:class:`Ledger` is the shared bookkeeping primitive; the module-level
builders assemble each side's ledger from live simulation objects.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List

# Standard ledger categories.
PROXY_COSTS = "proxy-leases"
CAPTCHA_COSTS = "captcha-solves"
TICKET_COSTS = "setup-tickets"
SMS_REVENUE_SHARE = "sms-revenue-share"
SMS_DELIVERY_COSTS = "sms-delivery"
LOST_SEAT_REVENUE = "lost-seat-revenue"
CHARGEBACKS = "stolen-card-chargebacks"
INFRASTRUCTURE = "infrastructure"
NUMBER_RENTAL = "number-rental"
AMPLIFICATION_CONTRACT = "amplification-contract"
SEAT_DENIAL_CONTRACT = "seat-denial-contract"


@dataclass(frozen=True)
class LedgerEntry:
    """One money movement.  Positive = income, negative = expense."""

    category: str
    amount: float
    memo: str = ""


class Ledger:
    """Append-only categorised ledger."""

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self._entries: List[LedgerEntry] = []

    def add(self, category: str, amount: float, memo: str = "") -> None:
        self._entries.append(LedgerEntry(category, amount, memo))

    def income(self, category: str, amount: float, memo: str = "") -> None:
        if amount < 0:
            raise ValueError(f"income must be >= 0: {amount}")
        self.add(category, amount, memo)

    def expense(self, category: str, amount: float, memo: str = "") -> None:
        if amount < 0:
            raise ValueError(f"expense must be >= 0: {amount}")
        self.add(category, -amount, memo)

    def entries(self) -> List[LedgerEntry]:
        return list(self._entries)

    def total(self, category: str) -> float:
        return sum(
            entry.amount
            for entry in self._entries
            if entry.category == category
        )

    def by_category(self) -> Dict[str, float]:
        totals: Dict[str, float] = defaultdict(float)
        for entry in self._entries:
            totals[entry.category] += entry.amount
        return dict(totals)

    @property
    def net(self) -> float:
        return sum(entry.amount for entry in self._entries)

    @property
    def total_income(self) -> float:
        return sum(e.amount for e in self._entries if e.amount > 0)

    @property
    def total_expenses(self) -> float:
        return -sum(e.amount for e in self._entries if e.amount < 0)

    def roi(self) -> float:
        """Return on investment: net / expenses (0 when no expenses)."""
        expenses = self.total_expenses
        if expenses == 0:
            return 0.0
        return self.net / expenses
