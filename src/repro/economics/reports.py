"""Assemble attacker/defender ledgers from live simulation objects."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..booking.holds import CONFIRMED
from ..booking.reservation import ReservationSystem
from ..common import ATTACK_CLASSES
from ..sms.gateway import SmsGateway
from ..web.application import WebApplication
from .ledger import (
    CAPTCHA_COSTS,
    CHARGEBACKS,
    LOST_SEAT_REVENUE,
    Ledger,
    PROXY_COSTS,
    SMS_DELIVERY_COSTS,
    SMS_REVENUE_SHARE,
    TICKET_COSTS,
)


def build_attacker_ledger(
    app: WebApplication,
    proxy_pools: Iterable = (),
    attacker_actors: Optional[Iterable[str]] = None,
    stolen_card_cost: float = 15.0,
) -> Ledger:
    """Attacker-side ledger for a finished scenario.

    * expenses: residential proxy leases, CAPTCHA solver fees, and —
      because setup tickets are bought with *stolen* cards (Section
      IV-C) — a per-ticket card-acquisition cost rather than the fare's
      face value (the fare lands on the defender as a chargeback);
    * income: carrier revenue-share kickbacks settled by the telco
      network for attacker-controlled numbers.
    """
    ledger = Ledger(owner="attacker")
    for pool in proxy_pools:
        if pool.total_cost > 0:
            ledger.expense(
                PROXY_COSTS,
                pool.total_cost,
                memo=f"{pool.leases_granted} leases",
            )
    actor_filter = set(attacker_actors) if attacker_actors else None
    for actor, cost in sorted(app.captcha_costs_by_actor.items()):
        if actor_filter is not None and actor not in actor_filter:
            continue
        ledger.expense(CAPTCHA_COSTS, cost, memo=actor)
    tickets_bought = sum(
        1
        for hold in app.reservations.holds.all_holds()
        if hold.status == CONFIRMED
        and hold.client.actor_class in ATTACK_CLASSES
    )
    if tickets_bought > 0:
        ledger.expense(
            TICKET_COSTS,
            tickets_bought * stolen_card_cost,
            memo=f"{tickets_bought} stolen cards",
        )
    revenue = app.sms.telco.total_attacker_revenue()
    if revenue > 0:
        ledger.income(SMS_REVENUE_SHARE, revenue, memo="carrier kickbacks")
    return ledger


@dataclass(frozen=True)
class SeatDisplacement:
    """Inventory impact of a DoI campaign on one flight."""

    flight_id: str
    attacker_seat_seconds: float
    capacity: int

    @property
    def attacker_seat_hours(self) -> float:
        return self.attacker_seat_seconds / 3600.0


def attacker_seat_seconds(
    reservations: ReservationSystem, flight_id: str
) -> SeatDisplacement:
    """Seat-seconds the attacker kept out of circulation on a flight.

    Sums ``nip * held_duration`` over *real* (non-shadow) attacker
    holds — honeypot holds absorbed into the shadow inventory do not
    displace anything, which is precisely the honeypot's point.
    """
    total = 0.0
    for hold in reservations.holds.all_holds():
        if hold.flight_id != flight_id or hold.shadow:
            continue
        if hold.client.actor_class in ATTACK_CLASSES:
            total += hold.nip * hold.held_duration
    return SeatDisplacement(
        flight_id=flight_id,
        attacker_seat_seconds=total,
        capacity=reservations.flight(flight_id).capacity,
    )


def build_defender_ledger(
    app: WebApplication,
    seat_hour_value: float = 8.0,
    doi_flights: Iterable[str] = (),
) -> Ledger:
    """Defender-side ledger.

    * SMS delivery costs come straight from the gateway settlements;
    * lost seat revenue approximates DoI damage as ``seat-hours blocked
      by attackers x seat_hour_value`` (a conservative proxy for sales
      displaced near departure).
    """
    ledger = Ledger(owner="defender")
    sms_cost = app.sms.telco.total_app_owner_cost()
    if sms_cost > 0:
        delivered = len(app.sms.delivered_records())
        ledger.expense(
            SMS_DELIVERY_COSTS, sms_cost, memo=f"{delivered} messages"
        )
    chargebacks = sum(
        hold.price_quoted
        for hold in app.reservations.holds.all_holds()
        if hold.status == CONFIRMED
        and hold.client.actor_class in ATTACK_CLASSES
    )
    if chargebacks > 0:
        ledger.expense(
            CHARGEBACKS, chargebacks, memo="fraudulent ticket purchases"
        )
    for flight_id in doi_flights:
        displacement = attacker_seat_seconds(app.reservations, flight_id)
        if displacement.attacker_seat_hours > 0:
            ledger.expense(
                LOST_SEAT_REVENUE,
                displacement.attacker_seat_hours * seat_hour_value,
                memo=flight_id,
            )
    return ledger
