"""Attacker/defender economics (Section V's deterrence analysis)."""

from .ledger import (
    CAPTCHA_COSTS,
    INFRASTRUCTURE,
    Ledger,
    LedgerEntry,
    LOST_SEAT_REVENUE,
    PROXY_COSTS,
    SMS_DELIVERY_COSTS,
    SMS_REVENUE_SHARE,
    TICKET_COSTS,
)
from .reports import (
    SeatDisplacement,
    attacker_seat_seconds,
    build_attacker_ledger,
    build_defender_ledger,
)

__all__ = [
    "CAPTCHA_COSTS",
    "INFRASTRUCTURE",
    "Ledger",
    "LedgerEntry",
    "LOST_SEAT_REVENUE",
    "PROXY_COSTS",
    "SMS_DELIVERY_COSTS",
    "SMS_REVENUE_SHARE",
    "TICKET_COSTS",
    "SeatDisplacement",
    "attacker_seat_seconds",
    "build_attacker_ledger",
    "build_defender_ledger",
]
