"""Shared record types used across substrates.

:class:`ClientRef` is the identity bundle a server-side component sees
for one request: network address, fingerprint, authenticated profile —
plus, for simulation scoring only, the ground-truth actor label.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Ground-truth actor classes used for evaluation.
LEGIT = "legit"
SEAT_SPINNER = "seat-spinner"
MANUAL_SPINNER = "manual-spinner"
SMS_PUMPER = "sms-pumper"
SCRAPER = "scraper"
OTP_ABUSER = "otp-abuser"
AMPLIFIER = "amplifier"

ATTACK_CLASSES = (
    SEAT_SPINNER,
    MANUAL_SPINNER,
    SMS_PUMPER,
    SCRAPER,
    OTP_ABUSER,
    AMPLIFIER,
)


@dataclass(frozen=True, slots=True)
class ClientRef:
    """What the server can attribute a request to.

    ``actor`` / ``actor_class`` are ground-truth labels attached by the
    traffic generators.  Detection code must never read them; they exist
    solely so the evaluation harness can compute precision/recall.

    ``slots=True``: one instance exists per request on the hot path, so
    dropping the per-instance ``__dict__`` saves real memory at scale.
    """

    ip_address: str
    ip_country: str
    ip_residential: bool
    fingerprint_id: str
    user_agent: str
    profile_id: str = ""
    actor: str = ""
    actor_class: str = LEGIT

    @property
    def is_attacker(self) -> bool:
        """Ground truth — for scoring only, never for detection."""
        return self.actor_class != LEGIT
