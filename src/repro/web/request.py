"""HTTP-like requests and responses for the simulated web application.

Endpoints mirror the features the paper's attacks abuse: flight search
and details (scraping), seat hold and payment (Seat Spinning), OTP
login and boarding-pass-via-SMS (SMS Pumping).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..common import ClientRef
from ..identity.fingerprint import Fingerprint

# Endpoint paths.  Interned: path strings are compared and hashed on
# every request (handler routing, per-path metrics, sessionization), so
# pointer-equal singletons keep those lookups on the identity fast path.
SEARCH = sys.intern("/search")
FLIGHT_DETAILS = sys.intern("/flight")
HOLD = sys.intern("/hold")
PAY = sys.intern("/pay")
OTP_LOGIN = sys.intern("/login/otp")
BOARDING_PASS_SMS = sys.intern("/boarding-pass/sms")
#: Open notification form: "text me about my flight" — no login, no
#: booking reference, free text destination.  Exactly the class of
#: feature Jakobsson & Menczer's cluster-bomb attack abuses.
NOTIFY = sys.intern("/notify")
#: Hidden trap endpoint: linked invisibly in page markup, so humans
#: never reach it while link-following crawlers do (the classic trap
#: file from the web-robot detection literature the paper cites [38]).
TRAP = sys.intern("/internal/prefetch")

ALL_PATHS = (
    SEARCH,
    FLIGHT_DETAILS,
    HOLD,
    PAY,
    OTP_LOGIN,
    BOARDING_PASS_SMS,
    NOTIFY,
    TRAP,
)

# How a client can respond to a CAPTCHA challenge.  This is a physical
# capability of the client (human at the keyboard, bot wired to a solver
# service, bot with nothing), not a detection signal.
CAPTCHA_HUMAN = "human"
CAPTCHA_SOLVER = "solver"
CAPTCHA_NONE = "none"


@dataclass(frozen=True, slots=True)
class Request:
    """One request as received by the application edge.

    ``fingerprint`` is the full client-side-collected fingerprint the
    anti-bot layer sees; ``client.fingerprint_id`` is its stable digest.
    Slotted: one per simulated request, millions per heavy run.
    """

    method: str
    path: str
    client: ClientRef
    params: Dict[str, Any] = field(default_factory=dict)
    fingerprint: Optional[Fingerprint] = None
    captcha_ability: str = CAPTCHA_HUMAN

    def param(self, name: str) -> Any:
        """Required-parameter accessor (raises ``KeyError`` if absent)."""
        if name not in self.params:
            raise KeyError(
                f"request to {self.path} missing parameter {name!r}"
            )
        return self.params[name]


# Response status codes (the subset the simulation distinguishes).
OK = 200
BAD_REQUEST = 400
CAPTCHA_FAILED = 401
BLOCKED = 403
NOT_FOUND = 404
CONFLICT = 409
RATE_LIMITED = 429


@dataclass(frozen=True, slots=True)
class Response:
    """Outcome of one request."""

    status: int
    outcome: str = ""
    data: Any = None
    blocked_by: str = ""

    @property
    def ok(self) -> bool:
        return self.status == OK
