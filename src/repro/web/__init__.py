"""Web application layer: requests, logs, sessions, rate limits, edge.

The surface every actor interacts with: HTTP-like requests and
responses (:mod:`repro.web.request`), the append-only web log and
sessionization (:mod:`repro.web.logs`), rate-limiting primitives and the
keyed rule engine (:mod:`repro.web.ratelimit`), and the application edge
pipeline with block rules, access policies and CAPTCHA gates
(:mod:`repro.web.application`).
"""

from .application import BlockRule, WebApplication
from .logs import DEFAULT_IDLE_GAP, LogEntry, Session, WebLog, sessionize
from .logstore import ColumnarLogStore
from .ratelimit import (
    RateLimitEngine,
    RateLimitRule,
    SlidingWindowLimiter,
    TokenBucket,
    key_by_booking_ref,
    key_by_fingerprint,
    key_by_ip,
    key_by_path,
    key_by_profile,
)
from .request import (
    ALL_PATHS,
    BAD_REQUEST,
    BLOCKED,
    BOARDING_PASS_SMS,
    CAPTCHA_FAILED,
    CAPTCHA_HUMAN,
    CAPTCHA_NONE,
    CAPTCHA_SOLVER,
    CONFLICT,
    FLIGHT_DETAILS,
    HOLD,
    NOT_FOUND,
    OK,
    OTP_LOGIN,
    PAY,
    RATE_LIMITED,
    Request,
    Response,
    SEARCH,
)

__all__ = [
    "BlockRule",
    "WebApplication",
    "ColumnarLogStore",
    "DEFAULT_IDLE_GAP",
    "LogEntry",
    "Session",
    "WebLog",
    "sessionize",
    "RateLimitEngine",
    "RateLimitRule",
    "SlidingWindowLimiter",
    "TokenBucket",
    "key_by_booking_ref",
    "key_by_fingerprint",
    "key_by_ip",
    "key_by_path",
    "key_by_profile",
    "ALL_PATHS",
    "BAD_REQUEST",
    "BLOCKED",
    "BOARDING_PASS_SMS",
    "CAPTCHA_FAILED",
    "CAPTCHA_HUMAN",
    "CAPTCHA_NONE",
    "CAPTCHA_SOLVER",
    "CONFLICT",
    "FLIGHT_DETAILS",
    "HOLD",
    "NOT_FOUND",
    "OK",
    "OTP_LOGIN",
    "PAY",
    "RATE_LIMITED",
    "Request",
    "Response",
    "SEARCH",
]
