"""Web logs and sessionization.

Behaviour-based bot detection (Section III-A) starts from web logs
grouped into user sessions.  :class:`WebLog` records one
:class:`LogEntry` per request; :func:`sessionize` groups entries by
client identity (IP + fingerprint) split on idle gaps, reproducing the
standard log-analysis pipeline the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..common import ClientRef

#: Default idle gap that closes a session (the conventional 30 minutes).
DEFAULT_IDLE_GAP = 30.0 * 60.0


@dataclass(frozen=True, slots=True)
class LogEntry:
    """One line of the web log.

    Slotted: the log holds one of these per request for the whole run,
    and feature extraction walks them attribute by attribute — no
    per-entry ``__dict__`` means less memory and faster reads.
    """

    time: float
    method: str
    path: str
    status: int
    client: ClientRef
    blocked_by: str = ""
    outcome: str = ""


#: Observer signature for :meth:`WebLog.subscribe`.
LogObserver = Callable[[LogEntry], None]


def _observer_name(observer: LogObserver) -> str:
    """Best human-readable identity for a subscribed callable."""
    qualname = getattr(observer, "__qualname__", None)
    if qualname:
        owner = getattr(observer, "__self__", None)
        if owner is not None:
            return f"{qualname} of {owner!r}"
        return qualname
    return repr(observer)


#: Backend names accepted by :class:`WebLog`.
COLUMNAR = "columnar"
LIST = "list"


class WebLog:
    """Append-only request log with time-ordered access.

    Consumers that need the whole log as they please can call
    :meth:`entries` (a defensive copy); hot paths should iterate
    :meth:`iter_entries` instead, and *online* consumers (the streaming
    detection pipeline, trace capture) should :meth:`subscribe` and be
    handed each entry as it lands.

    Storage is columnar by default (one NumPy array per field, see
    :mod:`repro.web.logstore`) so million-visitor worlds keep the log
    at rest in bounded memory; ``backend="list"`` keeps one
    :class:`LogEntry` object per request instead — the reference
    implementation the columnar path is tested byte-for-byte against.
    Producers that already hold the raw fields should call
    :meth:`append_fields`, which skips ``LogEntry`` construction
    entirely unless an observer is subscribed.
    """

    def __init__(self, backend: str = COLUMNAR) -> None:
        if backend not in (COLUMNAR, LIST):
            raise ValueError(f"unknown WebLog backend {backend!r}")
        self.backend = backend
        if backend == COLUMNAR:
            from .logstore import ColumnarLogStore

            self._store: Optional["ColumnarLogStore"] = ColumnarLogStore()
            self._entries: List[LogEntry] = []
        else:
            self._store = None
            self._entries = []
        self._observers: List[LogObserver] = []
        #: The observer currently being dispatched to (``None`` outside
        #: :meth:`_notify`) — named in the re-entrancy error so the
        #: offending subscriber is identifiable from the traceback.
        self._dispatching: Optional[LogObserver] = None

    def _check_order(self, time: float) -> None:
        if self._dispatching is not None:
            raise RuntimeError(
                "re-entrant WebLog.append from subscribed observer "
                f"{_observer_name(self._dispatching)}: an observer may "
                "not append to the log it is observing"
            )
        if len(self):
            last = (
                self._store.last_time()
                if self._store is not None
                else self._entries[-1].time
            )
            if time < last:
                raise ValueError(
                    f"log entries must be time-ordered: {time} < {last}"
                )

    def _notify(self, entry: LogEntry) -> None:
        # Snapshot before dispatch: an observer that unsubscribes
        # (itself or a peer) mid-dispatch must not perturb this
        # iteration — removed observers still see the in-flight entry,
        # and nobody is skipped by list compaction.
        try:
            for observer in tuple(self._observers):
                self._dispatching = observer
                observer(entry)
        finally:
            self._dispatching = None

    def append(self, entry: LogEntry) -> None:
        self._check_order(entry.time)
        if self._store is not None:
            self._store.append_entry(entry)
        else:
            self._entries.append(entry)
        if self._observers:
            self._notify(entry)

    def append_fields(
        self,
        time: float,
        method: str,
        path: str,
        status: int,
        client: ClientRef,
        blocked_by: str = "",
        outcome: str = "",
    ) -> None:
        """Append from raw fields — the request hot path.

        On the columnar backend with no observers subscribed this
        writes straight into the arrays and never builds a
        :class:`LogEntry`; otherwise it behaves exactly like
        :meth:`append`.
        """
        self._check_order(time)
        if self._store is not None:
            self._store.append(
                time, method, path, status, client, blocked_by, outcome
            )
            if self._observers:
                self._notify(self._store.get(len(self._store) - 1))
            return
        entry = LogEntry(
            time=time, method=method, path=path, status=status,
            client=client, blocked_by=blocked_by, outcome=outcome,
        )
        self._entries.append(entry)
        if self._observers:
            self._notify(entry)

    def subscribe(self, observer: LogObserver) -> Callable[[], None]:
        """Register ``observer`` to receive every future entry.

        Returns an unsubscribe callable.  Observers run synchronously
        inside :meth:`append` (after the entry is committed) and must
        not append to the same log — re-entrant appends raise, naming
        the observer that was mid-dispatch.
        """
        self._observers.append(observer)
        return lambda: self.unsubscribe(observer)

    def unsubscribe(self, observer: LogObserver) -> bool:
        """Remove ``observer``; returns whether it was subscribed.

        Idempotent, and safe to call *during dispatch* (from any
        observer, against itself or a peer): the in-flight notification
        iterates a snapshot, so the removed observer still receives the
        entry being dispatched and stops at the next append — clean
        subscriber teardown for long-running services shutting down.
        """
        try:
            self._observers.remove(observer)
        except ValueError:
            return False
        return True

    @property
    def observer_count(self) -> int:
        return len(self._observers)

    def entries(self) -> List[LogEntry]:
        """The whole log as a fresh list (O(n) per call)."""
        if self._store is not None:
            return list(self._store.iter_entries())
        return list(self._entries)

    def iter_entries(self) -> Iterator[LogEntry]:
        """Lazy iteration without a defensive copy.

        On the columnar backend the row set is pinned at call time:
        entries appended after the view is taken are not yielded.
        """
        if self._store is not None:
            return self._store.iter_entries()
        return iter(self._entries)

    def entry_at(self, index: int) -> LogEntry:
        """Random access to one entry by row index."""
        if self._store is not None:
            return self._store.get(index)
        return self._entries[index]

    def entries_between(self, start: float, end: float) -> List[LogEntry]:
        if self._store is not None:
            return self._store.entries_between(start, end)
        return [e for e in self._entries if start <= e.time < end]

    def columns(self):
        """Whole-log columnar view (:class:`~repro.web.logstore.
        LogColumns`) — free of per-row materialisation on the columnar
        backend, built by one interning pass on the list backend."""
        if self._store is not None:
            return self._store.columns()
        from .logstore import columns_from_entries

        return columns_from_entries(self._entries)

    def __len__(self) -> int:
        if self._store is not None:
            return len(self._store)
        return len(self._entries)


@dataclass(slots=True)
class Session:
    """A reconstructed user session: one client identity, no idle gaps."""

    session_id: str
    ip_address: str
    fingerprint_id: str
    entries: List[LogEntry] = field(default_factory=list)

    @property
    def start(self) -> float:
        return self.entries[0].time

    @property
    def end(self) -> float:
        return self.entries[-1].time

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def request_count(self) -> int:
        return len(self.entries)

    @property
    def actor_class(self) -> str:
        """Ground-truth majority actor class (evaluation only).

        A zero-entry session carries no evidence of anything — it
        counts as legitimate rather than crashing ``max()``.
        """
        counts: Dict[str, int] = {}
        for entry in self.entries:
            counts[entry.client.actor_class] = (
                counts.get(entry.client.actor_class, 0) + 1
            )
        if not counts:
            return "legit"
        return max(counts.items(), key=lambda item: item[1])[0]

    @property
    def is_attacker(self) -> bool:
        """Ground truth — scoring only."""
        return self.actor_class != "legit"


def sessionize(
    log: WebLog,
    idle_gap: float = DEFAULT_IDLE_GAP,
) -> List[Session]:
    """Group log entries into sessions.

    A session is a maximal run of requests sharing ``(ip, fingerprint)``
    with no gap larger than ``idle_gap`` — the same reconstruction a
    defender would run on production logs.  Note the defender-side
    blind spot this encodes: a bot that rotates IP or fingerprint
    *starts a new session*, which is exactly why rotation defeats
    session-level profiling.
    """
    if idle_gap <= 0:
        raise ValueError(f"idle_gap must be positive: {idle_gap}")
    open_sessions: Dict[Tuple[str, str], Session] = {}
    finished: List[Session] = []
    counter = 0
    for entry in log.iter_entries():
        key = (entry.client.ip_address, entry.client.fingerprint_id)
        session = open_sessions.get(key)
        if session is not None and entry.time - session.end > idle_gap:
            finished.append(session)
            session = None
        if session is None:
            counter += 1
            session = Session(
                session_id=f"S{counter:07d}",
                ip_address=entry.client.ip_address,
                fingerprint_id=entry.client.fingerprint_id,
            )
            open_sessions[key] = session
        session.entries.append(entry)
    finished.extend(open_sessions.values())
    finished.sort(key=lambda s: s.start)
    return finished
