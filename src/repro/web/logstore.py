"""Columnar (struct-of-arrays) storage for web-log entries.

A million-visitor world produces tens of millions of log lines; one
:class:`~repro.web.logs.LogEntry` object per line costs ~150 bytes of
Python object headers before a single field is stored.  The
:class:`ColumnarLogStore` keeps the log *at rest* as append-only NumPy
blocks instead — one array per field — and materialises ``LogEntry``
views only when a consumer actually iterates:

* ``time`` — ``float64`` per row;
* ``status`` — ``int16`` per row;
* ``method`` / ``path`` / ``blocked_by`` / ``outcome`` — ``int32``
  ids into a shared string-interning table (request logs repeat a few
  dozen distinct strings millions of times);
* ``client`` — ``int32`` index into a :class:`ClientRef` table,
  interned by object identity (the funnel builds one ``ClientRef`` per
  visitor and reuses it for every request, so identity interning
  collapses a visitor's whole request history to one table slot; the
  table holds a strong reference, so ids stay valid).

Blocks have fixed capacity, so an append never copies earlier rows and
peak memory tracks the high-water mark, not 2x it (no ``realloc``
doubling).  Materialised views are bit-faithful: the same interned
``str`` objects and the same ``ClientRef`` instance that were appended
come back out, so a columnar-backed log compares equal to a list of
the original entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

import numpy as np

from ..common import ClientRef
from .logs import LogEntry


@dataclass
class LogColumns:
    """A flat columnar view of a whole log — the analysis read API.

    ``time``/``status``/``method``/``path``/``client`` are one array
    element per row (string and client columns hold intern-table ids);
    ``strings``/``clients`` are the intern tables themselves and
    ``string_ids`` the reverse string lookup.  The arrays are copies
    (concatenated from the store's blocks, or built from a list
    backend), but the tables are live references — read-only by
    contract.  This is what the columnar fast paths (vectorized
    sessionization + feature extraction) consume instead of
    materialising ``LogEntry`` objects row by row.
    """

    time: np.ndarray        # (n,) float64
    status: np.ndarray      # (n,) int16
    method: np.ndarray      # (n,) int32 — id into strings
    path: np.ndarray        # (n,) int32 — id into strings
    client: np.ndarray      # (n,) int32 — id into clients
    strings: List[str]
    clients: List[ClientRef]
    string_ids: Dict[str, int]

    def __len__(self) -> int:
        return int(self.time.shape[0])

    def string_id(self, value: str) -> int:
        """Interned id of ``value``, or -1 when it never occurred
        (-1 matches no row, which is exactly the semantics a count of
        a never-seen endpoint needs)."""
        return self.string_ids.get(value, -1)


def columns_from_entries(entries: Iterable[LogEntry]) -> LogColumns:
    """Build a :class:`LogColumns` view from materialised entries —
    the list-backend equivalent of :meth:`ColumnarLogStore.columns`.

    Interning mirrors the store's: strings by value into one shared
    table, clients by object identity (the funnel reuses one
    ``ClientRef`` per visitor).
    """
    entries = list(entries)
    n = len(entries)
    time = np.empty(n, dtype=np.float64)
    status = np.empty(n, dtype=np.int16)
    method = np.empty(n, dtype=np.int32)
    path = np.empty(n, dtype=np.int32)
    client = np.empty(n, dtype=np.int32)
    string_ids: Dict[str, int] = {}
    strings: List[str] = []
    client_ids: Dict[int, int] = {}
    clients: List[ClientRef] = []
    for row, entry in enumerate(entries):
        time[row] = entry.time
        status[row] = entry.status
        sid = string_ids.get(entry.method)
        if sid is None:
            sid = string_ids[entry.method] = len(strings)
            strings.append(entry.method)
        method[row] = sid
        sid = string_ids.get(entry.path)
        if sid is None:
            sid = string_ids[entry.path] = len(strings)
            strings.append(entry.path)
        path[row] = sid
        cid = client_ids.get(id(entry.client))
        if cid is None:
            cid = client_ids[id(entry.client)] = len(clients)
            clients.append(entry.client)
        client[row] = cid
    return LogColumns(
        time=time, status=status, method=method, path=path,
        client=client, strings=strings, clients=clients,
        string_ids=string_ids,
    )

#: Rows per block.  64Ki rows x ~22 bytes/row of arrays ~= 1.4 MiB per
#: block — large enough that block bookkeeping is noise, small enough
#: that a mostly-empty tail block is cheap.
DEFAULT_BLOCK_ROWS = 65_536


class _Block:
    """One fixed-capacity struct-of-arrays segment."""

    __slots__ = (
        "time", "status", "method", "path",
        "blocked_by", "outcome", "client", "used",
    )

    def __init__(self, rows: int) -> None:
        self.time = np.empty(rows, dtype=np.float64)
        self.status = np.empty(rows, dtype=np.int16)
        self.method = np.empty(rows, dtype=np.int32)
        self.path = np.empty(rows, dtype=np.int32)
        self.blocked_by = np.empty(rows, dtype=np.int32)
        self.outcome = np.empty(rows, dtype=np.int32)
        self.client = np.empty(rows, dtype=np.int32)
        self.used = 0


class ColumnarLogStore:
    """Append-only columnar backing store for a web log.

    The store is a storage engine, not a log: time-ordering, observer
    notification and re-entrancy rules stay in
    :class:`~repro.web.logs.WebLog`, which owns one of these.
    """

    def __init__(self, block_rows: int = DEFAULT_BLOCK_ROWS) -> None:
        if block_rows < 1:
            raise ValueError(f"block_rows must be >= 1: {block_rows}")
        self._block_rows = block_rows
        self._blocks: List[_Block] = []
        self._rows = 0
        # String interning: one table shared by all four string columns
        # (method/path/blocked_by/outcome draw from overlapping small
        # vocabularies).
        self._string_ids: Dict[str, int] = {}
        self._strings: List[str] = []
        # ClientRef interning by identity.  Safe because ``_clients``
        # keeps every interned ref alive: an id() can never be reused
        # by a new object while its table entry exists.
        self._client_ids: Dict[int, int] = {}
        self._clients: List[ClientRef] = []

    def __len__(self) -> int:
        return self._rows

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    @property
    def interned_strings(self) -> int:
        return len(self._strings)

    @property
    def interned_clients(self) -> int:
        return len(self._clients)

    def nbytes(self) -> int:
        """Array bytes held by the store (excludes the intern tables)."""
        return sum(
            block.time.nbytes + block.status.nbytes + block.method.nbytes
            + block.path.nbytes + block.blocked_by.nbytes
            + block.outcome.nbytes + block.client.nbytes
            for block in self._blocks
        )

    # -- writes --------------------------------------------------------------

    def _intern(self, value: str) -> int:
        sid = self._string_ids.get(value)
        if sid is None:
            sid = self._string_ids[value] = len(self._strings)
            self._strings.append(value)
        return sid

    def _intern_client(self, client: ClientRef) -> int:
        cid = self._client_ids.get(id(client))
        if cid is None:
            cid = self._client_ids[id(client)] = len(self._clients)
            self._clients.append(client)
        return cid

    def append(
        self,
        time: float,
        method: str,
        path: str,
        status: int,
        client: ClientRef,
        blocked_by: str = "",
        outcome: str = "",
    ) -> None:
        """Append one row (the hot path — no LogEntry is built)."""
        if not self._blocks or self._blocks[-1].used == self._block_rows:
            self._blocks.append(_Block(self._block_rows))
        block = self._blocks[-1]
        row = block.used
        block.time[row] = time
        block.status[row] = status
        block.method[row] = self._intern(method)
        block.path[row] = self._intern(path)
        block.blocked_by[row] = self._intern(blocked_by)
        block.outcome[row] = self._intern(outcome)
        block.client[row] = self._intern_client(client)
        block.used = row + 1
        self._rows += 1

    def append_entry(self, entry: LogEntry) -> None:
        self.append(
            entry.time, entry.method, entry.path, entry.status,
            entry.client, entry.blocked_by, entry.outcome,
        )

    # -- reads ---------------------------------------------------------------

    def last_time(self) -> float:
        """Timestamp of the newest row (store must be non-empty)."""
        if not self._rows:
            raise IndexError("empty store has no last row")
        block = self._blocks[-1]
        return float(block.time[block.used - 1])

    def _materialise(self, block: _Block, row: int) -> LogEntry:
        return LogEntry(
            time=float(block.time[row]),
            method=self._strings[block.method[row]],
            path=self._strings[block.path[row]],
            status=int(block.status[row]),
            client=self._clients[block.client[row]],
            blocked_by=self._strings[block.blocked_by[row]],
            outcome=self._strings[block.outcome[row]],
        )

    def get(self, index: int) -> LogEntry:
        if not 0 <= index < self._rows:
            raise IndexError(f"row {index} out of range [0, {self._rows})")
        return self._materialise(
            self._blocks[index // self._block_rows],
            index % self._block_rows,
        )

    def iter_entries(self, stop: int = -1) -> Iterator[LogEntry]:
        """Materialise rows ``[0, stop)`` on demand.

        The bound is pinned when the view is taken (``stop=-1`` means
        "rows present now"), so a view taken before later appends
        yields exactly the rows that existed when it was taken — the
        same snapshot-consistency a defensive list copy gave.
        """
        if stop < 0:
            stop = self._rows
        return self._iter_to(stop)

    def _iter_to(self, stop: int) -> Iterator[LogEntry]:
        remaining = stop
        for block in self._blocks:
            take = min(block.used, remaining)
            for row in range(take):
                yield self._materialise(block, row)
            remaining -= take
            if remaining <= 0:
                return

    def columns(self) -> LogColumns:
        """The whole store as one :class:`LogColumns` view.

        Array columns are concatenated copies of the block slices (one
        allocation each — analysis use, not per-row); the intern
        tables are live references, read-only by contract.
        """
        if not self._blocks:
            empty = LogColumns(
                time=np.empty(0, dtype=np.float64),
                status=np.empty(0, dtype=np.int16),
                method=np.empty(0, dtype=np.int32),
                path=np.empty(0, dtype=np.int32),
                client=np.empty(0, dtype=np.int32),
                strings=self._strings,
                clients=self._clients,
                string_ids=self._string_ids,
            )
            return empty
        return LogColumns(
            time=np.concatenate(
                [b.time[: b.used] for b in self._blocks]
            ),
            status=np.concatenate(
                [b.status[: b.used] for b in self._blocks]
            ),
            method=np.concatenate(
                [b.method[: b.used] for b in self._blocks]
            ),
            path=np.concatenate(
                [b.path[: b.used] for b in self._blocks]
            ),
            client=np.concatenate(
                [b.client[: b.used] for b in self._blocks]
            ),
            strings=self._strings,
            clients=self._clients,
            string_ids=self._string_ids,
        )

    def times(self) -> np.ndarray:
        """All timestamps as one array (copies; analysis use only)."""
        if not self._blocks:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(
            [block.time[: block.used] for block in self._blocks]
        )

    def entries_between(self, start: float, end: float) -> List[LogEntry]:
        """Rows with ``start <= time < end``, via a binary search over
        the (time-ordered) timestamp column."""
        times = self.times()
        lo, hi = np.searchsorted(times, [start, end], side="left")
        return [self.get(index) for index in range(int(lo), int(hi))]
