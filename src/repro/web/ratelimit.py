"""Rate limiting primitives and the keyed rule engine.

Two classic algorithms — :class:`TokenBucket` and
:class:`SlidingWindowLimiter` — plus :class:`RateLimitEngine`, which
applies named rules keyed on arbitrary request attributes.  The keying
dimension is the interesting part for this paper: Case C was detected
late because only a *per-path* limit existed; per-booking-reference and
per-profile limits are the ad-hoc mitigations Section V recommends.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from .request import Request


class TokenBucket:
    """Token-bucket limiter: ``capacity`` burst, ``rate`` tokens/second."""

    def __init__(self, capacity: float, rate: float) -> None:
        if capacity <= 0 or rate <= 0:
            raise ValueError(
                f"capacity and rate must be positive: {capacity}, {rate}"
            )
        self.capacity = capacity
        self.rate = rate
        self._tokens = capacity
        self._last_refill = 0.0

    def allow(self, now: float, cost: float = 1.0) -> bool:
        """Consume ``cost`` tokens if available; refill lazily."""
        if now < self._last_refill:
            raise ValueError(
                f"time went backwards: {now} < {self._last_refill}"
            )
        elapsed = now - self._last_refill
        self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
        self._last_refill = now
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False

    @property
    def tokens(self) -> float:
        return self._tokens


class SlidingWindowLimiter:
    """At most ``limit`` events in any trailing window of ``window`` s.

    The window is *closed at both ends*: an event at time ``t`` still
    occupies the window at ``t + window`` and only expires strictly
    after.  With ``limit=1`` a second attempt exactly ``window``
    seconds after the first is therefore rejected — the invariant "no
    closed interval of length ``window`` contains more than ``limit``
    allowed events" holds at the boundary, not just inside it.
    """

    def __init__(self, limit: int, window: float) -> None:
        if limit < 1 or window <= 0:
            raise ValueError(
                f"limit must be >= 1 and window positive: {limit}, {window}"
            )
        self.limit = limit
        self.window = window
        self._events: Deque[float] = deque()

    def allow(self, now: float) -> bool:
        """Record the event if under the limit; True = allowed."""
        cutoff = now - self.window
        while self._events and self._events[0] < cutoff:
            self._events.popleft()
        if len(self._events) >= self.limit:
            return False
        self._events.append(now)
        return True

    def count(self, now: float) -> int:
        """Events still occupying the window at ``now`` (read-only:
        unlike :meth:`allow`, this never mutates limiter state)."""
        cutoff = now - self.window
        return sum(1 for when in self._events if when >= cutoff)


#: A key function maps a request to the string the rule buckets on, or
#: ``None`` when the rule does not apply to this request.
KeyFunction = Callable[[Request], Optional[str]]


def key_by_path(request: Request) -> str:
    """Global per-endpoint keying (one bucket per path)."""
    return request.path


def key_by_profile(request: Request) -> Optional[str]:
    """Per authenticated profile (None for anonymous requests)."""
    return request.client.profile_id or None


def key_by_ip(request: Request) -> str:
    return request.client.ip_address


def key_by_fingerprint(request: Request) -> str:
    return request.client.fingerprint_id


def key_by_booking_ref(request: Request) -> Optional[str]:
    """Per booking reference (None when the request has no booking)."""
    value = request.params.get("booking_ref")
    return str(value) if value else None


def key_by_destination(request: Request) -> Optional[str]:
    """Per destination phone number (None when no phone is attached).

    The Case E operational response: once a destination is surging, a
    per-destination cap strangles the flood at the *victim* dimension —
    the one key the amplifier cannot rotate — while legitimate
    destinations never come near the limit.
    """
    value = request.params.get("phone")
    if value is None:
        return None
    e164 = getattr(value, "e164", None)
    return e164 if e164 is not None else str(value)


@dataclass
class RateLimitRule:
    """One named sliding-window rule over a request key.

    ``paths`` restricts the rule to specific endpoints (empty = all).
    """

    rule_id: str
    key_fn: KeyFunction
    limit: int
    window: float
    paths: tuple = ()
    hits: int = field(default=0)
    rejections: int = field(default=0)

    def applies_to(self, request: Request) -> bool:
        return not self.paths or request.path in self.paths


class RateLimitEngine:
    """Evaluates every registered rule against each request.

    A request is rejected by the *first* rule it violates; the rule id
    is surfaced so logs and detectors can attribute the rejection
    ("the attack was detected only after ... the rate limit for the
    targeted path" — Case C).
    """

    def __init__(self) -> None:
        self._rules: List[RateLimitRule] = []
        self._windows: Dict[str, Dict[str, SlidingWindowLimiter]] = (
            defaultdict(dict)
        )

    def add_rule(self, rule: RateLimitRule) -> None:
        if any(existing.rule_id == rule.rule_id for existing in self._rules):
            raise ValueError(f"duplicate rate-limit rule {rule.rule_id!r}")
        self._rules.append(rule)

    def remove_rule(self, rule_id: str) -> None:
        self._rules = [r for r in self._rules if r.rule_id != rule_id]
        self._windows.pop(rule_id, None)

    def rules(self) -> List[RateLimitRule]:
        return list(self._rules)

    def check(self, request: Request, now: float) -> Optional[str]:
        """Return the id of the violated rule, or None if allowed.

        All applicable rules record the event, matching how production
        limiters count even requests that another rule later rejects.
        """
        violated: Optional[str] = None
        for rule in self._rules:
            if not rule.applies_to(request):
                continue
            key = rule.key_fn(request)
            if key is None:
                continue
            rule.hits += 1
            limiter = self._windows[rule.rule_id].get(key)
            if limiter is None:
                limiter = SlidingWindowLimiter(rule.limit, rule.window)
                self._windows[rule.rule_id][key] = limiter
            if not limiter.allow(now) and violated is None:
                rule.rejections += 1
                violated = rule.rule_id
        return violated
