"""The simulated airline web application.

:class:`WebApplication` is the front door every actor (legitimate or
not) talks to.  It wires the booking and SMS substrates behind an edge
pipeline that mirrors a production anti-bot deployment:

1. **block rules** — fingerprint/IP predicates deployed by mitigations,
2. **access policies** — feature restrictions (e.g. loyalty-only),
3. **rate limits** — the keyed rule engine,
4. **CAPTCHA gates** — on selected paths,
5. the endpoint handler itself.

Every request, whatever its fate, lands in the :class:`~repro.web.logs.WebLog`,
because that is all a behaviour-based detector gets to see.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional

from ..booking.reservation import ReservationSystem
from ..identity.captcha import CaptchaGateModel
from ..identity.fingerprint import Fingerprint
from ..sim.clock import Clock
from ..sim.metrics import MetricsRecorder
from ..sms.gateway import BOARDING_PASS, NOTIFICATION, OTP, SmsGateway
from .logs import WebLog
from .ratelimit import RateLimitEngine
from .request import (
    BAD_REQUEST,
    BLOCKED,
    BOARDING_PASS_SMS,
    CAPTCHA_FAILED,
    CAPTCHA_HUMAN,
    CAPTCHA_SOLVER,
    CONFLICT,
    FLIGHT_DETAILS,
    HOLD,
    NOT_FOUND,
    NOTIFY,
    OK,
    OTP_LOGIN,
    PAY,
    RATE_LIMITED,
    Request,
    Response,
    SEARCH,
    TRAP,
)

#: Predicate deciding whether a request is blocked (True = block).
BlockPredicate = Callable[[Request], bool]
#: Predicate deciding whether a request may use a restricted feature.
AccessPredicate = Callable[[Request], bool]
#: Router deciding whether a hold should be served from the honeypot.
HoneypotRouter = Callable[[Request], bool]


@dataclass
class BlockRule:
    """One deployed edge block rule with effectiveness bookkeeping.

    ``deployed_at``/``last_matched_at`` let the Case A benchmark measure
    how long each rule stayed effective before the attacker rotated
    around it (the paper's 5.3 h figure).
    """

    rule_id: str
    predicate: BlockPredicate = field(repr=False)
    deployed_at: float = 0.0
    matches: int = 0
    last_matched_at: Optional[float] = None


class WebApplication:
    """Application edge + endpoint handlers over the substrates."""

    def __init__(
        self,
        clock: Clock,
        reservations: ReservationSystem,
        sms: SmsGateway,
        rng: random.Random,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        self.clock = clock
        self.reservations = reservations
        self.sms = sms
        self.metrics = metrics if metrics is not None else MetricsRecorder()
        self.log = WebLog()
        self.ratelimits = RateLimitEngine()
        self._rng = rng
        self._block_rules: List[BlockRule] = []
        self._access_policies: Dict[str, AccessPredicate] = {}
        self._captcha_gates: Dict[str, CaptchaGateModel] = {}
        self.captcha_costs_by_actor: Dict[str, float] = {}
        self.honeypot_router: Optional[HoneypotRouter] = None
        # Optional wall-clock instrumentation (see the ``obs`` property).
        self._obs: Optional[object] = None
        # Per-path/status hot caches, rebuilt when ``obs`` is assigned:
        # path -> bound Histogram.observe, status -> counter name.
        self._obs_request_observers: Dict[str, Callable[[float], None]] = {}
        self._obs_edge_observe: Optional[Callable[[float], None]] = None
        self._obs_status_names: Dict[int, str] = {}
        #: Fingerprints collected at the edge, keyed by fingerprint id —
        #: what a client-side anti-bot script ships home.
        self.fingerprints_seen: Dict[str, "Fingerprint"] = {}
        #: The same fingerprints in first-seen order.  Periodic
        #: consumers (the controller's artifact rule) remember how far
        #: they have read and only judge the suffix — rescanning the
        #: whole ``fingerprints_seen`` table every evaluation is
        #: quadratic over a long run.
        self.fingerprint_arrivals: List[tuple] = []
        self._handlers: Dict[str, Callable[[Request], Response]] = {
            SEARCH: self._handle_search,
            FLIGHT_DETAILS: self._handle_flight_details,
            HOLD: self._handle_hold,
            PAY: self._handle_pay,
            OTP_LOGIN: self._handle_otp_login,
            BOARDING_PASS_SMS: self._handle_boarding_pass_sms,
            NOTIFY: self._handle_notify,
            TRAP: self._handle_trap,
        }

    # -- observability ---------------------------------------------------------

    @property
    def obs(self) -> Optional[object]:
        """Optional wall-clock instrumentation (duck-typed
        :class:`repro.obs.ObsRegistry`).  ``None`` keeps request
        handling on the zero-overhead path; when attached, every
        request records a per-endpoint latency timer
        (``web.request.<path>``), an edge-pipeline timer
        (``web.stage.edge``) and per-status counters."""
        return self._obs

    @obs.setter
    def obs(self, registry: Optional[object]) -> None:
        self._obs = registry
        self._obs_request_observers = {}
        self._obs_status_names = {}
        self._obs_edge_observe = (
            None
            if registry is None
            else registry.timer("web.stage.edge").histogram.observe
        )

    def _obs_request_observer(self, path: str) -> Callable[[float], None]:
        observe = self._obs_request_observers.get(path)
        if observe is None:
            observe = self._obs.timer(
                f"web.request.{path}"
            ).histogram.observe
            self._obs_request_observers[path] = observe
        return observe

    # -- edge configuration (driven by mitigations) ---------------------------

    def add_block_rule(self, rule_id: str, predicate: BlockPredicate) -> None:
        if any(rule.rule_id == rule_id for rule in self._block_rules):
            raise ValueError(f"duplicate block rule {rule_id!r}")
        self._block_rules.append(
            BlockRule(
                rule_id=rule_id,
                predicate=predicate,
                deployed_at=self.clock.now,
            )
        )

    def remove_block_rule(self, rule_id: str) -> None:
        self._block_rules = [
            rule for rule in self._block_rules if rule.rule_id != rule_id
        ]

    def block_rules(self) -> List[BlockRule]:
        return list(self._block_rules)

    def restrict_path(self, path: str, allowed: AccessPredicate) -> None:
        """Gate ``path`` behind an access predicate (loyalty-only etc.)."""
        self._access_policies[path] = allowed

    def unrestrict_path(self, path: str) -> None:
        self._access_policies.pop(path, None)

    def add_captcha(self, path: str, model: CaptchaGateModel) -> None:
        self._captcha_gates[path] = model

    def remove_captcha(self, path: str) -> None:
        self._captcha_gates.pop(path, None)

    # -- request processing -----------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Run one request through the edge pipeline and its handler."""
        now = self.clock.now
        obs = self._obs
        started = perf_counter() if obs is not None else 0.0
        fingerprint = request.fingerprint
        if fingerprint is not None:
            fingerprint_id = request.client.fingerprint_id
            if fingerprint_id not in self.fingerprints_seen:
                self.fingerprints_seen[fingerprint_id] = fingerprint
                self.fingerprint_arrivals.append(
                    (fingerprint_id, fingerprint)
                )
        if obs is None:
            response = self._edge_pipeline(request, now)
        else:
            edge_started = perf_counter()
            response = self._edge_pipeline(request, now)
            self._obs_edge_observe(perf_counter() - edge_started)
        if response is None:
            handler = self._handlers.get(request.path)
            if handler is None:
                response = Response(status=NOT_FOUND, outcome="no-such-path")
            else:
                response = handler(request)
        self._log(request, response, now)
        if obs is not None:
            observe = self._obs_request_observers.get(request.path)
            if observe is None:
                observe = self._obs_request_observer(request.path)
            observe(perf_counter() - started)
            status_name = self._obs_status_names.get(response.status)
            if status_name is None:
                status_name = f"web.response.{response.status}"
                self._obs_status_names[response.status] = status_name
            obs.increment(status_name)
        return response

    def _edge_pipeline(
        self, request: Request, now: float
    ) -> Optional[Response]:
        for rule in self._block_rules:
            if rule.predicate(request):
                rule.matches += 1
                rule.last_matched_at = now
                self.metrics.increment("web.blocked")
                return Response(
                    status=BLOCKED,
                    outcome="blocked",
                    blocked_by=rule.rule_id,
                )
        policy = self._access_policies.get(request.path)
        if policy is not None and not policy(request):
            self.metrics.increment("web.restricted")
            return Response(
                status=BLOCKED,
                outcome="restricted",
                blocked_by=f"restriction:{request.path}",
            )
        violated = self.ratelimits.check(request, now)
        if violated is not None:
            self.metrics.increment("web.rate_limited")
            return Response(
                status=RATE_LIMITED,
                outcome="rate-limited",
                blocked_by=violated,
            )
        gate = self._captcha_gates.get(request.path)
        if gate is not None:
            outcome = self._present_captcha(request, gate)
            if not outcome:
                self.metrics.increment("web.captcha_failed")
                return Response(
                    status=CAPTCHA_FAILED,
                    outcome="captcha-failed",
                    blocked_by=f"captcha:{request.path}",
                )
        return None

    def _present_captcha(
        self, request: Request, gate: CaptchaGateModel
    ) -> bool:
        ability = request.captcha_ability
        if ability == CAPTCHA_HUMAN:
            return gate.present_to_human(self._rng).passed
        uses_solver = ability == CAPTCHA_SOLVER
        outcome = gate.present_to_bot(self._rng, uses_solver)
        if outcome.cost_to_client > 0:
            actor = request.client.actor
            self.captcha_costs_by_actor[actor] = (
                self.captcha_costs_by_actor.get(actor, 0.0)
                + outcome.cost_to_client
            )
        return outcome.passed

    def _log(self, request: Request, response: Response, now: float) -> None:
        # append_fields writes straight into the columnar store — no
        # LogEntry object unless a live observer needs one.
        self.log.append_fields(
            time=now,
            method=request.method,
            path=request.path,
            status=response.status,
            client=request.client,
            blocked_by=response.blocked_by,
            outcome=response.outcome,
        )
        self.metrics.increment("web.requests")
        self.metrics.increment(f"web.requests.{request.path}")
        self.metrics.increment(f"web.status.{response.status}")

    # -- endpoint handlers --------------------------------------------------------

    def _handle_search(self, request: Request) -> Response:
        flights = [
            {
                "flight_id": flight.flight_id,
                "available": flight.inventory.available,
            }
            for flight in self.reservations.flights()
        ]
        return Response(status=OK, outcome="search", data=flights)

    def _handle_flight_details(self, request: Request) -> Response:
        flight_id = request.param("flight_id")
        try:
            flight = self.reservations.flight(flight_id)
        except KeyError:
            return Response(status=NOT_FOUND, outcome="unknown-flight")
        data = {
            "flight_id": flight.flight_id,
            "available": self.reservations.availability(flight_id),
            "price": self.reservations.pricing.quote(flight, 1),
        }
        return Response(status=OK, outcome="details", data=data)

    def _handle_hold(self, request: Request) -> Response:
        flight_id = request.param("flight_id")
        passengers = request.param("passengers")
        if not passengers:
            return Response(status=BAD_REQUEST, outcome="invalid-party")
        shadow = bool(
            self.honeypot_router is not None
            and self.honeypot_router(request)
        )
        result = self.reservations.create_hold(
            flight_id,
            passengers,
            request.client,
            shadow=shadow,
            seat_preference=request.params.get("seat_preference", "any"),
        )
        if not result.ok:
            return Response(status=CONFLICT, outcome=result.error)
        return Response(status=OK, outcome="held", data=result.hold)

    def _handle_pay(self, request: Request) -> Response:
        hold_id = request.param("hold_id")
        self.reservations.expire_due()
        if hold_id not in self.reservations.holds:
            return Response(status=NOT_FOUND, outcome="unknown-hold")
        hold = self.reservations.holds.get(hold_id)
        if not hold.is_active:
            return Response(status=CONFLICT, outcome=f"hold-{hold.status}")
        confirmed = self.reservations.confirm(hold_id)
        return Response(status=OK, outcome="paid", data=confirmed)

    def _handle_otp_login(self, request: Request) -> Response:
        phone = request.param("phone")
        record = self.sms.send(phone, OTP, request.client)
        if not record.delivered:
            return Response(status=CONFLICT, outcome=record.reject_reason)
        return Response(status=OK, outcome="otp-sent", data=record)

    def _handle_notify(self, request: Request) -> Response:
        """The open notification form: sends a flight-update SMS to any
        phone number the caller supplies, with no account or booking
        reference required — the amplification surface of Case E."""
        phone = request.param("phone")
        record = self.sms.send(phone, NOTIFICATION, request.client)
        if not record.delivered:
            return Response(status=CONFLICT, outcome=record.reject_reason)
        return Response(status=OK, outcome="notification-sent", data=record)

    def _handle_trap(self, request: Request) -> Response:
        """The hidden trap endpoint: serves an innocuous page and
        counts the visit — only automated link-followers land here."""
        self.metrics.increment("web.trap_hits")
        return Response(status=OK, outcome="trap", data=None)

    def _handle_boarding_pass_sms(self, request: Request) -> Response:
        booking_ref = request.param("booking_ref")
        phone = request.param("phone")
        record = self.sms.send(
            phone, BOARDING_PASS, request.client, booking_ref=booking_ref
        )
        if not record.delivered:
            return Response(status=CONFLICT, outcome=record.reject_reason)
        return Response(status=OK, outcome="boarding-pass-sent", data=record)
