"""Analysis helpers: distributions, evaluation, report rendering."""

from .aggregate import (
    SummaryStats,
    aggregate_metrics,
    mean_ci,
    t_quantile,
)
from .distributions import (
    nip_counts,
    nip_shares,
    share_of,
    weekly_nip_table,
)
from .evaluation import (
    BinaryEvaluation,
    CampaignEvaluation,
    CampaignGroundTruth,
    campaign_recall_from_verdicts,
    evaluate_campaigns,
    evaluate_verdicts,
    false_positive_sessions,
    recall_by_class,
    session_actor,
    true_campaigns,
)
from .reports import (
    format_percent,
    render_distribution,
    render_table,
    render_weekly_nip,
)

__all__ = [
    "SummaryStats",
    "aggregate_metrics",
    "mean_ci",
    "t_quantile",
    "nip_counts",
    "nip_shares",
    "share_of",
    "weekly_nip_table",
    "BinaryEvaluation",
    "CampaignEvaluation",
    "CampaignGroundTruth",
    "campaign_recall_from_verdicts",
    "evaluate_campaigns",
    "evaluate_verdicts",
    "false_positive_sessions",
    "recall_by_class",
    "session_actor",
    "true_campaigns",
    "format_percent",
    "render_distribution",
    "render_table",
    "render_weekly_nip",
]
