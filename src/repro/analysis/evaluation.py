"""Detector scoring against simulation ground truth.

The traffic generators tag every request with its true actor class;
sessions inherit the majority label.  This module turns detector
verdicts plus those labels into the usual binary metrics, overall and
per attack class — which is how the E6 benchmark shows each detector
family's blind spots.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from ..common import LEGIT
from ..core.detection.verdict import Verdict
from ..web.logs import Session


@dataclass(frozen=True)
class BinaryEvaluation:
    """Confusion-matrix summary of one detector run."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def false_positive_rate(self) -> float:
        denominator = self.false_positives + self.true_negatives
        return self.false_positives / denominator if denominator else 0.0

    @property
    def total(self) -> int:
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )


def evaluate_verdicts(
    sessions: Sequence[Session], verdicts: Sequence[Verdict]
) -> BinaryEvaluation:
    """Score session verdicts against session ground truth.

    Sessions without a verdict count as predicted-benign (a detector
    that never looked at a session did not flag it).
    """
    predicted: Dict[str, bool] = {v.subject_id: v.is_bot for v in verdicts}
    tp = fp = tn = fn = 0
    for session in sessions:
        truth = session.is_attacker
        flagged = predicted.get(session.session_id, False)
        if truth and flagged:
            tp += 1
        elif truth and not flagged:
            fn += 1
        elif not truth and flagged:
            fp += 1
        else:
            tn += 1
    return BinaryEvaluation(tp, fp, tn, fn)


def recall_by_class(
    sessions: Sequence[Session], verdicts: Sequence[Verdict]
) -> Dict[str, float]:
    """Recall split by ground-truth attack class.

    The paper's core empirical claim in one table: a volume detector
    shows high recall on ``scraper`` and near-zero on ``seat-spinner`` /
    ``sms-pumper`` / ``manual-spinner``.
    """
    predicted: Dict[str, bool] = {v.subject_id: v.is_bot for v in verdicts}
    caught: Dict[str, int] = defaultdict(int)
    totals: Dict[str, int] = defaultdict(int)
    for session in sessions:
        label = session.actor_class
        if label == LEGIT:
            continue
        totals[label] += 1
        if predicted.get(session.session_id, False):
            caught[label] += 1
    return {
        label: caught[label] / totals[label] for label in sorted(totals)
    }


def false_positive_sessions(
    sessions: Sequence[Session], verdicts: Sequence[Verdict]
) -> List[Session]:
    """Legitimate sessions the detector flagged (collateral damage)."""
    predicted = {v.subject_id: v.is_bot for v in verdicts}
    return [
        session
        for session in sessions
        if not session.is_attacker
        and predicted.get(session.session_id, False)
    ]
