"""Detector scoring against simulation ground truth.

The traffic generators tag every request with its true actor class;
sessions inherit the majority label.  This module turns detector
verdicts plus those labels into the usual binary metrics, overall and
per attack class — which is how the E6 benchmark shows each detector
family's blind spots.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from ..common import LEGIT
from ..core.detection.verdict import Verdict
from ..web.logs import Session


@dataclass(frozen=True)
class BinaryEvaluation:
    """Confusion-matrix summary of one detector run."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def false_positive_rate(self) -> float:
        denominator = self.false_positives + self.true_negatives
        return self.false_positives / denominator if denominator else 0.0

    @property
    def total(self) -> int:
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )


def predicted_bot_map(verdicts: Iterable[Verdict]) -> Dict[str, bool]:
    """Merge verdicts into a per-subject bot flag, any-bot-wins.

    A subject can legitimately carry several verdicts (one per detector
    family, or a detector re-judging a session after a graph refresh).
    A naive ``{v.subject_id: v.is_bot}`` dict resolves such duplicates
    last-write-wins, so a benign verdict arriving after a bot verdict
    silently un-flags the subject — and the measured recall then depends
    on detector *order*.  Flagged-by-anyone is the deterministic,
    order-independent merge every evaluation below uses.
    """
    predicted: Dict[str, bool] = {}
    for verdict in verdicts:
        if verdict.is_bot:
            predicted[verdict.subject_id] = True
        else:
            predicted.setdefault(verdict.subject_id, False)
    return predicted


def evaluate_verdicts(
    sessions: Sequence[Session], verdicts: Sequence[Verdict]
) -> BinaryEvaluation:
    """Score session verdicts against session ground truth.

    Sessions without a verdict count as predicted-benign (a detector
    that never looked at a session did not flag it); sessions with
    several verdicts count as flagged if *any* verdict flagged them
    (see :func:`predicted_bot_map`).
    """
    predicted = predicted_bot_map(verdicts)
    tp = fp = tn = fn = 0
    for session in sessions:
        truth = session.is_attacker
        flagged = predicted.get(session.session_id, False)
        if truth and flagged:
            tp += 1
        elif truth and not flagged:
            fn += 1
        elif not truth and flagged:
            fp += 1
        else:
            tn += 1
    return BinaryEvaluation(tp, fp, tn, fn)


def recall_by_class(
    sessions: Sequence[Session], verdicts: Sequence[Verdict]
) -> Dict[str, float]:
    """Recall split by ground-truth attack class.

    The paper's core empirical claim in one table: a volume detector
    shows high recall on ``scraper`` and near-zero on ``seat-spinner`` /
    ``sms-pumper`` / ``manual-spinner``.
    """
    predicted = predicted_bot_map(verdicts)
    caught: Dict[str, int] = defaultdict(int)
    totals: Dict[str, int] = defaultdict(int)
    for session in sessions:
        label = session.actor_class
        if label == LEGIT:
            continue
        totals[label] += 1
        if predicted.get(session.session_id, False):
            caught[label] += 1
    return {
        label: caught[label] / totals[label] for label in sorted(totals)
    }


def session_actor(session: Session) -> str:
    """Ground-truth majority actor id (campaign label) of a session.

    The traffic generators stamp each request's :class:`ClientRef`
    with the operating actor; like ``actor_class``, the session takes
    the majority.  Evaluation only — detection code must never call
    this.

    A zero-entry session (the sessionizer can surface one at an
    eviction boundary, before its first entry lands) has no actor —
    it counts as unattributed rather than crashing ``max()``.
    """
    counts: Dict[str, int] = {}
    for entry in session.entries:
        counts[entry.client.actor] = counts.get(entry.client.actor, 0) + 1
    if not counts:
        return ""
    return max(counts.items(), key=lambda item: item[1])[0]


@dataclass(frozen=True)
class CampaignGroundTruth:
    """One true campaign: all sessions operated by one attacker actor."""

    actor: str
    session_ids: Tuple[str, ...]
    first_seen: float


def true_campaigns(
    sessions: Sequence[Session],
) -> Dict[str, CampaignGroundTruth]:
    """Group attacker sessions by ground-truth actor id.

    Every distinct attacker actor is one true campaign, regardless of
    how many fingerprints or addresses it rotated through — that
    rotation is exactly what campaign detection must see through.
    """
    by_actor: Dict[str, List[Session]] = defaultdict(list)
    for session in sessions:
        if not session.is_attacker:
            continue
        by_actor[session_actor(session)].append(session)
    return {
        actor: CampaignGroundTruth(
            actor=actor,
            session_ids=tuple(s.session_id for s in members),
            first_seen=min(s.start for s in members),
        )
        for actor, members in by_actor.items()
    }


@dataclass(frozen=True)
class CampaignEvaluation:
    """Campaign-level scoring of a detection run.

    A true campaign counts as *recovered* when flagged sessions cover
    at least the coverage threshold of its traffic; a predicted
    campaign counts as *precise* when at least that share of its
    sessions belong to a single true campaign.  ``time_to_detection``
    maps each recovered actor to (earliest flagged member session end)
    minus (campaign first activity).
    """

    recovered: int
    total_true: int
    precise: int
    total_predicted: int
    time_to_detection: Dict[str, float]

    @property
    def campaign_recall(self) -> float:
        return self.recovered / self.total_true if self.total_true else 0.0

    @property
    def campaign_precision(self) -> float:
        return (
            self.precise / self.total_predicted
            if self.total_predicted
            else 0.0
        )

    @property
    def mean_time_to_detection(self) -> float:
        if not self.time_to_detection:
            return float("inf")
        values = list(self.time_to_detection.values())
        return sum(values) / len(values)


def _predicted_session_ids(predicted: object) -> Tuple[str, ...]:
    """Accept ``Campaign``-like objects or plain session-id iterables."""
    session_ids = getattr(predicted, "session_ids", predicted)
    return tuple(session_ids)


def evaluate_campaigns(
    sessions: Sequence[Session],
    predicted: Iterable[object],
    coverage_threshold: float = 0.5,
) -> CampaignEvaluation:
    """Score predicted campaigns against per-actor ground truth.

    ``predicted`` items are either :class:`repro.graph.campaigns.
    Campaign` instances or bare iterables of session ids.
    """
    truth = true_campaigns(sessions)
    end_of: Dict[str, float] = {s.session_id: s.end for s in sessions}
    actor_of: Dict[str, str] = {}
    for actor, campaign in truth.items():
        for session_id in campaign.session_ids:
            actor_of[session_id] = actor

    clusters = [_predicted_session_ids(item) for item in predicted]
    precise = 0
    detection_time: Dict[str, float] = {}
    flagged_by_actor: Dict[str, set] = defaultdict(set)
    for cluster in clusters:
        if not cluster:
            continue
        actor_counts: Dict[str, int] = defaultdict(int)
        for session_id in cluster:
            actor = actor_of.get(session_id)
            if actor is not None:
                actor_counts[actor] += 1
        if actor_counts:
            top_actor, top_count = max(
                actor_counts.items(), key=lambda item: (item[1], item[0])
            )
            if top_count / len(cluster) >= coverage_threshold:
                precise += 1
        for session_id in cluster:
            actor = actor_of.get(session_id)
            if actor is not None:
                flagged_by_actor[actor].add(session_id)

    recovered = 0
    for actor, campaign in truth.items():
        flagged = flagged_by_actor.get(actor, set())
        coverage = len(flagged) / len(campaign.session_ids)
        if coverage >= coverage_threshold:
            recovered += 1
            detection_time[actor] = (
                min(end_of[s] for s in flagged) - campaign.first_seen
            )
    return CampaignEvaluation(
        recovered=recovered,
        total_true=len(truth),
        precise=precise,
        total_predicted=len(clusters),
        time_to_detection=detection_time,
    )


def campaign_recall_from_verdicts(
    sessions: Sequence[Session],
    verdicts: Sequence[Verdict],
    coverage_threshold: float = 0.5,
) -> float:
    """Campaign recall achievable from per-session verdicts alone.

    A true campaign counts as recovered when flagged sessions cover at
    least ``coverage_threshold`` of its traffic.  This is the honest
    arm-to-arm comparison: a session-only detector never names
    campaigns, but if it flagged most of one's sessions it would have
    caught the operation.
    """
    truth = true_campaigns(sessions)
    if not truth:
        return 0.0
    flagged = {v.subject_id for v in verdicts if v.is_bot}
    recovered = 0
    for campaign in truth.values():
        covered = sum(
            1 for session_id in campaign.session_ids
            if session_id in flagged
        )
        if covered / len(campaign.session_ids) >= coverage_threshold:
            recovered += 1
    return recovered / len(truth)


def false_positive_sessions(
    sessions: Sequence[Session], verdicts: Sequence[Verdict]
) -> List[Session]:
    """Legitimate sessions the detector flagged (collateral damage)."""
    predicted = predicted_bot_map(verdicts)
    return [
        session
        for session in sessions
        if not session.is_attacker
        and predicted.get(session.session_id, False)
    ]
