"""Distribution helpers over booking records (Fig. 1 machinery)."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Mapping, Sequence

from ..booking.reservation import BookingRecord


def nip_counts(
    records: Sequence[BookingRecord],
    start: float = float("-inf"),
    end: float = float("inf"),
    flight_id: str = "",
) -> Dict[int, int]:
    """Count held reservations by Number-in-Party inside a window."""
    counter: Counter = Counter()
    for record in records:
        if record.outcome != "held":
            continue
        if not start <= record.time < end:
            continue
        if flight_id and record.flight_id != flight_id:
            continue
        counter[record.nip] += 1
    return dict(counter)


def nip_shares(counts: Mapping[int, int]) -> Dict[int, float]:
    """Normalise NiP counts into shares (empty input -> empty output)."""
    total = sum(counts.values())
    if total == 0:
        return {}
    return {nip: count / total for nip, count in sorted(counts.items())}


def share_of(counts: Mapping[int, int], nip: int) -> float:
    """Share of one party size in a count table (0 when absent)."""
    total = sum(counts.values())
    if total == 0:
        return 0.0
    return counts.get(nip, 0) / total


def weekly_nip_table(
    records: Sequence[BookingRecord],
    week_starts: Iterable[float],
    week_length: float,
    max_nip: int = 9,
) -> List[Dict[int, float]]:
    """Per-week NiP share rows — the three stacked bars of Fig. 1."""
    rows = []
    for start in week_starts:
        counts = nip_counts(records, start, start + week_length)
        shares = nip_shares(counts)
        rows.append(
            {nip: shares.get(nip, 0.0) for nip in range(1, max_nip + 1)}
        )
    return rows
