"""Replication aggregation: means and confidence intervals.

The paper's claims are distributional, so sweep results are reported as
``mean +/- t * s / sqrt(n)`` over independent replications.  The
Student-t quantiles are tabulated here (two-sided 90/95/99%) to keep
scipy out of the runtime dependencies; beyond 30 degrees of freedom the
normal quantile is an excellent approximation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

#: Two-sided Student-t quantiles by confidence level, indexed df-1
#: (df 1..30).  Values beyond df=30 fall back to the normal quantile.
_T_TABLE: Dict[float, Tuple[float, ...]] = {
    0.90: (
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833,
        1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734,
        1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703,
        1.701, 1.699, 1.697,
    ),
    0.95: (
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
        2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
        2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
        2.048, 2.045, 2.042,
    ),
    0.99: (
        63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250,
        3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878,
        2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771,
        2.763, 2.756, 2.750,
    ),
}

_Z_FALLBACK: Dict[float, float] = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}


def t_quantile(df: int, confidence: float = 0.95) -> float:
    """Two-sided Student-t critical value for ``df`` degrees of freedom.

    >>> t_quantile(4)
    2.776
    >>> t_quantile(1000)
    1.96
    """
    if confidence not in _T_TABLE:
        raise ValueError(
            f"unsupported confidence {confidence}; "
            f"choose one of {sorted(_T_TABLE)}"
        )
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1: {df}")
    table = _T_TABLE[confidence]
    if df <= len(table):
        return table[df - 1]
    return _Z_FALLBACK[confidence]


@dataclass(frozen=True)
class SummaryStats:
    """Mean and confidence interval over replication values."""

    count: int
    mean: float
    std: float
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def __str__(self) -> str:
        if self.count < 2:
            return f"{self.mean:.4g}"
        return f"{self.mean:.4g} +/- {self.half_width:.3g}"


def mean_ci(
    values: Iterable[float], confidence: float = 0.95
) -> SummaryStats:
    """Mean with a Student-t confidence interval.

    With fewer than two values the interval collapses to the mean
    (there is no dispersion estimate to widen it with).
    """
    data = [float(value) for value in values]
    if not data:
        raise ValueError("mean_ci needs at least one value")
    count = len(data)
    mean = sum(data) / count
    if count < 2:
        return SummaryStats(count, mean, 0.0, mean, mean, confidence)
    variance = sum((value - mean) ** 2 for value in data) / (count - 1)
    std = math.sqrt(variance)
    half = t_quantile(count - 1, confidence) * std / math.sqrt(count)
    return SummaryStats(
        count, mean, std, mean - half, mean + half, confidence
    )


def aggregate_metrics(
    metric_dicts: Sequence[Dict[str, float]],
    confidence: float = 0.95,
) -> Dict[str, SummaryStats]:
    """Per-metric :func:`mean_ci` across replication metric dicts.

    Only metrics present in *every* replication are aggregated; a
    partial metric would silently average over a biased subset.
    """
    if not metric_dicts:
        return {}
    names = set(metric_dicts[0])
    for metrics in metric_dicts[1:]:
        names &= set(metrics)
    return {
        name: mean_ci(
            [metrics[name] for metrics in metric_dicts], confidence
        )
        for name in sorted(names)
    }
