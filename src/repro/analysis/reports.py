"""Plain-text rendering of tables and distributions.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output readable without any plotting
dependency.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_percent(value: float, decimals: int = 0) -> str:
    """Render a percentage with thousands separators (Table I style).

    >>> format_percent(160209.3)
    '160,209%'
    """
    if value == float("inf"):
        return "inf%"
    return f"{value:,.{decimals}f}%"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width ASCII table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells; expected {columns}"
            )
    # Flatten any embedded line breaks: a cell must stay on one line or
    # the fixed-width layout falls apart.
    def clean(value: object) -> str:
        return " ".join(str(value).split()) or str(value).strip() or ""

    cells = [[clean(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells))
        if cells
        else len(headers[i])
        for i in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        header.ljust(widths[i]) for i, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in cells:
        lines.append(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_distribution(
    shares: Mapping[int, float],
    title: str = "",
    width: int = 50,
) -> str:
    """Horizontal ASCII bars for a discrete share distribution
    (one Fig. 1 stacked bar, unrolled)."""
    lines = [title] if title else []
    peak = max(shares.values(), default=0.0)
    for key in sorted(shares):
        share = shares[key]
        bar = "#" * int(round(share / peak * width)) if peak > 0 else ""
        lines.append(f"{key:>3}  {share * 100:6.2f}%  {bar}")
    return "\n".join(lines)


def render_weekly_nip(
    rows: Sequence[Dict[int, float]],
    labels: Sequence[str],
) -> str:
    """Fig. 1 as a table: one column per week, one row per NiP."""
    if len(rows) != len(labels):
        raise ValueError(
            f"{len(rows)} rows but {len(labels)} labels"
        )
    nips = sorted({nip for row in rows for nip in row})
    headers = ["NiP"] + list(labels)
    table_rows: List[List[object]] = []
    for nip in nips:
        table_rows.append(
            [nip]
            + [f"{row.get(nip, 0.0) * 100:6.2f}%" for row in rows]
        )
    return render_table(headers, table_rows, title="Number in Party shares")
