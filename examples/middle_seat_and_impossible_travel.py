"""Two extension detectors the rotation arms race cannot beat.

1. **Middle-seat hoarding** — on a flight with a real seat map, the
   manual attacker reproduces the publicised trick of blocking middle
   seats so they fly next to an empty one.  The seat-hoarding detector
   reads *which* seats each device keeps holding: genuine passengers
   pick windows and aisles; nobody voluntarily collects middles.

2. **Impossible travel** — the SMS pumper geo-matches every proxy exit
   to its destination number's country, defeating per-request geo
   checks.  But the handful of booking references anchoring the
   campaign now appear from dozens of countries within hours, which no
   passenger's itinerary can explain.

Run:  python examples/middle_seat_and_impossible_travel.py
"""

from collections import Counter

from repro.analysis.reports import render_table
from repro.booking.seatmap import MIDDLE, SeatMap
from repro.common import MANUAL_SPINNER, SMS_PUMPER
from repro.core.detection.geo_velocity import GeoVelocityDetector
from repro.core.detection.seats import SeatHoardingDetector
from repro.identity.forge import (
    BotIdentity,
    FingerprintForge,
    MIMICRY,
    RotationPolicy,
)
from repro.identity.ip import ResidentialProxyPool
from repro.scenarios.case_c import case_c_attack_weights
from repro.scenarios.world import FlightSpec, WorldConfig, build_world
from repro.sim.clock import DAY, HOUR
from repro.traffic.legitimate import LegitimateConfig, LegitimatePopulation
from repro.traffic.manual_spinner import ManualSeatSpinner, ManualSpinnerConfig
from repro.traffic.sms_baseline import BaselineSmsConfig, BaselineSmsTraffic
from repro.traffic.sms_pumper import SmsPumperBot, SmsPumperConfig


def main() -> None:
    world = build_world(
        WorldConfig(
            seed=8,
            flights=[
                FlightSpec("SEATMAP-1", 8 * DAY, capacity=120),
                FlightSpec("SETUP", 20 * DAY, capacity=100),
            ],
            hold_ttl=4 * HOUR,
        )
    )
    world.reservations.flight("SEATMAP-1").seat_map = SeatMap(rows=20)

    LegitimatePopulation(
        world.loop,
        world.app,
        world.rngs.stream("legit"),
        LegitimateConfig(visitor_rate_per_hour=10),
    ).start(at=0.0)
    ManualSeatSpinner(
        world.loop,
        world.app,
        world.rngs.stream("manual"),
        ManualSpinnerConfig(target_flight="SEATMAP-1"),
    ).start(at=0.0)
    BaselineSmsTraffic(
        world.loop,
        world.app,
        world.rngs.stream("sms-base"),
        BaselineSmsConfig(sms_per_hour=40),
    ).start(at=0.0)
    SmsPumperBot(
        world.loop,
        world.app,
        BotIdentity(
            FingerprintForge(MIMICRY),
            RotationPolicy(mean_interval=5.3 * HOUR),
            world.rngs.stream("pumper.identity"),
        ),
        ResidentialProxyPool(),
        world.rngs.stream("pumper"),
        SmsPumperConfig(
            setup_flight="SETUP",
            sms_per_hour=40,
            target_weights=case_c_attack_weights(),
        ),
    ).start(at=1 * DAY)

    print("running 4 simulated days of mixed traffic...\n")
    world.run_until(4 * DAY)

    # -- 1. middle-seat hoarding ---------------------------------------------
    holds = world.reservations.holds.all_holds()
    spinner_holds = [
        h for h in holds if h.client.actor_class == MANUAL_SPINNER and h.seats
    ]
    middle_share = sum(
        1 for h in spinner_holds for s in h.seats if s.position == MIDDLE
    ) / max(sum(len(h.seats) for h in spinner_holds), 1)
    detector = SeatHoardingDetector()
    verdicts = detector.judge_holds(holds)
    print(render_table(
        ["Seat-hoarding metric", "Value"],
        [
            ["attacker holds on seat-mapped flight", len(spinner_holds)],
            ["attacker middle-seat share", f"{middle_share * 100:.0f}%"],
            ["clients judged", len(verdicts)],
            ["clients flagged",
             sum(1 for v in verdicts if v.is_bot)],
            ["verdict evidence",
             next((v.reasons[0] for v in verdicts if v.is_bot), "-")],
        ],
        title="1. Middle-seat hoarding (manual Seat Spinning)",
    ))

    # -- 2. impossible travel -----------------------------------------------------
    delivered = world.sms.delivered_records()
    geo = GeoVelocityDetector()
    flagged = geo.flagged_keys(delivered)
    pumper_countries = Counter(
        r.client.ip_country
        for r in delivered
        if r.client.actor_class == SMS_PUMPER
    )
    print()
    print(render_table(
        ["Impossible-travel metric", "Value"],
        [
            ["SMS delivered (all)", len(delivered)],
            ["distinct origin countries of the pumping campaign",
             len(pumper_countries)],
            ["booking refs flagged", len(flagged)],
            ["pumper booking refs",
             len({r.booking_ref for r in delivered
                  if r.client.actor_class == SMS_PUMPER
                  and r.booking_ref})],
        ],
        title="2. Impossible travel (SMS pumping)",
    ))
    print(
        "\nboth signals survive fingerprint rotation: seats and booking "
        "references are the attack's *purpose*, and the purpose cannot "
        "be rotated away."
    )


if __name__ == "__main__":
    main()
