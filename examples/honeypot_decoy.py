"""Honeypot / decoy-inventory mitigation (the paper's Section V idea).

Runs the same Seat Spinning campaign twice — once against classic
fingerprint blocking, once against a decoy shadow inventory — and
compares what the paper predicts: with the honeypot, "attackers waste
resources believing to hold items in a false environment while
legitimate users remain unaffected ... their need to rotate
fingerprints or adjust tactics diminishes".

Run:  python examples/honeypot_decoy.py
"""

from repro.analysis.reports import render_table
from repro.economics.reports import attacker_seat_seconds
from repro.scenarios.case_a import CaseAConfig, TARGET_FLIGHT, run_case_a


def main() -> None:
    print("running the campaign against BLOCKING defences...")
    blocking = run_case_a(CaseAConfig(honeypot_mode=False, cap_at=None))
    print("running the campaign against the HONEYPOT...\n")
    honeypot = run_case_a(CaseAConfig(honeypot_mode=True, cap_at=None))

    displaced_blocking = attacker_seat_seconds(
        blocking.world.reservations, TARGET_FLIGHT
    ).attacker_seat_hours
    displaced_honeypot = attacker_seat_seconds(
        honeypot.world.reservations, TARGET_FLIGHT
    ).attacker_seat_hours

    print(render_table(
        ["Metric", "blocking", "honeypot"],
        [
            ["attacker fingerprint rotations",
             blocking.attacker_rotations, honeypot.attacker_rotations],
            ["attacker proxy leases",
             blocking.proxy_pool.leases_granted,
             honeypot.proxy_pool.leases_granted],
            ["real seat-hours denied to customers",
             f"{displaced_blocking:.0f}", f"{displaced_honeypot:.0f}"],
            ["seats absorbed by shadow inventory",
             blocking.shadow_seats_absorbed,
             honeypot.shadow_seats_absorbed],
            ["seats sold to legit customers (target flight)",
             blocking.target_legit_confirmed_seats,
             honeypot.target_legit_confirmed_seats],
        ],
        title="Blocking vs decoy inventory, same attack",
    ))

    print(
        "\nwith blocking, every rule teaches the attacker to rotate; "
        "with the decoy, the attacker sees nothing but success — and "
        "holds nothing at all."
    )


if __name__ == "__main__":
    main()
