"""Parallel sweeps: replicate an ablation across worker processes.

The paper's claims are distributional, so one seed per configuration is
a single draw from each distribution.  This example re-runs the
rotation-interval ablation (Section III-B's rotation arms race) as a
proper replicated sweep through :mod:`repro.runner`:

1. a `SweepSpec` declares the grid (four rotation intervals) and the
   replication count — every cell's seed derives from
   ``(master_seed, config_hash, replication)``, so the whole sweep is
   one deterministic object;
2. `run_sweep` fans the cells out over worker processes and folds the
   results back in spec order (a serial run would give bit-identical
   numbers);
3. each metric is reported as mean +/- 95% CI over the replications;
4. the on-disk cache makes the second run near-instant: only missing
   cells are ever computed.

Run:  python examples/parallel_sweep.py
"""

import shutil
import tempfile
import time

from repro.analysis.reports import render_table
from repro.runner import SweepSpec, default_workers, run_sweep
from repro.sim.clock import DAY, HOUR, format_duration

# A scaled-down rotation ablation: one attack week is enough to rank
# the arms, and four replications per arm give honest error bars.
INTERVALS = (0.5 * HOUR, 2 * HOUR, 8 * HOUR)

SPEC = SweepSpec(
    scenario="case-a",
    base={
        "cap_at": None,
        "rotate_on_block": False,
        "attack_start": 2 * DAY,
        "departure_time": 6 * DAY,
        "visitor_rate_per_hour": 6.0,
    },
    grid={"rotation_mean_interval": INTERVALS},
    replications=4,
    master_seed=101,
)


def main() -> None:
    workers = default_workers()
    cache_dir = tempfile.mkdtemp(prefix="repro-sweep-cache-")
    try:
        # -- cold run: every cell computed, in parallel -------------------
        started = time.perf_counter()
        cold = run_sweep(SPEC, workers=workers, cache_dir=cache_dir)
        cold_elapsed = time.perf_counter() - started

        rows = []
        for params, stats in cold.aggregate_all():
            rows.append([
                format_duration(params["rotation_mean_interval"]),
                str(stats["blocked_fraction"]),
                str(stats["attacker_holds_created"]),
                str(stats["rules_deployed"]),
            ])
        print(render_table(
            ["Rotation interval", "blocked fraction",
             "successful holds", "rules deployed"],
            rows,
            title=(
                f"Rotation ablation, {SPEC.replications} replications "
                "per arm (mean +/- 95% CI)"
            ),
        ))
        print(
            f"\ncold run:  {len(cold.cells)} cells on {workers} "
            f"worker(s) in {cold_elapsed:.2f}s "
            f"(cache misses: {cold.cache_misses})"
        )

        # -- warm run: served entirely from the cache ---------------------
        started = time.perf_counter()
        warm = run_sweep(SPEC, workers=workers, cache_dir=cache_dir)
        warm_elapsed = time.perf_counter() - started
        print(
            f"warm run:  {warm.cache_hits} cache hits in "
            f"{warm_elapsed:.2f}s "
            f"({cold_elapsed / max(warm_elapsed, 1e-9):.0f}x faster)"
        )

        # Cached results are the same results.
        assert [cell.metrics for cell in warm.cells] == [
            cell.metrics for cell in cold.cells
        ]

        # The replication CIs are the point: a single seed per arm could
        # have landed anywhere inside these bands.
        fast = cold.aggregate(dict(SPEC.base,
                                   rotation_mean_interval=INTERVALS[0]))
        slow = cold.aggregate(dict(SPEC.base,
                                   rotation_mean_interval=INTERVALS[-1]))
        print(
            f"\nfast rotator blocked fraction: {fast['blocked_fraction']}"
            f"\nslow rotator blocked fraction: {slow['blocked_fraction']}"
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
