"""Case C walkthrough: SMS Pumping forensics on Airline D.

Runs a scaled-down pumping campaign against the global SMS baseline and
performs the analysis a fraud team would:

1. the Table-I-style per-country surge table,
2. identity linking — booking references reunite the campaign across
   thousands of rotated fingerprints and geo-matched proxy exits,
3. the money: what the attack cost the airline and earned the attacker,
4. what changes under the per-booking-reference limit the paper
   recommends.

Run:  python examples/sms_pumping_forensics.py
"""

from repro.analysis.reports import format_percent, render_table
from repro.core.detection.rotation import link_sms_records
from repro.scenarios.case_c import (
    CaseCConfig,
    PER_REF,
    run_case_c,
)
from repro.sim.clock import format_duration


def main() -> None:
    print("running a 1/5-scale Case C campaign (two simulated weeks)...\n")
    result = run_case_c(CaseCConfig(seed=2, baseline_weekly_total=10_000))

    # -- 1. the surge table ----------------------------------------------------
    rows = result.table1_rows(top=10, min_window=20)
    print(render_table(
        ["Country", "Baseline/wk", "Attack wk", "Increase"],
        [
            [s.country_code, s.baseline_count, s.window_count,
             format_percent(s.surge_percent)]
            for s in rows
        ],
        title=(
            "Top destination-country surges "
            f"(global +{result.global_increase_percent:.0f}%, "
            f"{result.countries_targeted} countries)"
        ),
    ))

    # -- 2. identity linking -----------------------------------------------------
    delivered = result.world.sms.delivered_records()
    entities = [
        entity
        for entity in link_sms_records(delivered, min_cluster=20)
        if entity.rotates_identity
    ]
    print("\nidentity linking over the SMS log:")
    for entity in entities[:3]:
        print(
            f"  entity: {entity.record_count} sends, "
            f"{entity.distinct_fingerprints} fingerprints, "
            f"{entity.distinct_ips} IPs, active "
            f"{format_duration(entity.span)} "
            f"(rotation ~every "
            f"{format_duration(entity.mean_rotation_interval)})"
        )
    if entities:
        print("  -> a handful of booking references anchor the whole "
              "campaign: rotation cannot scrub them.")

    # -- 3. the money ---------------------------------------------------------------
    ledger = result.attacker_ledger
    print("\n" + render_table(
        ["Attacker ledger", "USD"],
        [[category, f"{amount:+.2f}"]
         for category, amount in sorted(ledger.by_category().items())]
        + [["NET", f"{ledger.net:+.2f}"]],
        title="Attack economics (unprotected)",
    ))
    print(f"defender SMS spend: ${result.defender_sms_cost:.2f}")

    # -- 4. the recommended control ----------------------------------------------------
    print("\nre-running with per-booking-reference + per-profile "
          "limits in place...")
    protected = run_case_c(
        CaseCConfig(seed=2, baseline_weekly_total=10_000, variant=PER_REF)
    )
    print(render_table(
        ["Metric", "unprotected", "per-ref limits"],
        [
            ["attacker SMS delivered", result.attacker_sms_delivered,
             protected.attacker_sms_delivered],
            ["detection latency", "-",
             format_duration(protected.detection_latency or 0)],
            ["attacker net ($)", f"{result.attacker_ledger.net:+.0f}",
             f"{protected.attacker_ledger.net:+.0f}"],
        ],
        title="The control the paper says was missing",
    ))


if __name__ == "__main__":
    main()
