"""Detector-family shootout on mixed traffic (the Section III argument).

One world, four simultaneous campaigns (scraper, seat spinner, manual
spinner, SMS pumper) plus legitimate traffic; five detector families
judge the same session log.  Prints the recall matrix that is the
paper's core empirical claim: conventional bot detection catches the
scraper and misses functional abuse.

Run:  python examples/detector_shootout.py
"""

from repro.analysis.reports import render_table
from repro.scenarios.detectors import (
    DetectorComparisonConfig,
    run_detector_comparison,
)

CLASSES = ("scraper", "seat-spinner", "manual-spinner", "sms-pumper")


def main() -> None:
    print("running 4 days of mixed traffic + training a supervised "
          "classifier on a disjoint world...\n")
    result = run_detector_comparison(DetectorComparisonConfig())

    rows = []
    for name in ("volume", "logistic", "kmeans", "fingerprint",
                 "abuse-pipeline"):
        run = result.run_for(name)
        rows.append(
            [name]
            + [f"{run.recall_by_class.get(cls, 0.0):.2f}"
               for cls in CLASSES]
            + [f"{run.evaluation.precision:.2f}",
               f"{run.evaluation.false_positive_rate * 100:.2f}%"]
        )

    print(render_table(
        ["Detector"] + [f"recall:{c}" for c in CLASSES]
        + ["precision", "FPR"],
        rows,
        title=(
            "Session-level detection "
            f"(ground truth sessions: {result.session_counts_by_class})"
        ),
    ))

    print(
        "\nreading the matrix:\n"
        "  * volume/kmeans/fingerprint nail the classic scraper and\n"
        "    miss every functional-abuse campaign (low volume, mimicry\n"
        "    fingerprints, rotation-shredded sessions);\n"
        "  * the supervised classifier generalises to DoI funnels but\n"
        "    still misses single-request pumper sessions;\n"
        "  * the abuse pipeline (passenger details + booking-ref\n"
        "    linking) catches what the others cannot — and ignores the\n"
        "    scraper, which is the conventional stack's job."
    )


if __name__ == "__main__":
    main()
