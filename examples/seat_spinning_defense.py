"""Case A walkthrough: the Seat Spinning arms race on Airline A.

Reproduces the paper's Section IV-A end to end — Fig. 1's three weekly
NiP distributions, the NiP cap and the attacker's adaptation, the
fingerprint-blocking arms race with its ~5.3 h rotation cadence, and
the attack's self-imposed stop two days before departure.

Run:  python examples/seat_spinning_defense.py
"""

from repro.analysis.reports import render_table, render_weekly_nip
from repro.scenarios.case_a import CaseAConfig, run_case_a
from repro.sim.clock import DAY, format_duration


def main() -> None:
    print("running the 3-week Case A scenario (this takes a few "
          "seconds)...\n")
    result = run_case_a(CaseAConfig())

    # -- Fig. 1 ---------------------------------------------------------------
    print(render_weekly_nip(
        [
            {n: week.get(n, 0.0) for n in range(1, 10)}
            for week in result.week_shares
        ],
        ["average week", "attack week", "after NiP<=4 cap"],
    ))

    average, attack, post_cap = result.week_shares
    print(f"\nNiP-6 share: {average.get(6, 0) * 100:.1f}% -> "
          f"{attack[6] * 100:.1f}% during the attack "
          f"({attack[6] / max(average.get(6, 0), 1e-6):.0f}x)")
    print(f"NiP-4 share: {average.get(4, 0) * 100:.1f}% -> "
          f"{post_cap[4] * 100:.1f}% after the cap "
          "(attacker AND legitimate groups fold to the cap)")

    # -- the arms race ------------------------------------------------------------
    interval = result.measured_rotation_interval
    print("\n" + render_table(
        ["Arms-race metric", "Measured", "Paper"],
        [
            ["fingerprint rotations", result.attacker_rotations, "-"],
            ["mean rotation interval", format_duration(interval),
             "5h18m (5.3 h)"],
            ["block rules deployed", len(result.rule_effectiveness), "-"],
            ["mean rule effective window",
             format_duration(result.mean_rule_window or 0), "hours"],
            ["attacker holds despite blocking",
             result.attacker_holds_created, "attack sustained"],
        ],
        title="Fingerprint-blocking arms race",
    ))

    # -- the ending ---------------------------------------------------------------
    quiet = result.departure_time - (result.last_attack_hold_time or 0)
    print(f"\nthe attack went quiet {format_duration(quiet)} before "
          f"departure (attacker's stop margin: "
          f"{format_duration(result.config.stop_before_departure)}) — "
          "exactly the pattern Amadeus observed.")

    if result.attacker_nip_adaptations:
        first = result.attacker_nip_adaptations[0][0]
        lag = first - (result.cap_applied_at or 0)
        print(f"cap-to-adaptation lag: {format_duration(lag)} "
              "(the attacker probed 6 -> 5 -> 4 almost immediately).")


if __name__ == "__main__":
    main()
