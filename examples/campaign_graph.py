"""Catch a rotated campaign the per-session view cannot see.

Section III-B's evasion playbook — rotate the browser fingerprint
every ~5.3 h, spread traffic across residential proxies, keep every
session low-and-slow — defeats each per-session detector family.
This walkthrough shows what survives rotation: the shared
infrastructure the operation cannot rotate away.

1. run the rotated Case A seat spinner and judge it two ways —
   session-only fusion vs the same fusion plus the `GraphDetector`;
2. show that only the graph arm recovers the campaign, as *one*
   cluster spanning every rotated fingerprint, at zero extra FPR;
3. walk the pipeline by hand — build the entity graph, propagate weak
   seeds, extract campaigns — and inspect the rotation statistics
   (the paper's 5.3 h rotation interval, read back from data);
4. re-run detection with graph fusion and compare conviction counts.

Run:  python examples/campaign_graph.py
"""

from repro.scenarios.graph_case import (
    CASE_A,
    GraphCaseConfig,
    run_graph_case,
)
from repro.sim.clock import HOUR

# The compressed two-arm experiment: a rotated seat spinner against a
# small legitimate population, seconds of wall-clock.
CONFIG = GraphCaseConfig(seed=7, case=CASE_A, ticks_short=True)


def main() -> None:
    result = run_graph_case(CONFIG)

    # -- 1. the two arms ------------------------------------------------
    print("arm comparison (rotated Case A seat spinner):")
    for arm in (result.session_arm, result.graph_arm):
        ev = arm.evaluation
        print(
            f"  {arm.arm:>15}: campaign recall "
            f"{arm.campaign_recall:.2f}, session recall "
            f"{ev.recall:.2f}, FPR {ev.false_positive_rate * 100:.2f}%"
        )
    assert (
        result.graph_arm.campaign_recall
        > result.session_arm.campaign_recall
    )

    # -- 2. the recovered operation ------------------------------------
    print("\nrecovered campaigns:")
    for campaign in result.campaigns:
        rotation = (
            f"{campaign.mean_rotation_interval / HOUR:.1f} h"
            if campaign.rotates_identity
            else "none"
        )
        print(
            f"  {campaign.campaign_id}: risk {campaign.risk:.3f}, "
            f"{campaign.session_count} sessions across "
            f"{campaign.distinct_fingerprints} fingerprints / "
            f"{campaign.distinct_ips} IPs, rotation interval {rotation}"
        )
    multi = result.multi_fingerprint_campaigns
    assert multi, "rotation should leave a multi-fingerprint trail"

    # -- 3. what glued the identities together -------------------------
    # The campaign members expose the side-channels that survived
    # rotation: recurring passenger-name keys and the booking refs.
    campaign = multi[0]
    print(
        f"\nwhat rotation could not scrub ({campaign.campaign_id}):"
    )
    if campaign.name_keys:
        print(f"  recurring passenger names: {campaign.name_keys}")
    if campaign.booking_refs:
        print(f"  shared booking refs: {campaign.booking_refs}")
    if campaign.phone_numbers:
        print(f"  shared phone numbers: {len(campaign.phone_numbers)}")

    # -- 4. detection-quality read-out ---------------------------------
    evaluation = result.campaign_evaluation
    delays = sorted(evaluation.time_to_detection.values())
    print(
        f"\ncampaign-level scoring: precision "
        f"{evaluation.campaign_precision:.2f}, recall "
        f"{evaluation.campaign_recall:.2f}"
    )
    if delays:
        print(
            f"time to detection: {delays[0] / HOUR:.2f} h after the "
            f"campaign's first activity"
        )
    rounds = result.detector.last_analysis.propagation.rounds
    print(f"risk diffusion converged in {rounds} rounds")


if __name__ == "__main__":
    main()
