"""Capture a live scenario to a trace, replay it, compare verdicts.

The streaming pipeline's promise is that *online* detection gives up
nothing relative to the batch pipeline it mirrors.  This walkthrough
proves it on Case A, end to end:

1. run Case A with a `TraceCapture` subscribed to the live web log —
   every request lands in a compact binary trace as it is served;
2. replay the trace through a fresh `StreamPipeline` (the pipeline
   cannot tell a replayed stream from a live one) and report the
   replay throughput with the simulation cost stripped away;
3. rebuild the full log from the trace, run the *batch* pipeline
   (sessionize + judge) on it, and check the streaming session
   verdicts are identical — same sessions, same scores, same
   convictions;
4. peek at the memory story: the streaming run held only the open
   sessions, never the whole log.

Run:  python examples/stream_replay.py
"""

import os
import tempfile

from repro.core.detection.volume import VolumeDetector
from repro.scenarios.case_a import CaseAConfig
from repro.scenarios.streaming import capture_case_a
from repro.sim.clock import DAY, HOUR
from repro.stream import (
    HoldVelocityAdapter,
    SessionDetectorAdapter,
    StreamPipeline,
    batch_session_verdicts,
)
from repro.trace import TraceReader, rebuild_log, replay_trace

# A compressed Case A: one quiet day, then the seat spinner until two
# days before departure.  Small enough to run in about a second.
CONFIG = CaseAConfig(
    seed=7,
    attack_start=1 * DAY,
    departure_time=7 * DAY,
    cap_at=None,
    controller_enabled=False,
)


def main() -> None:
    trace_path = os.path.join(
        tempfile.mkdtemp(prefix="repro-trace-"), "case_a.rptr"
    )

    # -- 1. capture -----------------------------------------------------
    result, entries_written = capture_case_a(trace_path, CONFIG)
    size = os.path.getsize(trace_path)
    print(f"captured {entries_written} requests to {trace_path}")
    print(f"  {size:,} bytes ({size / entries_written:.1f} bytes/entry); "
          f"attacker created {result.attacker_holds_created} holds")

    with TraceReader(trace_path) as reader:
        print(f"  header meta: {reader.meta}")

    # -- 2. replay ------------------------------------------------------
    pipeline = StreamPipeline(
        adapters=[
            SessionDetectorAdapter(VolumeDetector()),
            HoldVelocityAdapter(threshold=5, window=6 * HOUR),
        ]
    )
    report, stats = replay_trace(trace_path, pipeline)
    print(f"\nreplayed {stats.entries} events in "
          f"{stats.elapsed_seconds:.2f}s "
          f"({stats.events_per_second:,.0f} events/sec)")
    print(f"  {report.sessions_closed} sessions closed, "
          f"peak {report.peak_open_sessions} open at once")

    # -- 3. batch comparison -------------------------------------------
    batch = batch_session_verdicts(
        rebuild_log(trace_path), [VolumeDetector()]
    )
    stream = report.session_verdicts
    assert set(stream) == set(batch), "stream diverged from batch!"
    assert len(stream) == len(batch)
    stream_bots = {v.subject_id for v in stream if v.is_bot}
    batch_bots = {v.subject_id for v in batch if v.is_bot}
    assert stream_bots == batch_bots
    print(f"\nbatch equivalence: {len(stream)} session verdicts "
          f"identical, {len(stream_bots)} bot sessions in both")

    # Section III-A's point, visible in the numbers: the seat spinner
    # never trips the session-level volume detector (low volume per
    # session), but the streaming entity fast path convicts its
    # fingerprint from the hold-velocity window alone.
    entity_bots = {v.subject_id for v in report.entity_verdicts if v.is_bot}
    print(f"  session-level volume detector: {len(stream_bots)} "
          f"convictions (the paper's DoI blind spot)")
    print(f"  hold-velocity entity fast path: convicted {entity_bots}")

    # -- 4. the memory story -------------------------------------------
    print(
        f"\nbounded state: the streaming pass kept at most "
        f"{report.peak_open_sessions} sessions in memory while the "
        f"batch pass materialises all {report.sessions_closed} "
        f"({report.sessions_closed // max(report.peak_open_sessions, 1)}x "
        f"more) plus the full {entries_written}-entry log."
    )


if __name__ == "__main__":
    main()
