"""Quickstart: stand up an airline platform, attack it, detect it.

Builds a small world, runs two days of legitimate booking traffic with
a Seat Spinning bot hiding inside it, then walks the paper's detection
ladder:

1. session-volume detection (fails — the bot is low-volume),
2. NiP distribution anomaly (fires — the bot's party size sticks out),
3. passenger-detail heuristics (pinpoint the bot's bookings),

and finally deploys a NiP cap and watches the attacker adapt.

Run:  python examples/quickstart.py
"""

from collections import Counter

from repro.analysis.reports import render_distribution, render_table
from repro.common import SEAT_SPINNER
from repro.core.detection.anomaly import NipDistributionMonitor
from repro.core.detection.passenger_details import PassengerDetailAnalyzer
from repro.core.detection.volume import VolumeDetector
from repro.core.mitigation.policies import NipCapPolicy
from repro.identity.forge import (
    BotIdentity,
    FingerprintForge,
    MIMICRY,
    RotationPolicy,
)
from repro.identity.ip import ResidentialProxyPool
from repro.scenarios.world import FlightSpec, WorldConfig, build_world
from repro.sim.clock import DAY, HOUR
from repro.traffic.legitimate import (
    AVERAGE_WEEK_NIP_MIXTURE,
    LegitimateConfig,
    LegitimatePopulation,
)
from repro.traffic.seat_spinner import SeatSpinnerBot, SeatSpinnerConfig
from repro.web.logs import sessionize


def main() -> None:
    # -- 1. build the platform ------------------------------------------------
    flights = [FlightSpec(f"FL-{i:02d}", 10 * DAY, capacity=200)
               for i in range(8)]
    world = build_world(
        WorldConfig(seed=42, flights=flights, hold_ttl=2 * HOUR)
    )

    # -- 2. legitimate traffic + the attacker ---------------------------------
    LegitimatePopulation(
        world.loop,
        world.app,
        world.rngs.stream("legit"),
        LegitimateConfig(visitor_rate_per_hour=25),
    ).start(at=0.0)

    bot = SeatSpinnerBot(
        world.loop,
        world.app,
        BotIdentity(
            FingerprintForge(MIMICRY),           # indistinguishable FP
            RotationPolicy(mean_interval=5.3 * HOUR),
            world.rngs.stream("bot.identity"),
        ),
        ResidentialProxyPool(),                  # residential exits
        world.rngs.stream("bot"),
        SeatSpinnerConfig(
            target_flight="FL-00", preferred_nip=6, target_seats=120
        ),
    )
    bot.start(at=6 * HOUR)

    world.run_until(2 * DAY)
    print(f"simulated 2 days: {len(world.app.log)} requests, "
          f"{world.metrics.counter('booking.holds_created'):.0f} holds\n")

    # -- 3. the detection ladder ------------------------------------------------
    sessions = sessionize(world.app.log)
    volume_verdicts = VolumeDetector().judge_all(sessions)
    bot_sessions = [s for s in sessions if s.actor_class == SEAT_SPINNER]
    flagged = {v.subject_id for v in volume_verdicts if v.is_bot}
    caught = sum(1 for s in bot_sessions if s.session_id in flagged)
    print(f"[volume detection]    bot sessions: {len(bot_sessions)}, "
          f"flagged: {caught}  <- low-volume DoI evades it")

    counts = Counter(r.nip for r in world.reservations.held_records())
    monitor = NipDistributionMonitor(baseline=AVERAGE_WEEK_NIP_MIXTURE)
    anomaly = monitor.evaluate(counts)
    print(f"[NiP anomaly]         alarm={anomaly.alarm} "
          f"jsd={anomaly.jsd:.4f} surging={list(anomaly.surging_nips)}")

    analyzer = PassengerDetailAnalyzer()
    findings = analyzer.analyze(world.reservations.held_records())
    print(f"[passenger details]   {len(findings)} findings; top: "
          f"{findings[0].kind} — {findings[0].evidence}"
          if findings else "[passenger details]   nothing found")

    print()
    print(render_distribution(
        {n: c / sum(counts.values()) for n, c in sorted(counts.items())},
        title="Observed NiP distribution (note the NiP-6 bar):",
    ))

    # -- 4. mitigate and watch the attacker adapt -------------------------------
    print("\ndeploying NiP cap = 4 ...")
    NipCapPolicy(4).apply(world.app)
    world.run_until(3 * DAY)
    print(f"attacker adapted to NiP {bot.current_nip} within "
          f"{len(bot.nip_adaptations)} probes; still holding "
          f"{bot.seats_currently_held} seats — mitigation is a race, "
          "not a wall.")

    print()
    print(render_table(
        ["Metric", "Value"],
        [
            ["bot holds created", bot.holds_created],
            ["bot fingerprint rotations", bot.identity.rotations],
            ["target flight seats available",
             world.reservations.availability("FL-00")],
            ["legit holds",
             sum(1 for r in world.reservations.held_records()
                 if not r.client.is_attacker)],
        ],
        title="Final state",
    ))


if __name__ == "__main__":
    main()
